//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (see `shims/README.md` for why these exist).
//!
//! A compact, fully deterministic property-testing runner implementing the
//! API subset this workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header;
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`],
//!   [`prop_oneof!`], integer-range strategies, tuple strategies,
//!   [`collection::vec`], [`bool::ANY`] and simple `"[class]{lo,hi}"`
//!   string patterns;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from upstream, deliberately accepted: no shrinking (the
//! failing case's seed and index are reported instead, and
//! `PROPTEST_SEED=<u64>` replays a run), no persistence files, and value
//! generation is simple uniform sampling. Properties in this workspace are
//! written against small instances already, so minimal counterexamples
//! matter less than a reproducible failure.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for a pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The inputs did not satisfy a `prop_assume!` precondition; the
        /// case is discarded and does not count toward `cases`.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (discarded) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one property invocation.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic RNG handed to strategies.
    pub struct TestRng(pub(crate) rand_chacha::ChaCha8Rng);

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    use rand::SeedableRng;

    /// Base seed: fixed unless overridden via `PROPTEST_SEED`.
    fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_0f9e_3779_b9a1)
    }

    /// Drives one property: `cases` successes required, rejects retried up
    /// to a bounded budget, failures panic with a replayable case id.
    pub fn run_property(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let seed = base_seed();
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let reject_budget = 20 * config.cases as u64 + 1000;
        let mut index = 0u64;
        while passed < config.cases {
            let mut rng = TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(
                seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            index += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        panic!(
                            "property `{name}`: too many rejected cases \
                             ({rejected} rejects for {passed} passes); \
                             loosen the prop_assume! preconditions"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{name}` failed at case {} (base seed {seed}; \
                         rerun with PROPTEST_SEED={seed}):\n{msg}",
                        index - 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe producing values of `Self::Value` from the runner's RNG.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among equally weighted strategies ([`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union of the given arms (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// `&str` patterns of the form `"[class]{lo,hi}"` act as `String`
    /// strategies: a character class (literals, `a-z` ranges, `\n`/`\t`/
    /// `\\` escapes) repeated between `lo` and `hi` times. This covers the
    /// workspace's parser-fuzzing patterns without a regex engine;
    /// unsupported patterns panic loudly rather than silently degrading.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect()
        }
    }

    /// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let lo: usize = reps.0.trim().parse().ok()?;
        let hi: usize = reps.1.trim().parse().ok()?;
        if lo > hi {
            return None;
        }
        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let c = if c == '\\' {
                match chars.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            } else {
                c
            };
            if chars.peek() == Some(&'-') {
                let mut look = chars.clone();
                look.next(); // the '-'
                if let Some(&end) = look.peek().filter(|&&e| e != ']') {
                    chars = look;
                    chars.next();
                    for v in (c as u32)..=(end as u32) {
                        alphabet.extend(char::from_u32(v));
                    }
                    continue;
                }
            }
            alphabet.push(c);
        }
        (!alphabet.is_empty()).then_some((alphabet, lo, hi))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: a fixed length or a
    /// half-open range.
    pub trait SizeSpec {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A strategy for `Vec`s of `element` values with a [`SizeSpec`] length.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.gen::<core::primitive::bool>()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests; see the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            // The `#[test]` comes from the caller's own attribute list
            // (upstream proptest's grammar requires writing it, so every
            // call site already has one).
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_property(&config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let mut __case = || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Property-test assertion: fails the case (without panicking mid-search)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                __l
            )));
        }
    }};
}

/// Discards the case (without failing) when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice among the listed strategies (all arms must produce the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::strategy::Strategy<Value = _>>),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(99))
    }

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (0u64..10, 5usize..8).generate(&mut r);
            assert!(a < 10 && (5..8).contains(&b));
            let v = (0usize..4).prop_map(|x| x * 2).generate(&mut r);
            assert!(v % 2 == 0 && v < 8);
        }
    }

    #[test]
    fn vec_and_oneof_respect_their_specs() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(crate::bool::ANY, 1..5).generate(&mut r);
            assert!((1..5).contains(&v.len()));
            let c = prop_oneof![Just('x'), Just('y')].generate(&mut r);
            assert!(c == 'x' || c == 'y');
        }
        let fixed = crate::collection::vec(0u32..3, 7usize).generate(&mut r);
        assert_eq!(fixed.len(), 7);
    }

    #[test]
    fn string_patterns_draw_from_the_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[A-C x\\n]{0,16}".generate(&mut r);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| "ABC x\n".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_wires_everything(x in 0usize..50, ys in crate::collection::vec(0u64..9, 0..6)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(ys.iter().filter(|&&y| y < 9).count(), ys.len());
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run_property(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn reject_storms_are_detected() {
        crate::test_runner::run_property(&ProptestConfig::with_cases(4), "always_rejects", |_| {
            Err(TestCaseError::reject("never satisfiable"))
        });
    }
}
