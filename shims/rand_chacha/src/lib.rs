//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate (see `shims/README.md` for why these exist).
//!
//! Implements the ChaCha stream cipher (D. J. Bernstein) as a deterministic
//! RNG with the upstream state layout: 256-bit key from the seed, 64-bit
//! block counter in words 12–13, 64-bit stream id in words 14–15, and the
//! keystream emitted block-by-block as little-endian `u32` words. Together
//! with the shimmed `rand`'s `seed_from_u64`, a fixed seed yields the same
//! deterministic stream on every platform — which is all the workspace
//! relies on (dataset generation, test instances, simulation policies).

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8, 12 or 20).
fn block(input: &[u32; 16], rounds: u32) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            state: [u32; 16],
            buf: [u32; 16],
            /// Next unread word of `buf`; 16 means "refill needed".
            pos: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buf = block(&self.state, $rounds);
                // 64-bit block counter in words 12–13.
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
                self.pos = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CONSTANTS);
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                // Words 12–15 (counter and stream id) start at zero.
                $name {
                    state,
                    buf: [0; 16],
                    pos: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.pos >= 16 {
                    self.refill();
                }
                let w = self.buf[self.pos];
                self.pos += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds — the workspace's deterministic workhorse RNG.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds (the IETF/RFC 8439 strength).
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector, adapted to our 64-bit counter
        // layout: key 00..1f, counter = 1, nonce words 0x09000000,
        // 0x4a000000 placed in the stream-id words.
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            let bytes = [
                (4 * i) as u8,
                (4 * i + 1) as u8,
                (4 * i + 2) as u8,
                (4 * i + 3) as u8,
            ];
            input[4 + i] = u32::from_le_bytes(bytes);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let out = block(&input, 20);
        let expected: [u32; 16] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn deterministic_and_replayable() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert!(xs.iter().any(|&x| x != c.next_u64()));
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn counter_carries_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        // Draw more than one block's worth of words; all blocks distinct.
        let w1: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let w2: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(w1, w2);
    }
}
