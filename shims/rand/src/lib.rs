//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environments this workspace targets cannot always reach a
//! crates.io mirror, so the handful of external crates the code depends on
//! are provided as in-repo shims (see `shims/README.md`). This one covers
//! the `rand` 0.8 API subset actually used here:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` (integer and float
//!   ranges, half-open and inclusive) and `gen_bool`;
//! * [`SeedableRng`] with the upstream `seed_from_u64` expansion (PCG32
//!   stream), so seeds written for the real crate produce the same keys;
//! * [`seq::SliceRandom`] with `shuffle` and `choose` (upstream
//!   Fisher–Yates order).
//!
//! Algorithms follow the upstream implementations where the output stream
//! matters (seed expansion, Lemire-style bounded integers, 53-bit floats),
//! so datasets generated from fixed seeds remain stable if the shim is ever
//! swapped back for the real crate.

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution upstream).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream `Standard` for f64: 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream draws a u32 and tests the highest bit's worth of chance;
        // any single unbiased bit is equivalent — use bit 31.
        rng.next_u32() >> 31 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Draws a uniform value in `[0, span)` by widening multiplication with
/// rejection (Lemire's method, as upstream's `UniformInt`).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// A range acceptable to [`Rng::gen_range`], producing `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width inclusive range: every word is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (the `Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range` (empty ranges panic).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via a PCG32 stream — the exact
    /// upstream expansion, so `seed_from_u64(s)` matches the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place shuffle (upstream Fisher–Yates order).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64: decorrelates the counter into usable words.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&x));
        }
    }

    #[test]
    fn bounded_draws_cover_the_range() {
        let mut rng = Counter(7);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_unit() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(
            v != sorted || cfg!(any()),
            "shuffle left 50 elements sorted"
        );
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = Counter(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1u8, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn seed_from_u64_expansion_matches_upstream() {
        struct Capture([u8; 32]);
        impl RngCore for Capture {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        impl SeedableRng for Capture {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Capture(seed)
            }
        }
        // First word of the PCG32 expansion of 0, as produced by rand_core
        // 0.6 (regression pin for the documented compatibility claim).
        let c = Capture::seed_from_u64(0);
        assert_eq!(&c.0[..4], &4185125612u32.to_le_bytes());
    }
}
