//! Self-tests for the loom shim: the explorer must (a) enumerate every
//! interleaving of small programs, (b) catch classic race bugs by finding
//! the failing schedule, and (c) flag deadlocks instead of hanging.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::collections::HashSet;
use std::sync::Mutex as OsMutex;

#[test]
fn explores_both_orders_of_two_stores() {
    let outcomes: &'static OsMutex<HashSet<usize>> =
        Box::leak(Box::new(OsMutex::new(HashSet::new())));
    loom::model(move || {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || a2.store(1, Ordering::SeqCst));
        a.store(2, Ordering::SeqCst);
        h.join().unwrap();
        outcomes.lock().unwrap().insert(a.load(Ordering::SeqCst));
    });
    // Both "1 last" and "2 last" schedules must have been explored.
    assert_eq!(*outcomes.lock().unwrap(), HashSet::from([1, 2]));
}

#[test]
#[should_panic]
fn finds_lost_update_race() {
    // Two threads do a non-atomic read-modify-write; some interleaving
    // loses an update. The model must find it and fail.
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || {
            let v = a2.load(Ordering::SeqCst);
            a2.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn mutex_makes_read_modify_write_atomic() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0usize));
        let m2 = Arc::clone(&m);
        let h = loom::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        h.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

#[test]
fn condvar_wakeup_is_never_lost() {
    // Waiter parks until the flag is set; the notifier sets then notifies
    // under the lock. In every interleaving the waiter must wake — a lost
    // wakeup would surface as a model deadlock.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
        });
        let (m, cv) = &*pair;
        {
            let mut ready = m.lock().unwrap();
            *ready = true;
            cv.notify_one();
        }
        h.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn deadlock_is_reported() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        // Nobody ever notifies: the model must flag the deadlock.
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            let g = m.lock().unwrap();
            drop(cv.wait(g));
        });
        h.join().unwrap();
    });
}

#[test]
fn preemption_bound_limits_but_does_not_break_small_models() {
    // A 3-thread model small enough to finish fast; the assertion holds in
    // every schedule, so the model must pass.
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                loom::thread::spawn(move || a.fetch_add(1, Ordering::SeqCst))
            })
            .collect();
        a.fetch_add(1, Ordering::SeqCst);
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 3);
    });
}
