//! Spin-loop hint: in a model, spinning must be a yield point or the
//! spinner would starve the thread it is waiting on.

/// Yield point standing in for `std::hint::spin_loop`.
pub fn spin_loop() {
    crate::rt::schedule();
}
