//! The exploration runtime: a token-passing scheduler over real OS threads
//! plus a DFS over scheduling decisions.
//!
//! Exactly one model thread runs at a time; every shim primitive
//! (atomic op, mutex, condvar, spawn/join) calls back into [`schedule`] or
//! one of the blocking entry points, which consult a recorded decision path.
//! After each execution the last not-yet-exhausted decision is advanced
//! (classic DFS odometer), so successive executions enumerate every
//! schedule reachable within the preemption bound.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard};

/// Livelock guard: a single execution may not take more scheduler steps.
const MAX_STEPS: usize = 1_000_000;

/// Sentinel panic payload used to unwind secondary threads when the model
/// aborts (deadlock, livelock, or a real panic on another thread).
struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    BlockedMutex(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Finished,
}

/// One recorded scheduling decision: the enabled set at that point and the
/// index of the branch currently being explored.
struct Choice {
    enabled: Vec<usize>,
    idx: usize,
}

struct SchedState {
    threads: Vec<Run>,
    current: usize,
    /// Threads not yet `Finished`.
    unfinished: usize,
    path: Vec<Choice>,
    /// Replay cursor into `path`.
    pos: usize,
    steps: usize,
    preemptions: usize,
    aborting: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    /// FIFO condvar waiters: (condvar key, thread id).
    cv_waiters: Vec<(usize, usize)>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    lock: OsMutex<SchedState>,
    cv: OsCondvar,
    max_preemptions: usize,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Execution {
    fn new(path: Vec<Choice>, max_preemptions: usize) -> Self {
        Execution {
            lock: OsMutex::new(SchedState {
                threads: Vec::new(),
                current: 0,
                unfinished: 0,
                path,
                pos: 0,
                steps: 0,
                preemptions: 0,
                aborting: false,
                panic_payload: None,
                cv_waiters: Vec::new(),
                os_handles: Vec::new(),
            }),
            cv: OsCondvar::new(),
            max_preemptions,
        }
    }

    /// Picks the next thread to run. `prefer` is the current thread when it
    /// is still runnable (a voluntary yield point); `None` means the switch
    /// is forced (block/finish) and does not count as a preemption. Returns
    /// `None` when no thread is runnable.
    fn decide(&self, st: &mut SchedState, prefer: Option<usize>) -> Option<usize> {
        let mut enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            return None;
        }
        if let Some(me) = prefer {
            if st.preemptions >= self.max_preemptions {
                // Budget spent: stay on the current thread.
                enabled = vec![me];
            } else {
                // Explore "keep running" first — the cheap, preemption-free
                // branch — then each preempting alternative.
                enabled.sort_by_key(|&t| (t != me, t));
            }
        }
        let chosen = if enabled.len() == 1 {
            enabled[0]
        } else {
            let c = if st.pos < st.path.len() {
                let c = &st.path[st.pos];
                assert_eq!(
                    c.enabled, enabled,
                    "model is nondeterministic: enabled set diverged on replay"
                );
                c
            } else {
                st.path.push(Choice {
                    enabled: enabled.clone(),
                    idx: 0,
                });
                st.path.last().unwrap()
            };
            let picked = c.enabled[c.idx];
            st.pos += 1;
            picked
        };
        if prefer == Some(st.current) && chosen != st.current {
            st.preemptions += 1;
        }
        Some(chosen)
    }

    /// Aborts the whole execution: records `payload` (unless one is already
    /// recorded), marks the state aborting and wakes every thread.
    fn abort(&self, st: &mut SchedState, payload: Box<dyn Any + Send>) {
        if st.panic_payload.is_none() {
            st.panic_payload = Some(payload);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    fn step_guard(&self, st: &mut SchedState) {
        st.steps += 1;
        if st.steps > MAX_STEPS {
            self.abort(
                st,
                Box::new(format!(
                    "loom shim: execution exceeded {MAX_STEPS} scheduler steps (livelock?)"
                )),
            );
        }
    }

    /// Parks the calling OS thread until it is scheduled again (or the
    /// model aborts, in which case this panics with [`Abort`]).
    fn wait_until_scheduled<'a>(
        &'a self,
        mut st: OsGuard<'a, SchedState>,
        me: usize,
    ) -> OsGuard<'a, SchedState> {
        loop {
            if st.aborting {
                drop(st);
                panic::panic_any(Abort);
            }
            if st.current == me && st.threads[me] == Run::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Voluntary yield point for the (runnable, current) thread `me`.
    fn yield_point(&self, me: usize) {
        let mut st = self.lock.lock().unwrap();
        if st.aborting {
            drop(st);
            panic::panic_any(Abort);
        }
        self.step_guard(&mut st);
        debug_assert_eq!(st.current, me, "yield from a non-current thread");
        let chosen = self
            .decide(&mut st, Some(me))
            .expect("current thread is runnable");
        if chosen != me {
            st.current = chosen;
            self.cv.notify_all();
            let st = self.wait_until_scheduled(st, me);
            drop(st);
        }
    }

    /// Blocks the current thread with `state`, hands the token to another
    /// runnable thread (deadlock-aborting if there is none), and returns
    /// once this thread is runnable and scheduled again.
    fn block_current(&self, me: usize, state: Run) {
        let mut st = self.lock.lock().unwrap();
        if st.aborting {
            drop(st);
            panic::panic_any(Abort);
        }
        self.step_guard(&mut st);
        debug_assert_eq!(st.current, me);
        st.threads[me] = state;
        match self.decide(&mut st, None) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
            }
            None => {
                let detail: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("thread {i}: {s:?}"))
                    .collect();
                self.abort(
                    &mut st,
                    Box::new(format!(
                        "loom shim: deadlock — no runnable thread\n{}",
                        detail.join("\n")
                    )),
                );
            }
        }
        let st = self.wait_until_scheduled(st, me);
        drop(st);
    }

    /// Marks `me` finished, wakes its joiners, and hands the token on.
    fn finish_thread(&self, me: usize, panicked: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock.lock().unwrap();
        st.threads[me] = Run::Finished;
        st.unfinished -= 1;
        if let Some(p) = panicked {
            if p.downcast_ref::<Abort>().is_none() {
                self.abort(&mut st, p);
            } else {
                st.aborting = true;
            }
        }
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedJoin(me) {
                st.threads[t] = Run::Runnable;
            }
        }
        if st.unfinished == 0 || st.aborting {
            self.cv.notify_all();
        } else if st.current == me {
            match self.decide(&mut st, None) {
                Some(next) => {
                    st.current = next;
                    self.cv.notify_all();
                }
                None => {
                    let detail: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(i, s)| format!("thread {i}: {s:?}"))
                        .collect();
                    self.abort(
                        &mut st,
                        Box::new(format!(
                            "loom shim: deadlock — all remaining threads blocked\n{}",
                            detail.join("\n")
                        )),
                    );
                }
            }
        }
    }

    /// Registers a new model thread and spawns its OS carrier.
    fn spawn_thread(self: &Arc<Self>, body: Box<dyn FnOnce() + Send>) -> usize {
        let tid = {
            let mut st = self.lock.lock().unwrap();
            st.threads.push(Run::Runnable);
            st.unfinished += 1;
            st.threads.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                {
                    let st = exec.lock.lock().unwrap();
                    // First wait: may panic with Abort if the model died
                    // before this thread ever ran.
                    let aborted = panic::catch_unwind(AssertUnwindSafe(|| {
                        drop(exec.wait_until_scheduled(st, tid))
                    }))
                    .is_err();
                    if aborted {
                        exec.finish_thread(tid, Some(Box::new(Abort)));
                        return;
                    }
                }
                let result = panic::catch_unwind(AssertUnwindSafe(body));
                exec.finish_thread(tid, result.err());
            })
            .expect("spawn model carrier thread");
        self.lock.lock().unwrap().os_handles.push(handle);
        tid
    }

    /// Model-main side: waits for every model thread to finish, joins the
    /// OS carriers, and surfaces the first real panic.
    fn finish_execution(&self) -> (Vec<Choice>, Option<Box<dyn Any + Send>>) {
        let mut st = self.lock.lock().unwrap();
        while st.unfinished > 0 {
            st = self.cv.wait(st).unwrap();
        }
        let handles = std::mem::take(&mut st.os_handles);
        let payload = st.panic_payload.take();
        let path = std::mem::take(&mut st.path);
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        (path, payload)
    }
}

/// Pops exhausted trailing decisions and advances the deepest live one.
/// Returns `false` when the whole tree has been explored.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.idx + 1 < last.enabled.len() {
            last.idx += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Explores every interleaving of `f` within the preemption bound,
/// panicking (with the offending thread's panic) on the first failing
/// schedule. See the crate docs for scope and knobs.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 1_000_000);
    let f = Arc::new(f);
    let mut path: Vec<Choice> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom shim: exceeded {max_iterations} executions — shrink the model \
             or raise LOOM_MAX_ITERATIONS"
        );
        let exec = Arc::new(Execution::new(std::mem::take(&mut path), max_preemptions));
        let f0 = Arc::clone(&f);
        exec.spawn_thread(Box::new(move || f0()));
        let (explored, payload) = exec.finish_execution();
        if let Some(p) = payload {
            eprintln!("loom shim: failing schedule found after {iterations} execution(s)");
            match p.downcast::<String>() {
                Ok(msg) => panic!("{msg}"),
                Err(p) => panic::resume_unwind(p),
            }
        }
        path = explored;
        if !advance(&mut path) {
            break;
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom shim: explored {iterations} executions");
    }
}

// ---------------------------------------------------------------------
// Entry points for the shim primitives (sync / thread modules).
// ---------------------------------------------------------------------

/// Yield point: lets the scheduler preempt here. No-op outside a model or
/// while the calling thread is unwinding (so `Drop` impls stay safe).
pub(crate) fn schedule() {
    if std::thread::panicking() {
        return;
    }
    if let Some((exec, me)) = ctx() {
        exec.yield_point(me);
    }
}

/// True when called from inside a model thread that is not unwinding.
pub(crate) fn in_model() -> bool {
    !std::thread::panicking() && ctx().is_some()
}

/// Blocks until the mutex identified by `key` is released. The caller
/// retries its acquire loop afterwards.
pub(crate) fn block_on_mutex(key: usize) {
    if let Some((exec, me)) = ctx() {
        exec.block_current(me, Run::BlockedMutex(key));
    }
}

/// Wakes every thread blocked on the mutex identified by `key`.
pub(crate) fn mutex_released(key: usize) {
    if std::thread::panicking() {
        // During an abort the waiters are woken by the abort itself.
        if let Some((exec, _)) = ctx() {
            let mut st = exec.lock.lock().unwrap();
            for t in 0..st.threads.len() {
                if st.threads[t] == Run::BlockedMutex(key) {
                    st.threads[t] = Run::Runnable;
                }
            }
            return;
        }
        return;
    }
    if let Some((exec, _)) = ctx() {
        let mut st = exec.lock.lock().unwrap();
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedMutex(key) {
                st.threads[t] = Run::Runnable;
            }
        }
    }
}

/// Registers the current thread as a waiter on condvar `key`. Must be
/// followed (with no intervening yield) by [`cv_block`].
pub(crate) fn cv_enqueue(key: usize) {
    if let Some((exec, me)) = ctx() {
        exec.lock.lock().unwrap().cv_waiters.push((key, me));
    }
}

/// Parks the current thread until a notify on `key` wakes it.
pub(crate) fn cv_block(key: usize) {
    if let Some((exec, me)) = ctx() {
        exec.block_current(me, Run::BlockedCv(key));
    }
}

/// Wakes one (FIFO) or all waiters of condvar `key`.
pub(crate) fn cv_notify(key: usize, all: bool) {
    let Some((exec, _)) = ctx() else { return };
    let mut st = exec.lock.lock().unwrap();
    let mut woken = 0usize;
    let mut i = 0;
    while i < st.cv_waiters.len() {
        if st.cv_waiters[i].0 == key && (all || woken == 0) {
            let (_, tid) = st.cv_waiters.remove(i);
            debug_assert_eq!(st.threads[tid], Run::BlockedCv(key));
            st.threads[tid] = Run::Runnable;
            woken += 1;
        } else {
            i += 1;
        }
    }
}

/// Spawns a model thread running `body`; returns its model thread id.
pub(crate) fn spawn(body: Box<dyn FnOnce() + Send>) -> usize {
    let (exec, _) = ctx().expect("loom::thread::spawn used outside loom::model");
    let tid = exec.spawn_thread(body);
    // The spawn itself is a visible step: the child may run immediately.
    schedule();
    tid
}

/// Blocks until model thread `tid` finishes.
pub(crate) fn join_block(tid: usize) {
    let Some((exec, me)) = ctx() else { return };
    loop {
        {
            let st = exec.lock.lock().unwrap();
            if st.aborting {
                drop(st);
                panic::panic_any(Abort);
            }
            if st.threads[tid] == Run::Finished {
                return;
            }
        }
        exec.block_current(me, Run::BlockedJoin(tid));
    }
}
