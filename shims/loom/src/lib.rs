//! Offline stand-in for [`loom`](https://docs.rs/loom): a model checker for
//! concurrent code, API-compatible with the subset the workspace uses.
//!
//! [`model`] runs a closure repeatedly, exploring **every** distinct thread
//! interleaving of its atomic operations, mutex acquisitions, condvar
//! waits/notifies, and spawns/joins — up to a configurable preemption bound
//! (the number of times a *runnable* thread is switched away from; forced
//! switches at blocking points are free). Bounded-preemption exploration is
//! the classic CHESS result: almost all real schedule-sensitive bugs
//! manifest within two preemptions, while the bound keeps the search space
//! polynomial instead of exponential.
//!
//! # Scope and honesty
//!
//! Unlike real loom, this shim explores **sequentially consistent**
//! interleavings only: the `Ordering` argument of every atomic operation is
//! accepted but not modelled (each operation is executed `SeqCst` at a
//! scheduler yield point). It therefore finds *logic* races — lost wakeups,
//! double-takes, premature termination, counter protocol violations,
//! use-after-free sequences — but cannot find bugs that require a weaker-
//! than-SC execution to surface. Weak-memory defects are covered separately
//! by the Miri and ThreadSanitizer CI jobs (see
//! `.github/workflows/concurrency.yml`); the ordering *arguments* are kept
//! in the code under test so those tools check them for real.
//!
//! Knobs (environment variables, matching loom's names where they exist):
//!
//! * `LOOM_MAX_PREEMPTIONS` — preemption bound (default 2).
//! * `LOOM_MAX_ITERATIONS` — hard cap on explored executions (default
//!   1,000,000; exceeding it panics rather than silently truncating).
//! * `LOOM_LOG` — when set, prints the number of executions explored.

#![warn(missing_docs)]

pub mod hint;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;
