//! Model-checked thread spawn/join.

use crate::rt;
use std::sync::{Arc, Mutex as OsMutex};

/// Handle to a model thread; [`JoinHandle::join`] blocks (in model time)
/// until the thread finishes.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<OsMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. A panicking
    /// model thread aborts the whole model, so the `Err` arm is only ever
    /// observed while that abort is unwinding.
    pub fn join(self) -> std::thread::Result<T> {
        rt::join_block(self.tid);
        match self.result.lock().unwrap().take() {
            Some(v) => Ok(v),
            None => Err(Box::new("loom model thread panicked".to_string())),
        }
    }
}

/// Spawns a new model thread. Must be called from inside [`crate::model`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(OsMutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::spawn(Box::new(move || {
        let v = f();
        *slot.lock().unwrap() = Some(v);
    }));
    JoinHandle { tid, result }
}

/// Voluntary yield point.
pub fn yield_now() {
    rt::schedule();
}
