//! Model-checked atomics. Every operation is a scheduler yield point, then
//! executes `SeqCst` on a real atomic — the shim explores sequentially
//! consistent interleavings and accepts (but does not model) the caller's
//! `Ordering` arguments; see the crate docs for why that is the contract.

use crate::rt;
use std::sync::atomic::Ordering::SeqCst;

pub use std::sync::atomic::Ordering;

/// Yield point standing in for a memory fence (orderings are not modelled).
pub fn fence(_order: Ordering) {
    rt::schedule();
    std::sync::atomic::fence(SeqCst);
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $t:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name(std::sync::atomic::$std);

        impl $name {
            /// A new atomic holding `v`.
            pub fn new(v: $t) -> Self {
                Self(std::sync::atomic::$std::new(v))
            }

            /// Loads the value (yield point; executes `SeqCst`).
            pub fn load(&self, _order: Ordering) -> $t {
                rt::schedule();
                self.0.load(SeqCst)
            }

            /// Stores `v` (yield point; executes `SeqCst`).
            pub fn store(&self, v: $t, _order: Ordering) {
                rt::schedule();
                self.0.store(v, SeqCst)
            }

            /// Swaps in `v`, returning the previous value.
            pub fn swap(&self, v: $t, _order: Ordering) -> $t {
                rt::schedule();
                self.0.swap(v, SeqCst)
            }

            /// Adds `v`, returning the previous value.
            pub fn fetch_add(&self, v: $t, _order: Ordering) -> $t {
                rt::schedule();
                self.0.fetch_add(v, SeqCst)
            }

            /// Subtracts `v`, returning the previous value.
            pub fn fetch_sub(&self, v: $t, _order: Ordering) -> $t {
                rt::schedule();
                self.0.fetch_sub(v, SeqCst)
            }

            /// Compare-and-exchange; both orderings are accepted unmodelled.
            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$t, $t> {
                rt::schedule();
                self.0.compare_exchange(current, new, SeqCst, SeqCst)
            }
        }

        impl Default for $name {
            /// A new atomic holding zero (mirrors `std`).
            fn default() -> Self {
                Self::new(0)
            }
        }
    };
}

int_atomic!(
    /// Model-checked `AtomicUsize`.
    AtomicUsize, AtomicUsize, usize
);
int_atomic!(
    /// Model-checked `AtomicIsize`.
    AtomicIsize, AtomicIsize, isize
);
int_atomic!(
    /// Model-checked `AtomicU64`.
    AtomicU64, AtomicU64, u64
);
int_atomic!(
    /// Model-checked `AtomicU8`.
    AtomicU8, AtomicU8, u8
);

/// Model-checked `AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// A new atomic holding `v`.
    pub fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    /// Loads the value (yield point; executes `SeqCst`).
    pub fn load(&self, _order: Ordering) -> bool {
        rt::schedule();
        self.0.load(SeqCst)
    }

    /// Stores `v` (yield point; executes `SeqCst`).
    pub fn store(&self, v: bool, _order: Ordering) {
        rt::schedule();
        self.0.store(v, SeqCst)
    }

    /// Swaps in `v`, returning the previous value.
    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        rt::schedule();
        self.0.swap(v, SeqCst)
    }

    /// Compare-and-exchange; both orderings are accepted unmodelled.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        rt::schedule();
        self.0.compare_exchange(current, new, SeqCst, SeqCst)
    }
}

/// Model-checked `AtomicPtr<T>`.
#[derive(Debug)]
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    /// A new atomic holding `p`.
    pub fn new(p: *mut T) -> Self {
        Self(std::sync::atomic::AtomicPtr::new(p))
    }

    /// Loads the pointer (yield point; executes `SeqCst`).
    pub fn load(&self, _order: Ordering) -> *mut T {
        rt::schedule();
        self.0.load(SeqCst)
    }

    /// Stores `p` (yield point; executes `SeqCst`).
    pub fn store(&self, p: *mut T, _order: Ordering) {
        rt::schedule();
        self.0.store(p, SeqCst)
    }

    /// Swaps in `p`, returning the previous pointer.
    pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
        rt::schedule();
        self.0.swap(p, SeqCst)
    }

    /// Compare-and-exchange; both orderings are accepted unmodelled.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        rt::schedule();
        self.0.compare_exchange(current, new, SeqCst, SeqCst)
    }
}
