//! Model-checked versions of `std::sync` types: `Mutex`, `Condvar`, and
//! the [`atomic`] module. Lock acquisition, release, waits and notifies are
//! all scheduler decision points, so every interleaving of them (within the
//! preemption bound) is explored by [`crate::model`].

pub mod atomic;

use crate::rt;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool as OsAtomicBool, Ordering::SeqCst};
use std::time::Duration;

pub use std::sync::Arc;
pub use std::sync::LockResult;

/// A model-checked mutual-exclusion lock. Never poisons: `lock` always
/// returns `Ok` (a panicking model thread aborts the whole model instead).
pub struct Mutex<T: ?Sized> {
    /// Whether some model thread holds the lock. Accesses are serialized by
    /// the scheduler token, so this never actually contends.
    locked: OsAtomicBool,
    data: UnsafeCell<T>,
}

// safety: the `UnsafeCell` contents only move across threads under the
// lock, so `T: Send` suffices; `Sync` needs no `T: Sync` because shared
// access to the data always goes through exclusive lock acquisition.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(data: T) -> Self {
        Mutex {
            locked: OsAtomicBool::new(false),
            data: UnsafeCell::new(data),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn key(&self) -> usize {
        self as *const _ as *const u8 as usize
    }

    /// Acquires the lock, blocking (in model time) until available.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if rt::in_model() {
            loop {
                rt::schedule();
                if !self.locked.swap(true, SeqCst) {
                    break;
                }
                rt::block_on_mutex(self.key());
            }
        } else {
            // Outside a model, or while unwinding during a model abort:
            // spin — the owner is unwinding too and will release.
            while self.locked.swap(true, SeqCst) {
                std::thread::yield_now();
            }
        }
        Ok(MutexGuard { lock: self })
    }
}

/// RAII guard for [`Mutex`]; releases (and lets the scheduler preempt) on
/// drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // safety: the guard proves the lock is held, so no other thread
        // can touch the cell until this guard drops.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // safety: exclusive access for the same reason as `deref`, plus
        // `&mut self` rules out aliasing through this guard.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, SeqCst);
        rt::mutex_released(self.lock.key());
        // The release is a visible step: a blocked thread may acquire
        // before the former owner does anything else.
        rt::schedule();
    }
}

/// Result of a [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed (always the
    /// case in the model; see [`Condvar::wait_timeout`]).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A model-checked condition variable (no spurious wakeups; `notify_one`
/// wakes waiters FIFO).
pub struct Condvar {
    /// Only here to give every condvar a distinct address to key waiters
    /// by; never read.
    _addr: u8,
}

impl Condvar {
    /// A new condvar with no waiters.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar { _addr: 0 }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    /// Atomically releases `guard` and waits for a notification, then
    /// reacquires the mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let key = self.key();
        let mutex = guard.lock;
        // Enqueue + release + block with no intervening yield point, so a
        // notify cannot slip between "registered" and "parked" (the shim
        // equivalent of the atomic unlock-and-wait guarantee).
        rt::cv_enqueue(key);
        mutex.locked.store(false, SeqCst);
        rt::mutex_released(mutex.key());
        std::mem::forget(guard);
        rt::cv_block(key);
        mutex.lock()
    }

    /// Releases `guard`, waits for up to `dur`, and reacquires the mutex.
    ///
    /// Model time has no clock, so the timeout is modeled as *elapsing
    /// immediately*: the lock is released (a scheduler decision point, so
    /// other threads can run and mutate the shared state), then
    /// reacquired, and the result always reports a timeout. This is the
    /// sound abstraction for timed waits used as periodic-polling sleeps —
    /// the caller must behave correctly when the wait returns without a
    /// notification, and the model exercises exactly that path on every
    /// iteration.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let mutex = guard.lock;
        drop(guard); // releases the lock and yields to the scheduler
        let reacquired = mutex.lock().expect("shim mutexes never poison");
        Ok((reacquired, WaitTimeoutResult { timed_out: true }))
    }

    /// Wakes the longest-waiting thread, if any.
    pub fn notify_one(&self) {
        rt::schedule();
        rt::cv_notify(self.key(), false);
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        rt::schedule();
        rt::cv_notify(self.key(), true);
    }
}
