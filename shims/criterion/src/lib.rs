//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness (see `shims/README.md` for why these exist).
//!
//! Implements `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`measurement_time`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop reporting the median of a few samples —
//! adequate for the relative comparisons the `micro_kernels` bench makes,
//! with none of upstream's statistics machinery.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Runs closures under measurement ([`Criterion::bench_function`]).
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    measurement_time: Duration,
    samples: usize,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count to the measurement
    /// window, then records the median of several timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find how many iterations fit a sample slot.
        let budget = self.measurement_time.as_secs_f64() / self.samples as f64;
        let mut n = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..n {
                std_black_box(f());
            }
            let dt = t.elapsed().as_secs_f64();
            if dt > budget.min(0.01) || n >= 1 << 24 {
                break dt / n as f64;
            }
            n *= 2;
        };
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 28);
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std_black_box(f());
                }
                t.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        self.ns_per_iter = times[times.len() / 2] * 1e9;
    }
}

fn run_one(
    name: &str,
    measurement_time: Duration,
    samples: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        measurement_time,
        samples,
    };
    f(&mut b);
    if b.ns_per_iter >= 1.0e6 {
        println!("{name:<44} {:>12.3} ms/iter", b.ns_per_iter / 1e6);
    } else if b.ns_per_iter >= 1.0e3 {
        println!("{name:<44} {:>12.3} µs/iter", b.ns_per_iter / 1e3);
    } else {
        println!("{name:<44} {:>12.1} ns/iter", b.ns_per_iter);
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, Duration::from_millis(400), 5, &mut f);
        self
    }

    /// Opens a named group whose settings apply to its benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            prefix: name.to_string(),
            measurement_time: Duration::from_millis(400),
            samples: 5,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    prefix: String,
    measurement_time: Duration,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Sets the total measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        run_one(&full, self.measurement_time, self.samples, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(3u64.pow(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_chain_settings() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(20));
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
