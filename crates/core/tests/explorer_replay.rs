//! Path-replay equivalence: the property the parallel engine's tasks rely
//! on, tested directly at the Explorer level on randomized instances.
//!
//! At a random point of a random exploration we split off half of the top
//! frame's branches, record the path, and hand both halves to *fresh*
//! explorers (replaying the recorded path). The union of the work done by
//! the two halves must exactly equal the work the donor would have done
//! alone — trees, states and dead ends.

use gentrius_core::config::TaxonOrderRule;
use gentrius_core::explore::{Explorer, StepEvent};
use gentrius_core::problem::StandProblem;
use gentrius_core::sink::CollectNewick;
use gentrius_core::state::SearchState;
use phylo::bitset::BitSet;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::ops::restrict;
use phylo::taxa::TaxonSet;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_problem(seed: u64) -> (TaxonSet, StandProblem) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(8..=12);
    let taxa = TaxonSet::with_synthetic(n);
    loop {
        let source = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
        let m = rng.gen_range(2..=4);
        let mut covered = BitSet::new(n);
        let mut cols = Vec::new();
        for _ in 0..m {
            let k = rng.gen_range(4..=n.min(7));
            let mut s = BitSet::new(n);
            while s.count() < k {
                s.insert(rng.gen_range(0..n));
            }
            covered.union_with(&s);
            cols.push(s);
        }
        if covered.count() != n {
            continue;
        }
        let constraints: Vec<_> = cols.iter().map(|c| restrict(&source, c)).collect();
        if let Ok(p) = StandProblem::from_constraints(constraints) {
            return (taxa, p);
        }
    }
}

fn drain(ex: &mut Explorer<'_>, sink: &mut CollectNewick<'_>) -> (u64, u64, u64) {
    let (mut t, mut s, mut d) = (0, 0, 0);
    loop {
        match ex.step(sink) {
            StepEvent::Entered => s += 1,
            StepEvent::StandTree => t += 1,
            StepEvent::DeadEnd => {
                s += 1;
                d += 1;
            }
            StepEvent::Backtracked => {}
            StepEvent::Finished => return (t, s, d),
        }
    }
}

#[test]
fn random_split_points_partition_the_work_exactly() {
    let mut validated = 0;
    for seed in 0..30u64 {
        let (taxa, problem) = random_problem(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);

        // Donor run: walk a random number of steps, then try to split.
        let state = SearchState::new(&problem, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut donor = Explorer::new_root(state);
        let mut donor_sink = CollectNewick::with_cap(&taxa, 1_000_000);
        let warmup = rng.gen_range(0..60);
        let mut donor_pre = (0u64, 0u64, 0u64);
        for _ in 0..warmup {
            match donor.step(&mut donor_sink) {
                StepEvent::Entered => donor_pre.1 += 1,
                StepEvent::StandTree => donor_pre.0 += 1,
                StepEvent::DeadEnd => {
                    donor_pre.1 += 1;
                    donor_pre.2 += 1;
                }
                StepEvent::Backtracked => {}
                StepEvent::Finished => break,
            }
        }
        if donor.finished() {
            continue; // instance exhausted during warm-up; try another seed
        }
        let Some(stolen) = donor.split_top() else {
            continue; // top frame not splittable right now
        };
        let path = donor.path_from_base();
        let taxon = donor.top().unwrap().taxon;

        // Thief run: fresh state, replay path, work the stolen half.
        let thief_state = SearchState::new(&problem, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut thief = Explorer::new_idle(thief_state);
        thief.begin_task(&path, taxon, stolen);
        let mut thief_sink = CollectNewick::with_cap(&taxa, 1_000_000);
        let thief_work = drain(&mut thief, &mut thief_sink);
        thief.end_task();
        assert_eq!(
            thief.remaining_taxa(),
            problem.num_taxa() - problem.constraints()[0].taxa().count()
        );

        // Donor finishes the rest.
        let donor_rest = drain(&mut donor, &mut donor_sink);

        // Reference: an undisturbed full run.
        let ref_state = SearchState::new(&problem, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut reference = Explorer::new_root(ref_state);
        let mut ref_sink = CollectNewick::with_cap(&taxa, 1_000_000);
        let full = drain(&mut reference, &mut ref_sink);

        let combined = (
            donor_pre.0 + donor_rest.0 + thief_work.0,
            donor_pre.1 + donor_rest.1 + thief_work.1,
            donor_pre.2 + donor_rest.2 + thief_work.2,
        );
        assert_eq!(combined, full, "seed {seed}: counter partition broken");

        let mut split_set: Vec<String> = donor_sink.out;
        split_set.extend(thief_sink.out);
        split_set.sort();
        let mut ref_set = ref_sink.out;
        ref_set.sort();
        assert_eq!(split_set, ref_set, "seed {seed}: stand set broken");
        validated += 1;
    }
    assert!(validated >= 10, "only {validated} split points validated");
}

#[test]
fn nested_steals_still_partition_exactly() {
    // A steal from a stolen task (the thief becomes a donor): paths must
    // compose — task 2's path includes task 1's replayed base.
    let mut validated = 0;
    for seed in 100..140u64 {
        let (taxa, problem) = random_problem(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let state = SearchState::new(&problem, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut donor = Explorer::new_root(state);
        let mut sink_a = CollectNewick::with_cap(&taxa, 1_000_000);
        for _ in 0..rng.gen_range(0..40) {
            if donor.step(&mut sink_a) == StepEvent::Finished {
                break;
            }
        }
        if donor.finished() {
            continue;
        }
        let Some(stolen1) = donor.split_top() else {
            continue;
        };
        let path1 = donor.path_from_base();
        let taxon1 = donor.top().unwrap().taxon;

        // Thief 1 replays, walks a bit, then is robbed itself.
        let s1 = SearchState::new(&problem, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut thief1 = Explorer::new_idle(s1);
        thief1.begin_task(&path1, taxon1, stolen1);
        let mut sink_b = CollectNewick::with_cap(&taxa, 1_000_000);
        for _ in 0..rng.gen_range(0..20) {
            if thief1.step(&mut sink_b) == StepEvent::Finished {
                break;
            }
        }
        let second = if !thief1.finished() {
            if let Some(stolen2) = thief1.split_top() {
                let path2 = thief1.path_from_base();
                let taxon2 = thief1.top().unwrap().taxon;
                // path2 must extend path1 (it contains the replayed base).
                assert!(
                    path2.len() >= path1.len(),
                    "seed {seed}: path did not compose"
                );
                assert_eq!(&path2[..path1.len()], &path1[..], "seed {seed}");
                Some((path2, taxon2, stolen2))
            } else {
                None
            }
        } else {
            None
        };

        // Drain everything and merge the three stand fragments.
        let mut all: Vec<String> = Vec::new();
        let _ = drain(&mut thief1, &mut sink_b);
        thief1.end_task();
        if let Some((path2, taxon2, stolen2)) = second {
            let s2 = SearchState::new(&problem, 0, &TaxonOrderRule::Dynamic).unwrap();
            let mut thief2 = Explorer::new_idle(s2);
            thief2.begin_task(&path2, taxon2, stolen2);
            let mut sink_c = CollectNewick::with_cap(&taxa, 1_000_000);
            let _ = drain(&mut thief2, &mut sink_c);
            thief2.end_task();
            all.extend(sink_c.out);
        }
        let _ = drain(&mut donor, &mut sink_a);
        all.extend(sink_a.out);
        all.extend(sink_b.out);

        // Reference run: sink_a already includes the pre-steal trees, so
        // the merged stand set is the complete comparison (counters are
        // covered by the single-steal test above).
        let ref_state = SearchState::new(&problem, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut reference = Explorer::new_root(ref_state);
        let mut ref_sink = CollectNewick::with_cap(&taxa, 1_000_000);
        drain(&mut reference, &mut ref_sink);
        all.sort();
        let mut expect = ref_sink.out;
        expect.sort();
        assert_eq!(all, expect, "seed {seed}: nested-steal stand set broken");
        validated += 1;
    }
    assert!(validated >= 10, "only {validated} nested steals validated");
}
