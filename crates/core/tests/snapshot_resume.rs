//! Snapshot-handoff equivalence: the property the parallel engine's
//! replay-free task model rests on, tested directly at the Explorer level.
//!
//! A stolen task used to carry a `(taxon, edge)` replay path; it now
//! carries an owned [`StateSnapshot`] that the thief resumes in O(depth)
//! instead of replaying in O(depth × kernel). This property test pins the
//! two mechanisms together: at randomly chosen depths of randomly built
//! explorations — whose prefixes interleave containing and non-containing
//! inserts, completions and dead ends arbitrarily — handing the same
//! stolen half-frame to a path-replaying thief and to a snapshot-resuming
//! thief must be observationally identical (counters, stand sets) under
//! all three mapping engines.

use gentrius_core::config::{MappingMode, TaxonOrderRule};
use gentrius_core::explore::{Explorer, StepEvent};
use gentrius_core::problem::StandProblem;
use gentrius_core::sink::CollectNewick;
use gentrius_core::state::SearchState;
use phylo::bitset::BitSet;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::ops::restrict;
use phylo::taxa::TaxonSet;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CAP: usize = 1_000_000;

fn random_problem(seed: u64) -> (TaxonSet, StandProblem) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(8..=12);
    let taxa = TaxonSet::with_synthetic(n);
    loop {
        let source = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
        let m = rng.gen_range(2..=4);
        let mut covered = BitSet::new(n);
        let mut cols = Vec::new();
        for _ in 0..m {
            let k = rng.gen_range(4..=n.min(7));
            let mut s = BitSet::new(n);
            while s.count() < k {
                s.insert(rng.gen_range(0..n));
            }
            covered.union_with(&s);
            cols.push(s);
        }
        if covered.count() != n {
            continue;
        }
        let constraints: Vec<_> = cols.iter().map(|c| restrict(&source, c)).collect();
        if let Ok(p) = StandProblem::from_constraints(constraints) {
            return (taxa, p);
        }
    }
}

fn fresh_state<'p>(problem: &'p StandProblem, mode: MappingMode) -> SearchState<'p> {
    let mut s = SearchState::new(problem, 0, &TaxonOrderRule::Dynamic).expect("root state");
    s.enable_mapping(mode);
    s
}

fn drain(ex: &mut Explorer<'_>, sink: &mut CollectNewick<'_>) -> (u64, u64, u64) {
    let (mut t, mut s, mut d) = (0, 0, 0);
    loop {
        match ex.step(sink) {
            StepEvent::Entered => s += 1,
            StepEvent::StandTree => t += 1,
            StepEvent::DeadEnd => {
                s += 1;
                d += 1;
            }
            StepEvent::Backtracked => {}
            StepEvent::Finished => return (t, s, d),
        }
    }
}

const MODES: [MappingMode; 3] = [
    MappingMode::Recompute,
    MappingMode::Incremental,
    MappingMode::EdgeIndexed,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At up to three split points of one random trajectory per mode, the
    /// same stolen half-frame drained by a path-replaying thief and by a
    /// snapshot-resuming thief must produce identical counters and stand
    /// sets.
    #[test]
    fn snapshot_resume_is_observationally_identical_to_path_replay(seed in 0u64..u64::MAX) {
        for mode in MODES {
            let (taxa, problem) = random_problem(seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5157);
            let mut donor = Explorer::new_root(fresh_state(&problem, mode));
            let mut donor_sink = CollectNewick::with_cap(&taxa, CAP);
            let mut compared = 0usize;
            while !donor.finished() && compared < 3 {
                // Walk a random stretch: the prefix below any split point is
                // an arbitrary interleaving of inserts (containing and
                // non-containing alike), completions and dead ends.
                for _ in 0..rng.gen_range(1..25) {
                    if donor.step(&mut donor_sink) == StepEvent::Finished {
                        break;
                    }
                }
                if donor.finished() {
                    break;
                }
                let Some(stolen) = donor.split_top() else {
                    continue; // top frame not splittable at this depth
                };
                let path = donor.path_from_base();
                let taxon = donor.top().expect("busy donor has a top frame").taxon;

                // Thief A — the old mechanism: fresh root state, replay the
                // recorded path, work the stolen half.
                let mut replayer = Explorer::new_idle(fresh_state(&problem, mode));
                replayer.begin_task(&path, taxon, stolen.clone());
                prop_assert_eq!(replayer.applied_depth(), path.len());
                let mut replay_sink = CollectNewick::with_cap(&taxa, CAP);
                let replay_work = drain(&mut replayer, &mut replay_sink);
                replayer.end_task();

                // Thief B — the new mechanism: resume an owned snapshot of
                // the donor's state, no replay.
                let snap = donor.state().snapshot();
                prop_assert_eq!(
                    snap.remaining_count() + donor.applied_depth(),
                    problem.num_taxa() - problem.constraints()[0].taxa().count(),
                    "snapshot remaining-taxa accounting broken"
                );
                let mut resumer = Explorer::new_idle(SearchState::resume(&problem, snap));
                resumer.resume_task(taxon, stolen);
                let mut resume_sink = CollectNewick::with_cap(&taxa, CAP);
                let resume_work = drain(&mut resumer, &mut resume_sink);

                prop_assert_eq!(
                    resume_work, replay_work,
                    "mode {:?} depth {}: counters diverged", mode, path.len()
                );
                replay_sink.out.sort();
                resume_sink.out.sort();
                prop_assert_eq!(
                    resume_sink.out, replay_sink.out,
                    "mode {:?} depth {}: stand sets diverged", mode, path.len()
                );
                compared += 1;
            }
        }
    }

    /// A depth-0 snapshot (taken before any insertion) resumed over the
    /// root frame must reproduce the whole enumeration — the degenerate
    /// case the engine's initial-split injection relies on.
    #[test]
    fn depth_zero_snapshot_reproduces_the_full_enumeration(seed in 0u64..u64::MAX) {
        for mode in MODES {
            let (taxa, problem) = random_problem(seed);
            // Reference: an undisturbed run from the root.
            let mut reference = Explorer::new_root(fresh_state(&problem, mode));
            let mut ref_sink = CollectNewick::with_cap(&taxa, CAP);
            let full = drain(&mut reference, &mut ref_sink);

            // Snapshot the virgin root state, then resume it over the same
            // root frame a fresh explorer opens at construction.
            let root = fresh_state(&problem, mode);
            let snap = root.snapshot();
            let donor = Explorer::new_root(root);
            let Some(top) = donor.top() else {
                continue; // root state already complete (single-tree stand)
            };
            let (taxon, branches) = (top.taxon, top.branches.clone());
            let mut resumer = Explorer::new_idle(SearchState::resume(&problem, snap));
            resumer.resume_task(taxon, branches);
            let mut resume_sink = CollectNewick::with_cap(&taxa, CAP);
            let work = drain(&mut resumer, &mut resume_sink);
            prop_assert_eq!(work, full, "mode {:?}: depth-0 counters diverged", mode);
            ref_sink.out.sort();
            resume_sink.out.sort();
            prop_assert_eq!(resume_sink.out, ref_sink.out.clone(), "mode {:?}", mode);
        }
    }
}
