//! Property tests of the edge-indexed admissibility kernels: on random
//! trees and constraints the flat `SplitId` kernels must agree with the
//! definitional admissibility test for every (taxon, edge) pair, and an
//! apply/undo round trip must restore the exact observable projection
//! state at every depth.

use gentrius_core::edge_index::EdgeIndexedMaps;
use gentrius_core::mapping::{attachment_map, missing_taxon_targets};
use gentrius_core::StandProblem;
use phylo::bitset::BitSet;
use phylo::generate::{random_tree, ShapeModel};
use phylo::ops::restrict;
use phylo::split::topo_eq;
use phylo::taxa::TaxonId;
use phylo::tree::{EdgeId, Tree};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const UNIVERSE: usize = 11;

/// A random instance: an agile tree and 2–3 constraint trees, all
/// restrictions of one random source tree (so they are pairwise
/// compatible and form a well-posed stand problem).
fn random_instance(seed: u64) -> (Tree, StandProblem) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids: Vec<TaxonId> = (0..UNIVERSE as u32).map(TaxonId).collect();
    let source = random_tree(UNIVERSE, &ids, ShapeModel::Uniform, &mut rng);
    let subset = |rng: &mut ChaCha8Rng, lo: usize, hi: usize| {
        let mut shuffled = ids.clone();
        shuffled.shuffle(rng);
        let size = rng.gen_range(lo..=hi);
        BitSet::from_iter(UNIVERSE, shuffled[..size].iter().map(|t| t.index()))
    };
    let agile = restrict(&source, &subset(&mut rng, 4, 7));
    let n_cons = rng.gen_range(2..=3);
    let constraints: Vec<Tree> = (0..n_cons)
        .map(|_| restrict(&source, &subset(&mut rng, 4, 9)))
        .collect();
    let problem = StandProblem::from_constraints(constraints).unwrap();
    (agile, problem)
}

/// §II-A admissibility from first principles: insert `t` on `e`, restrict
/// both trees to the common taxa plus `t`, compare topologies.
fn admissible_by_definition(agile: &Tree, constraint: &Tree, t: TaxonId, e: EdgeId) -> bool {
    let mut a = agile.clone();
    a.insert_leaf_on_edge(t, e);
    let mut cu = agile.taxa().intersection(constraint.taxa());
    cu.insert(t.index());
    topo_eq(&restrict(&a, &cu), &restrict(constraint, &cu))
}

/// The kernels' answer for one (constraint, taxon, edge) triple.
fn admissible_by_kernel(ei: &EdgeIndexedMaps, ci: usize, t: TaxonId, e: EdgeId) -> bool {
    if ei.all_admissible(ci) {
        return true;
    }
    let target = ei.target_id(ci, t);
    if target.is_none() {
        return true; // constraint does not pin the taxon
    }
    ei.projection_id(ci, e) == target
}

/// Everything a kernel exposes, resolved to concrete split sides so ids
/// from different arena generations compare by value.
type KernelSnapshot = Vec<(BitSet, bool, Vec<Option<BitSet>>, Vec<Option<BitSet>>)>;

fn snapshot(ei: &EdgeIndexedMaps, problem: &StandProblem, agile: &Tree) -> KernelSnapshot {
    (0..problem.constraints().len())
        .map(|ci| {
            let map: Vec<Option<BitSet>> = agile
                .edges()
                .map(|e| {
                    ei.resolve(ci, ei.projection_id(ci, e))
                        .map(|s| s.side().clone())
                })
                .collect();
            let targets: Vec<Option<BitSet>> = (0..UNIVERSE)
                .map(|t| {
                    ei.resolve(ci, ei.target_id(ci, TaxonId(t as u32)))
                        .map(|s| s.side().clone())
                })
                .collect();
            (ei.common(ci).clone(), ei.all_admissible(ci), map, targets)
        })
        .collect()
}

/// Asserts the kernels match freshly recomputed Arc-based projections.
fn matches_recompute(
    ei: &EdgeIndexedMaps,
    problem: &StandProblem,
    agile: &Tree,
) -> Result<(), TestCaseError> {
    for (ci, cons) in problem.constraints().iter().enumerate() {
        let c = agile.taxa().intersection(cons.taxa());
        prop_assert_eq!(ei.common(ci), &c, "C of constraint {}", ci);
        let fresh = attachment_map(agile, &c);
        prop_assert_eq!(
            ei.all_admissible(ci),
            fresh.all_admissible(),
            "all flag of constraint {}",
            ci
        );
        if ei.all_admissible(ci) {
            continue;
        }
        for e in agile.edges() {
            let via_kernel = ei.resolve(ci, ei.projection_id(ci, e)).map(|s| s.side());
            prop_assert_eq!(
                via_kernel,
                fresh.get(e).map(|s| s.side()),
                "constraint {}, edge {:?}",
                ci,
                e
            );
        }
        let fresh_targets = missing_taxon_targets(cons, &c);
        for (t, fresh) in fresh_targets.iter().enumerate() {
            let via_kernel = ei
                .resolve(ci, ei.target_id(ci, TaxonId(t as u32)))
                .map(|s| s.side());
            prop_assert_eq!(
                via_kernel,
                fresh.as_ref().map(|s| s.side()),
                "constraint {}, taxon {}",
                ci,
                t
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_kernel_agrees_with_definition(seed in 0u64..u64::MAX) {
        let (agile, problem) = random_instance(seed);
        let ei = EdgeIndexedMaps::new(&problem, &agile);
        matches_recompute(&ei, &problem, &agile)?;
        for (ci, cons) in problem.constraints().iter().enumerate() {
            let c = agile.taxa().intersection(cons.taxa());
            for t in cons.taxa().difference(agile.taxa()).iter() {
                let t = TaxonId(t as u32);
                for e in agile.edges() {
                    let kernel = admissible_by_kernel(&ei, ci, t, e);
                    if c.count() <= 1 {
                        // |C| ≤ 1: every edge is admissible by definition
                        // and the kernel must say so via the all flag.
                        prop_assert!(ei.all_admissible(ci));
                        prop_assert!(kernel);
                    } else {
                        prop_assert_eq!(
                            kernel,
                            admissible_by_definition(&agile, cons, t, e),
                            "constraint {}, taxon {:?}, edge {:?}",
                            ci, t, e
                        );
                    }
                }
            }
            // Taxa the constraint does not contain are never pinned by it.
            for t in 0..UNIVERSE {
                if !cons.taxa().contains(t) {
                    prop_assert!(ei.target_id(ci, TaxonId(t as u32)).is_none());
                }
            }
        }
    }

    #[test]
    fn apply_undo_roundtrip_restores_projection_state(seed in 0u64..u64::MAX) {
        let (mut agile, problem) = random_instance(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1CE);
        let mut ei = EdgeIndexedMaps::new(&problem, &agile);

        // Insert every missing taxon (random order, random edges),
        // snapshotting the observable kernel state before each step and
        // checking live agreement with the recompute machinery after it.
        let mut missing: Vec<TaxonId> = problem
            .all_taxa()
            .difference(agile.taxa())
            .iter()
            .map(|t| TaxonId(t as u32))
            .collect();
        missing.shuffle(&mut rng);
        let mut trail = Vec::new();
        for t in missing {
            let edges: Vec<EdgeId> = agile.edges().collect();
            let e = edges[rng.gen_range(0..edges.len())];
            let snap = snapshot(&ei, &problem, &agile);
            let ins = agile.insert_leaf_on_edge(t, e);
            ei.after_insert(&problem, &agile, &ins);
            matches_recompute(&ei, &problem, &agile)?;
            trail.push((ins, snap));
        }

        // Unwind: each undo must restore the exact pre-insert snapshot.
        while let Some((ins, snap)) = trail.pop() {
            ei.before_remove(&ins);
            agile.remove_insertion(&ins);
            prop_assert_eq!(snapshot(&ei, &problem, &agile), snap);
            matches_recompute(&ei, &problem, &agile)?;
        }
    }
}
