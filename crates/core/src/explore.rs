//! The branch-and-bound step machine.
//!
//! Algorithm 1 of the paper is a recursion; here it is an explicit-stack
//! machine advanced one transition at a time by [`Explorer::step`]. That
//! single representation powers all three execution engines:
//!
//! * the **serial driver** just loops `step()`;
//! * the **threaded engine** additionally calls [`Explorer::split_top`] to
//!   carve half of the current state's pending branches into a task, and
//!   [`Explorer::begin_task`]/[`Explorer::end_task`] to replay a received
//!   task path from the initial-split state `I_0`;
//! * the **virtual-time simulator** drives many explorers in lock-step,
//!   charging one tick per transition.
//!
//! Counting conventions (they match the paper's reported numbers):
//! entering a new incomplete state = one *intermediate state*; an entered
//! state whose next taxon has no admissible branch = additionally one
//! *dead end* (the state is undone immediately); inserting the final taxon
//! = one *stand tree* (not an intermediate state).

use crate::sink::StandSink;
use crate::state::{AppliedStep, SearchState};
use phylo::taxa::TaxonId;
use phylo::tree::EdgeId;

/// One DFS frame: a search state, the taxon chosen at it, and the
/// admissible branches not yet descended into.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The edit that created this state (`None` for the root / task base).
    step: Option<AppliedStep>,
    /// The taxon to insert at this state.
    pub taxon: TaxonId,
    /// Admissible branches for `taxon`, in edge-id order.
    pub branches: Vec<EdgeId>,
    /// Index of the next branch to try.
    pub cursor: usize,
}

impl Frame {
    /// Branches not yet tried.
    pub fn pending(&self) -> usize {
        self.branches.len() - self.cursor
    }
}

/// Event emitted by one [`Explorer::step`] transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// Descended into a new intermediate state.
    Entered,
    /// Generated a complete stand tree (the sink was invoked) and
    /// backtracked out of it.
    StandTree,
    /// Descended into a state whose next taxon has no admissible branch;
    /// the state was counted and immediately undone.
    DeadEnd,
    /// The top frame was exhausted and popped (one taxon removed).
    Backtracked,
    /// The whole assigned search space is exhausted.
    Finished,
}

/// Explicit-stack explorer over a [`SearchState`].
pub struct Explorer<'p> {
    state: SearchState<'p>,
    stack: Vec<Frame>,
    /// Insertions replayed to reach a task's start state; not part of the
    /// exploration (not counted, not backtracked by `step`).
    base: Vec<AppliedStep>,
    /// Root state was already complete (single-tree stand); one synthetic
    /// `StandTree` is emitted, then `Finished`.
    root_complete: bool,
}

impl<'p> Explorer<'p> {
    /// An explorer that will traverse the whole search space from the root
    /// state.
    pub fn new_root(state: SearchState<'p>) -> Self {
        let mut ex = Explorer {
            root_complete: state.is_complete(),
            state,
            stack: Vec::new(),
            base: Vec::new(),
        };
        if !ex.root_complete {
            if let Some(next) = ex.state.select_next() {
                ex.stack.push(Frame {
                    step: None,
                    taxon: next.taxon,
                    branches: next.branches,
                    cursor: 0,
                });
            }
        }
        ex
    }

    /// An idle explorer (no assigned work); used by worker threads that
    /// receive their work via [`Explorer::begin_task`]. The state should be
    /// positioned at the initial-split state `I_0`.
    pub fn new_idle(state: SearchState<'p>) -> Self {
        Explorer {
            state,
            stack: Vec::new(),
            base: Vec::new(),
            root_complete: false,
        }
    }

    /// The underlying search state (e.g. to inspect the agile tree).
    pub fn state(&self) -> &SearchState<'p> {
        &self.state
    }

    /// Current DFS depth in frames (the root/task frame is depth 1).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// True when no frames remain (`step` would return `Finished`).
    pub fn finished(&self) -> bool {
        self.stack.is_empty() && !self.root_complete
    }

    /// The top frame, if any.
    pub fn top(&self) -> Option<&Frame> {
        self.stack.last()
    }

    /// The `(taxon, edge)` insertions currently applied on top of `I_0`:
    /// the replayed task base (if any) followed by the exploration's own
    /// insertions — the paper's *path* from `I_0` to the current state
    /// `I_c`, ready to be shipped inside a new task.
    pub fn path_from_base(&self) -> Vec<(TaxonId, EdgeId)> {
        self.base
            .iter()
            .map(|s| (s.taxon(), s.edge()))
            .chain(
                self.stack
                    .iter()
                    .filter_map(|f| f.step.as_ref().map(|s| (s.taxon(), s.edge()))),
            )
            .collect()
    }

    /// Splits the top frame's pending branches in half: the first half is
    /// returned (to become a task), the second half stays. `None` unless at
    /// least two branches are pending. (Engine-level conditions — queue
    /// capacity and the ≥3-remaining-taxa rule — are the caller's job.)
    pub fn split_top(&mut self) -> Option<Vec<EdgeId>> {
        let f = self.stack.last_mut()?;
        let pending = f.pending();
        if pending < 2 {
            return None;
        }
        let give = pending / 2;
        let taken: Vec<EdgeId> = f.branches[f.cursor..f.cursor + give].to_vec();
        f.branches.drain(f.cursor..f.cursor + give);
        Some(taken)
    }

    /// Number of taxa still missing from the agile tree.
    pub fn remaining_taxa(&self) -> usize {
        self.state.remaining_count()
    }

    /// Replays a task: applies `path` (uncounted base insertions) from the
    /// current position, then installs a frame for `taxon` restricted to
    /// the given `branches` subset. Requires an idle explorer.
    pub fn begin_task(
        &mut self,
        path: &[(TaxonId, EdgeId)],
        taxon: TaxonId,
        branches: Vec<EdgeId>,
    ) {
        assert!(self.finished(), "begin_task on a busy explorer");
        assert!(self.base.is_empty(), "previous task base not unwound");
        for &(t, e) in path {
            self.base.push(self.state.apply(t, e));
        }
        self.stack.push(Frame {
            step: None,
            taxon,
            branches,
            cursor: 0,
        });
    }

    /// Installs a task frame on a state that is *already positioned* at the
    /// task's start state `I_c` (resumed from a
    /// [`crate::state::StateSnapshot`] — no base insertions, no kernel
    /// replay). The frame carries `step: None`, so exhausting it never
    /// undoes below the resume point. Requires an idle explorer.
    pub fn resume_task(&mut self, taxon: TaxonId, branches: Vec<EdgeId>) {
        assert!(self.finished(), "resume_task on a busy explorer");
        assert!(self.base.is_empty(), "previous task base not unwound");
        self.stack.push(Frame {
            step: None,
            taxon,
            branches,
            cursor: 0,
        });
    }

    /// Number of insertions currently applied on top of this explorer's
    /// start state: the replayed base plus the exploration's own applied
    /// frames. This is the depth a snapshot taken *now* would carry.
    pub fn applied_depth(&self) -> usize {
        self.base.len() + self.stack.iter().filter(|f| f.step.is_some()).count()
    }

    /// Unwinds the task base replayed by [`Explorer::begin_task`],
    /// returning the state to `I_0`. The task's frames must be exhausted.
    pub fn end_task(&mut self) {
        assert!(self.finished(), "end_task on a busy explorer");
        while let Some(step) = self.base.pop() {
            self.state.undo(&step);
        }
    }

    /// Abandons the remaining frames without exploring them (used when a
    /// stopping rule fires mid-task): undoes every applied insertion so the
    /// explorer is back at its base state and `finished()`.
    pub fn abort_frames(&mut self) {
        while let Some(f) = self.stack.pop() {
            if let Some(step) = &f.step {
                self.state.undo(step);
            }
        }
        self.root_complete = false;
    }

    /// Drains the un-explored frontier into task descriptors and unwinds
    /// every frame (checkpoint support): each frame with pending branches
    /// becomes one `(state snapshot, taxon, pending branches)` triple —
    /// the snapshot is taken in that frame's own context, so resuming it
    /// with [`Explorer::resume_task`] explores exactly the branches the
    /// frame had left. The union of the descriptors is precisely the work
    /// this explorer had not done, so a paused run's counters and stand
    /// set stay exact across a checkpoint/resume cycle.
    ///
    /// Frames are drained top-down (deepest context first); afterwards the
    /// explorer is `finished()` and back at its base state, like after
    /// [`Explorer::abort_frames`]. A pending `root_complete` (the root
    /// state was already a complete tree whose synthetic emission has not
    /// happened yet) becomes a descriptor with an empty branch set; the
    /// resume side detects the complete snapshot and re-emits it.
    pub fn drain_frontier(&mut self) -> Vec<(crate::state::StateSnapshot, TaxonId, Vec<EdgeId>)> {
        let mut out = Vec::new();
        if self.root_complete {
            self.root_complete = false;
            out.push((self.state.snapshot(), TaxonId(0), Vec::new()));
        }
        while let Some(f) = self.stack.pop() {
            if f.pending() > 0 {
                out.push((
                    self.state.snapshot(),
                    f.taxon,
                    f.branches[f.cursor..].to_vec(),
                ));
            }
            if let Some(step) = &f.step {
                self.state.undo(step);
            }
        }
        out
    }

    /// Returns branches previously taken by [`Explorer::split_top`] to the
    /// top frame (used when the task queue raced to full after the split).
    /// The branches are re-inserted at the cursor, restoring the original
    /// enumeration order.
    pub fn unsplit_top(&mut self, branches: Vec<EdgeId>) {
        // Returning branches to a frame that does not exist would silently
        // drop them from the enumeration (missed stands).
        // xlint: allow(panic-freedom) — this corruption must be loud
        let f = self.stack.last_mut().expect("unsplit with no frame");
        let at = f.cursor;
        f.branches.splice(at..at, branches);
    }

    /// Advances one transition. See the module docs for the counting
    /// conventions attached to each event.
    pub fn step<S: StandSink>(&mut self, sink: &mut S) -> StepEvent {
        if self.root_complete {
            self.root_complete = false;
            sink.stand_tree(&self.state.agile);
            return StepEvent::StandTree;
        }
        let Some(top) = self.stack.last_mut() else {
            return StepEvent::Finished;
        };
        if top.cursor < top.branches.len() {
            let edge = top.branches[top.cursor];
            top.cursor += 1;
            let taxon = top.taxon;
            let step = self.state.apply(taxon, edge);
            if self.state.is_complete() {
                sink.stand_tree(&self.state.agile);
                self.state.undo(&step);
                return StepEvent::StandTree;
            }
            // An incomplete state always offers a next taxon; if that
            // invariant ever broke, counting the branch as a dead end
            // degrades gracefully instead of tearing the worker down.
            let Some(next) = self.state.select_next() else {
                self.state.undo(&step);
                return StepEvent::DeadEnd;
            };
            if next.branches.is_empty() {
                self.state.undo(&step);
                return StepEvent::DeadEnd;
            }
            self.stack.push(Frame {
                step: Some(step),
                taxon: next.taxon,
                branches: next.branches,
                cursor: 0,
            });
            StepEvent::Entered
        } else {
            let Some(f) = self.stack.pop() else {
                // Unreachable — `last_mut` above proved non-empty — but
                // finishing is the graceful answer if that ever changes.
                return StepEvent::Finished;
            };
            if let Some(step) = &f.step {
                self.state.undo(step);
            }
            if self.stack.is_empty() {
                StepEvent::Finished
            } else {
                StepEvent::Backtracked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaxonOrderRule;
    use crate::problem::StandProblem;
    use crate::sink::{CollectNewick, CountOnly};
    use phylo::newick::parse_forest;
    use phylo::taxa::TaxonSet;

    fn setup(newicks: &[&str]) -> (TaxonSet, StandProblem) {
        let (taxa, trees) = parse_forest(newicks.iter().copied()).unwrap();
        (taxa, StandProblem::from_constraints(trees).unwrap())
    }

    fn run_to_end(ex: &mut Explorer<'_>) -> (u64, u64, u64) {
        let mut sink = CountOnly;
        let (mut trees, mut states, mut dead) = (0u64, 0u64, 0u64);
        loop {
            match ex.step(&mut sink) {
                StepEvent::Entered => states += 1,
                StepEvent::StandTree => trees += 1,
                StepEvent::DeadEnd => {
                    states += 1;
                    dead += 1;
                }
                StepEvent::Backtracked => {}
                StepEvent::Finished => break,
            }
        }
        (trees, states, dead)
    }

    #[test]
    fn single_complete_constraint_yields_one_tree() {
        let (_, p) = setup(&["((A,B),(C,D));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let (trees, states, dead) = run_to_end(&mut ex);
        assert_eq!((trees, states, dead), (1, 0, 0));
    }

    #[test]
    fn figure_1a_style_free_insertions() {
        // Agile ((A,B),(C,D)); one extra unconstrained-ish taxon E pinned
        // to a single branch and one taxon F free on a 2-branch set would
        // need crafting; here instead: two missing taxa from a second
        // constraint sharing only one taxon → both free everywhere.
        // Stand size = edges(4-leaf)=5 positions for the first, then 7 for
        // the second = 35 trees... restricted by the second constraint's
        // own topology among themselves.
        let (_, p) = setup(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let (trees, _states, _dead) = run_to_end(&mut ex);
        assert!(trees > 0);
        // Cross-check against the brute-force oracle.
        let oracle = brute_force_count(&p);
        assert_eq!(trees, oracle);
    }

    /// Brute-force stand size via the phylo topology enumerator.
    fn brute_force_count(p: &StandProblem) -> u64 {
        use phylo::enumerate::for_each_topology;
        use phylo::ops::displays;
        let ids: Vec<TaxonId> = p.all_taxa().iter().map(|t| TaxonId(t as u32)).collect();
        let mut count = 0u64;
        for_each_topology(p.universe(), &ids, |t| {
            if p.constraints().iter().all(|c| displays(t, c)) {
                count += 1;
            }
        });
        count
    }

    #[test]
    fn matches_oracle_on_pinning_constraints() {
        let (_, p) = setup(&["((A,B),(C,D));", "((A,B),(C,E));", "((B,C),(D,F));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let (trees, _, _) = run_to_end(&mut ex);
        assert_eq!(trees, brute_force_count(&p));
    }

    #[test]
    fn incompatible_constraints_yield_empty_stand() {
        // E pinned next to C by one constraint and next to A by another,
        // with full overlap otherwise → no tree satisfies both.
        let (_, p) = setup(&["((A,B),(C,D));", "((A,B),(C,E));", "((C,B),(A,E));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let (trees, _states, _dead) = run_to_end(&mut ex);
        assert_eq!(trees, 0);
        assert_eq!(trees, brute_force_count(&p));
        // Note: the conflict is already visible at the root state, which is
        // not itself a created intermediate state, so no DeadEnd event is
        // counted here — the exploration simply has nothing to descend into.
    }

    #[test]
    fn collected_stand_trees_display_all_constraints() {
        let (taxa, p) = setup(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let mut sink = CollectNewick::with_cap(&taxa, 10_000);
        loop {
            if ex.step(&mut sink) == StepEvent::Finished {
                break;
            }
        }
        assert!(!sink.out.is_empty());
        // No duplicates.
        let mut sorted = sink.out.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), sink.out.len());
        // Every collected tree displays every constraint.
        use phylo::newick::parse_newick;
        use phylo::ops::displays;
        for s in &sink.out {
            let t = parse_newick(s, &taxa).unwrap();
            for c in p.constraints() {
                assert!(displays(&t, c), "{s} does not display a constraint");
            }
        }
    }

    #[test]
    fn split_top_halves_pending() {
        let (_, p) = setup(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let total = ex.top().unwrap().pending();
        assert!(total >= 2, "test premise: multi-branch root");
        let taken = ex.split_top().unwrap();
        assert_eq!(taken.len(), total / 2);
        assert_eq!(ex.top().unwrap().pending(), total - total / 2);
        // Splitting a 1-pending frame is refused.
        while ex.top().unwrap().pending() > 1 {
            ex.split_top();
        }
        assert!(ex.split_top().is_none());
    }

    #[test]
    fn split_top_refuses_single_pending_and_exhausted_frames() {
        // One missing taxon (E): every insertion completes the tree, so the
        // root frame stays on top while its cursor walks to the end — the
        // only way to exercise split_top on a partially-consumed frame
        // without a frame push in between.
        let (_, p) = setup(&["((A,B),(C,D));", "((A,B),(C,E));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let total = ex.top().unwrap().branches.len();
        assert!(total >= 2, "test premise: multi-branch frame");
        let mut sink = CountOnly;
        while ex.top().unwrap().pending() > 1 {
            assert_eq!(ex.step(&mut sink), StepEvent::StandTree);
        }
        // pending == 1: give would be 0, so the split is refused outright
        // rather than returning an empty branch set.
        assert!(ex.split_top().is_none());
        assert_eq!(ex.step(&mut sink), StepEvent::StandTree);
        let top = ex.top().unwrap();
        assert_eq!(top.cursor, top.branches.len(), "cursor at end");
        assert_eq!(top.pending(), 0);
        assert!(ex.split_top().is_none());
        // The exhausted frame pops and the space is done.
        assert_eq!(ex.step(&mut sink), StepEvent::Finished);
        assert!(ex.split_top().is_none(), "no frame left to split");
    }

    #[test]
    fn unsplit_with_advanced_cursor_restores_branches_exactly() {
        let (_, p) = setup(&["((A,B),(C,D));", "((A,B),(C,E));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let before = ex.top().unwrap().branches.clone();
        assert_eq!(before.len(), 3, "E has three admissible branches");
        let mut sink = CountOnly;
        assert_eq!(ex.step(&mut sink), StepEvent::StandTree); // cursor -> 1
        let taken = ex.split_top().unwrap();
        // The split takes from the cursor position: the untried suffix's
        // front, never the already-consumed prefix.
        assert_eq!(taken[..], before[1..1 + taken.len()]);
        ex.unsplit_top(taken);
        let top = ex.top().unwrap();
        assert_eq!(top.branches, before, "exact order restored");
        assert_eq!(top.cursor, 1, "consumed prefix untouched");
        // The remaining enumeration proceeds as if the split never happened.
        let (trees, _, _) = run_to_end(&mut ex);
        assert_eq!(trees as usize, before.len() - 1);
    }

    #[test]
    fn abort_frames_restores_base_state() {
        let (_, p) = setup(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let fp = state.agile.arena_fingerprint();
        let mut ex = Explorer::new_root(state);
        let mut sink = CountOnly;
        for _ in 0..7 {
            if ex.step(&mut sink) == StepEvent::Finished {
                break;
            }
        }
        assert!(ex.depth() >= 1);
        ex.abort_frames();
        assert!(ex.finished());
        assert_eq!(ex.state().agile.arena_fingerprint(), fp);
        assert_eq!(ex.remaining_taxa(), 3);
    }

    #[test]
    fn unsplit_restores_the_exact_branch_order() {
        let (_, p) = setup(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let before = ex.top().unwrap().branches.clone();
        let taken = ex.split_top().unwrap();
        ex.unsplit_top(taken);
        assert_eq!(ex.top().unwrap().branches, before);
        assert_eq!(ex.top().unwrap().cursor, 0);
        // After consuming one branch, split+unsplit must keep the cursor
        // prefix intact too.
        let mut sink = CountOnly;
        let _ = ex.step(&mut sink);
        let before = ex.top().unwrap().clone();
        let _ = before; // frames differ post-step; re-check on the new top
        let snapshot = ex.top().unwrap().branches.clone();
        let cursor = ex.top().unwrap().cursor;
        if let Some(taken) = ex.split_top() {
            ex.unsplit_top(taken);
            assert_eq!(ex.top().unwrap().branches, snapshot);
            assert_eq!(ex.top().unwrap().cursor, cursor);
        }
    }

    #[test]
    fn drain_frontier_covers_exactly_the_remaining_work() {
        // Stop the exploration after k steps for every k, drain the
        // frontier, finish each descriptor independently, and check the
        // partial counts plus the descriptor counts always reproduce the
        // uninterrupted run exactly — the checkpoint/resume exactness
        // contract.
        let (_, p) = setup(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let full = {
            let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
            let mut ex = Explorer::new_root(state);
            run_to_end(&mut ex)
        };
        let mut saw_mid_drain = false;
        for k in 0..200 {
            let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
            let fp = state.agile.arena_fingerprint();
            let mut ex = Explorer::new_root(state);
            let mut sink = CountOnly;
            let (mut trees, mut states, mut dead) = (0u64, 0u64, 0u64);
            let mut finished_early = false;
            for _ in 0..k {
                match ex.step(&mut sink) {
                    StepEvent::Entered => states += 1,
                    StepEvent::StandTree => trees += 1,
                    StepEvent::DeadEnd => {
                        states += 1;
                        dead += 1;
                    }
                    StepEvent::Backtracked => {}
                    StepEvent::Finished => {
                        finished_early = true;
                        break;
                    }
                }
            }
            let frontier = ex.drain_frontier();
            if !frontier.is_empty() {
                saw_mid_drain = true;
            }
            assert!(ex.finished(), "drain leaves the explorer idle");
            assert_eq!(
                ex.state().agile.arena_fingerprint(),
                fp,
                "drain unwound every applied step"
            );
            for (snap, taxon, branches) in frontier {
                let resumed = SearchState::resume(&p, snap);
                assert!(!branches.is_empty() || resumed.is_complete());
                let mut rex = Explorer::new_idle(resumed);
                rex.resume_task(taxon, branches);
                let (t, s, d) = run_to_end(&mut rex);
                trees += t;
                states += s;
                dead += d;
            }
            assert_eq!((trees, states, dead), full, "k = {k}");
            if finished_early {
                break;
            }
        }
        assert!(saw_mid_drain, "the sweep must hit a non-empty frontier");
    }

    #[test]
    fn task_replay_explores_assigned_subset_only() {
        // Split the root frame: run the two halves as separate tasks and
        // check the union matches the full run.
        let (_, p) = setup(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let full = {
            let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
            let mut ex = Explorer::new_root(state);
            run_to_end(&mut ex)
        };

        let state = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex = Explorer::new_root(state);
        let root = ex.top().unwrap().clone();
        let taken = ex.split_top().unwrap();
        let kept: Vec<EdgeId> = root.branches[taken.len()..].to_vec();
        let taxon = root.taxon;

        // Task 1 on `taken` with a fresh explorer.
        let s1 = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex1 = Explorer::new_idle(s1);
        ex1.begin_task(&[], taxon, taken);
        let r1 = run_to_end(&mut ex1);
        ex1.end_task();

        // Task 2 on `kept`.
        let s2 = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut ex2 = Explorer::new_idle(s2);
        ex2.begin_task(&[], taxon, kept);
        let r2 = run_to_end(&mut ex2);
        ex2.end_task();

        assert_eq!(
            (r1.0 + r2.0, r1.1 + r2.1, r1.2 + r2.2),
            full,
            "task union must equal the full exploration"
        );
        // After end_task the explorer is reusable at I_0.
        assert!(ex1.finished());
        assert_eq!(ex1.remaining_taxa(), 3);
    }
}
