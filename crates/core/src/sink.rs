//! Output sinks for enumerated stand trees.
//!
//! Gentrius's standard output is "the number of trees on the stand and
//! their topologies in the Newick tree format" (§II-A). Counting is always
//! done by the driver; sinks decide what to do with each complete topology.

use phylo::newick::to_newick;
use phylo::taxa::TaxonSet;
use phylo::tree::Tree;

/// Receives each complete stand tree as it is generated. The tree reference
/// is only valid during the call (the search immediately backtracks), so
/// implementations must copy whatever they keep.
pub trait StandSink {
    /// Called once per generated stand tree.
    fn stand_tree(&mut self, tree: &Tree);
}

/// Counting-only sink (the driver counts; this stores nothing).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountOnly;

impl StandSink for CountOnly {
    fn stand_tree(&mut self, _tree: &Tree) {}
}

/// Collects owned copies of the stand trees, up to a cap (stands can be
/// exponentially large; an uncapped collector is a footgun).
#[derive(Debug)]
pub struct CollectTrees {
    /// Collected trees, in generation order.
    pub trees: Vec<Tree>,
    cap: usize,
}

impl CollectTrees {
    /// Collector keeping at most `cap` trees.
    pub fn with_cap(cap: usize) -> Self {
        CollectTrees {
            trees: Vec::new(),
            cap,
        }
    }
}

impl StandSink for CollectTrees {
    fn stand_tree(&mut self, tree: &Tree) {
        if self.trees.len() < self.cap {
            self.trees.push(tree.clone());
        }
    }
}

/// Collects canonical Newick strings (cheap to compare across runs — the
/// serial/parallel stand-identity verification of §IV uses these).
pub struct CollectNewick<'a> {
    taxa: &'a TaxonSet,
    /// Canonical Newick strings, in generation order.
    pub out: Vec<String>,
    cap: usize,
}

impl<'a> CollectNewick<'a> {
    /// Collector keeping at most `cap` canonical strings.
    pub fn with_cap(taxa: &'a TaxonSet, cap: usize) -> Self {
        CollectNewick {
            taxa,
            out: Vec::new(),
            cap,
        }
    }
}

impl StandSink for CollectNewick<'_> {
    fn stand_tree(&mut self, tree: &Tree) {
        if self.out.len() < self.cap {
            self.out.push(to_newick(tree, self.taxa));
        }
    }
}

impl<F: FnMut(&Tree)> StandSink for F {
    fn stand_tree(&mut self, tree: &Tree) {
        self(tree)
    }
}

/// Merges per-worker canonical Newick collections into one sorted stand
/// set. Parallel runs emit stand trees in a schedule-dependent order across
/// workers; the §IV identity check ("the parallel version generates the
/// same stand") only holds up to ordering, so comparisons must go through
/// this canonical form. Duplicates are kept: the engine must not generate
/// the same stand tree twice, and collapsing them here would hide that bug.
pub fn canonical_stand_set<I>(parts: I) -> Vec<String>
where
    I: IntoIterator,
    I::Item: IntoIterator<Item = String>,
{
    let mut all: Vec<String> = parts.into_iter().flatten().collect();
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectors_respect_caps() {
        let taxa = TaxonSet::with_synthetic(4);
        let t = Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(1));
        let mut c = CollectTrees::with_cap(2);
        for _ in 0..5 {
            c.stand_tree(&t);
        }
        assert_eq!(c.trees.len(), 2);
        let mut n = CollectNewick::with_cap(&taxa, 3);
        for _ in 0..5 {
            n.stand_tree(&t);
        }
        assert_eq!(n.out.len(), 3);
        assert_eq!(n.out[0], "(T0,T1);");
    }

    #[test]
    fn canonical_stand_set_sorts_and_keeps_duplicates() {
        let merged = canonical_stand_set(vec![
            vec!["(T2,T3);".to_string(), "(T0,T1);".to_string()],
            vec!["(T0,T1);".to_string()],
            vec![],
        ]);
        assert_eq!(merged, vec!["(T0,T1);", "(T0,T1);", "(T2,T3);"]);
    }

    #[test]
    fn closure_sink() {
        let t = Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(1));
        let mut count = 0usize;
        {
            let mut sink = |_: &Tree| count += 1;
            sink.stand_tree(&t);
            sink.stand_tree(&t);
        }
        assert_eq!(count, 2);
    }
}
