//! Output sinks for enumerated stand trees.
//!
//! Gentrius's standard output is "the number of trees on the stand and
//! their topologies in the Newick tree format" (§II-A). Counting is always
//! done by the driver; sinks decide what to do with each complete topology.

use phylo::newick::to_newick;
use phylo::taxa::TaxonSet;
use phylo::tree::Tree;

/// Receives each complete stand tree as it is generated. The tree reference
/// is only valid during the call (the search immediately backtracks), so
/// implementations must copy whatever they keep.
pub trait StandSink {
    /// Called once per generated stand tree.
    fn stand_tree(&mut self, tree: &Tree);
}

/// Counting-only sink (the driver counts; this stores nothing).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountOnly;

impl StandSink for CountOnly {
    fn stand_tree(&mut self, _tree: &Tree) {}
}

/// Collects owned copies of the stand trees, up to a cap (stands can be
/// exponentially large; an uncapped collector is a footgun).
#[derive(Debug)]
pub struct CollectTrees {
    /// Collected trees, in generation order.
    pub trees: Vec<Tree>,
    cap: usize,
}

impl CollectTrees {
    /// Collector keeping at most `cap` trees.
    pub fn with_cap(cap: usize) -> Self {
        CollectTrees {
            trees: Vec::new(),
            cap,
        }
    }
}

impl StandSink for CollectTrees {
    fn stand_tree(&mut self, tree: &Tree) {
        if self.trees.len() < self.cap {
            self.trees.push(tree.clone());
        }
    }
}

/// Collects canonical Newick strings (cheap to compare across runs — the
/// serial/parallel stand-identity verification of §IV uses these).
pub struct CollectNewick<'a> {
    taxa: &'a TaxonSet,
    /// Canonical Newick strings, in generation order.
    pub out: Vec<String>,
    cap: usize,
}

impl<'a> CollectNewick<'a> {
    /// Collector keeping at most `cap` canonical strings.
    pub fn with_cap(taxa: &'a TaxonSet, cap: usize) -> Self {
        CollectNewick {
            taxa,
            out: Vec::new(),
            cap,
        }
    }
}

impl StandSink for CollectNewick<'_> {
    fn stand_tree(&mut self, tree: &Tree) {
        if self.out.len() < self.cap {
            self.out.push(to_newick(tree, self.taxa));
        }
    }
}

impl<F: FnMut(&Tree)> StandSink for F {
    fn stand_tree(&mut self, tree: &Tree) {
        self(tree)
    }
}

/// Batches stand-tree emission: buffers up to `batch` owned copies and
/// forwards them to the inner sink in one burst.
///
/// On blow-up instances the engine emits hundreds of thousands of stand
/// trees per second, and each emission happens inside the worker hot loop.
/// Wrapping an expensive sink (serialization, I/O) in a `BatchingSink`
/// moves that cost off the per-state path and amortizes it over `batch`
/// trees. Buffered trees are recycled through a spare pool so steady-state
/// batching performs no allocation beyond the first `batch` clones.
///
/// Trees still in the buffer are flushed on [`Drop`], so no stand tree is
/// ever lost; use [`BatchingSink::into_inner`] to flush explicitly and
/// recover the wrapped sink. The drop-path flush is skipped while the
/// thread is panicking: forwarding to an arbitrary inner sink could panic
/// again and abort the process, turning a reportable worker panic into a
/// hard crash.
pub struct BatchingSink<S: StandSink> {
    inner: Option<S>,
    buf: Vec<Tree>,
    spare: Vec<Tree>,
    batch: usize,
}

impl<S: StandSink> BatchingSink<S> {
    /// Wraps `inner`, forwarding in bursts of `batch` trees (a `batch` of
    /// 0 or 1 degenerates to pass-through).
    pub fn new(inner: S, batch: usize) -> Self {
        BatchingSink {
            inner: Some(inner),
            buf: Vec::new(),
            spare: Vec::new(),
            batch: batch.max(1),
        }
    }

    /// Forwards every buffered tree to the inner sink, preserving
    /// generation order, and recycles the buffers.
    pub fn flush(&mut self) {
        if let Some(inner) = &mut self.inner {
            for t in &self.buf {
                inner.stand_tree(t);
            }
        }
        // Emptied buffers become spares; `stand_tree` refills them with
        // `clone_from` so steady-state batching reuses their allocations.
        self.spare.append(&mut self.buf);
    }

    /// Flushes any remaining trees and returns the wrapped sink.
    pub fn into_inner(mut self) -> S {
        self.flush();
        self.inner
            .take()
            // xlint: allow(panic-freedom) — `inner` is Some from construction until this consuming call; None here is internal invariant corruption, not a caller error.
            .expect("inner sink present until into_inner")
    }

    /// Number of trees currently buffered (for tests and diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

impl<S: StandSink> StandSink for BatchingSink<S> {
    fn stand_tree(&mut self, tree: &Tree) {
        match self.spare.pop() {
            Some(mut t) => {
                t.clone_from(tree);
                self.buf.push(t);
            }
            None => self.buf.push(tree.clone()),
        }
        if self.buf.len() >= self.batch {
            self.flush();
        }
    }
}

impl<S: StandSink> Drop for BatchingSink<S> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.flush();
        }
    }
}

/// Merges per-worker canonical Newick collections into one sorted stand
/// set. Parallel runs emit stand trees in a schedule-dependent order across
/// workers; the §IV identity check ("the parallel version generates the
/// same stand") only holds up to ordering, so comparisons must go through
/// this canonical form. Duplicates are kept: the engine must not generate
/// the same stand tree twice, and collapsing them here would hide that bug.
pub fn canonical_stand_set<I>(parts: I) -> Vec<String>
where
    I: IntoIterator,
    I::Item: IntoIterator<Item = String>,
{
    let mut all: Vec<String> = parts.into_iter().flatten().collect();
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectors_respect_caps() {
        let taxa = TaxonSet::with_synthetic(4);
        let t = Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(1));
        let mut c = CollectTrees::with_cap(2);
        for _ in 0..5 {
            c.stand_tree(&t);
        }
        assert_eq!(c.trees.len(), 2);
        let mut n = CollectNewick::with_cap(&taxa, 3);
        for _ in 0..5 {
            n.stand_tree(&t);
        }
        assert_eq!(n.out.len(), 3);
        assert_eq!(n.out[0], "(T0,T1);");
    }

    #[test]
    fn canonical_stand_set_sorts_and_keeps_duplicates() {
        let merged = canonical_stand_set(vec![
            vec!["(T2,T3);".to_string(), "(T0,T1);".to_string()],
            vec!["(T0,T1);".to_string()],
            vec![],
        ]);
        assert_eq!(merged, vec!["(T0,T1);", "(T0,T1);", "(T2,T3);"]);
    }

    #[test]
    fn batching_sink_flushes_at_capacity_and_on_drop() {
        let taxa = TaxonSet::with_synthetic(4);
        let t = Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(1));
        let mut b = BatchingSink::new(CollectNewick::with_cap(&taxa, 100), 3);
        b.stand_tree(&t);
        b.stand_tree(&t);
        assert_eq!(b.buffered(), 2, "below batch size nothing is forwarded");
        b.stand_tree(&t);
        assert_eq!(b.buffered(), 0, "third tree triggered the flush");
        b.stand_tree(&t);
        let inner = b.into_inner();
        assert_eq!(inner.out.len(), 4, "into_inner flushed the remainder");
        // Drop-path flush: buffered trees reach the inner sink even when
        // the wrapper is simply dropped.
        let mut count = 0usize;
        {
            let counter = |_: &Tree| count += 1;
            let mut b = BatchingSink::new(counter, 64);
            b.stand_tree(&t);
            b.stand_tree(&t);
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn batching_sink_preserves_generation_order() {
        let trees = [
            Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(1)),
            Tree::two_leaf(4, phylo::TaxonId(2), phylo::TaxonId(3)),
            Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(2)),
        ];
        let taxa = TaxonSet::with_synthetic(4);
        let mut b = BatchingSink::new(CollectNewick::with_cap(&taxa, 100), 2);
        for t in &trees {
            b.stand_tree(t);
        }
        let out = b.into_inner().out;
        assert_eq!(out, vec!["(T0,T1);", "(T2,T3);", "(T0,T2);"]);
    }

    #[test]
    fn batching_sink_skips_drop_flush_during_panic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let t = Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(1));
        let forwarded = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let counter = |_: &Tree| {
                forwarded.fetch_add(1, Ordering::SeqCst);
            };
            let mut b = BatchingSink::new(counter, 64);
            b.stand_tree(&t);
            panic!("worker failure with trees buffered");
        }));
        assert!(result.is_err());
        assert_eq!(
            forwarded.load(Ordering::SeqCst),
            0,
            "unwind-path drop must not forward into the inner sink"
        );
    }

    #[test]
    fn closure_sink() {
        let t = Tree::two_leaf(4, phylo::TaxonId(0), phylo::TaxonId(1));
        let mut count = 0usize;
        {
            let mut sink = |_: &Tree| count += 1;
            sink.stand_tree(&t);
            sink.stand_tree(&t);
        }
        assert_eq!(count, 2);
    }
}
