//! # gentrius-core — sequential Gentrius stand enumeration
//!
//! A from-scratch Rust implementation of the Gentrius branch-and-bound
//! algorithm (Chernomor et al. 2023) as described in §II of
//! *"Parallel Inference of Phylogenetic Stands with Gentrius"* (IPPS 2023):
//! given a set of unrooted, incomplete *constraint trees*, enumerate every
//! binary unrooted tree on the full taxon set that displays all of them —
//! the *stand*.
//!
//! The crate provides:
//!
//! * [`StandProblem`] — the instance (constraint trees, or a species tree
//!   plus a presence–absence matrix);
//! * [`GentriusConfig`] — the paper's two heuristics (initial-tree
//!   selection, dynamic taxon insertion), the three stopping rules, and the
//!   mapping-maintenance engine;
//! * [`Terrace`] — the high-level entry point (named after the class that
//!   hosts the algorithm in IQ-TREE 2, §III-B);
//! * [`explore::Explorer`] — the underlying explicit-stack step machine,
//!   shared with the parallel engine and the virtual-time simulator.
//!
//! ```
//! use gentrius_core::{GentriusConfig, Terrace};
//! use phylo::newick::parse_forest;
//!
//! let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((C,D),(E,F));"]).unwrap();
//! let terrace = Terrace::from_constraint_trees(trees).unwrap();
//! let result = terrace.count(&GentriusConfig::exhaustive()).unwrap();
//! assert!(result.complete());
//! assert!(result.stats.stand_trees > 0);
//! # let _ = taxa;
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod driver;
pub mod edge_index;
pub mod explore;
pub mod incremental;
pub mod mapping;
pub mod oracle;
pub mod problem;
pub mod sink;
pub mod state;
pub mod stats;

pub use analysis::{SplitSupportSink, StandSummary};
pub use config::{
    GentriusConfig, InitialTreeRule, MappingMode, StopCause, StoppingRules, TaxonOrderRule,
};
pub use driver::{run_serial, RunResult};
pub use problem::{ProblemError, StandProblem};
pub use sink::{
    canonical_stand_set, BatchingSink, CollectNewick, CollectTrees, CountOnly, StandSink,
};
pub use stats::RunStats;

use phylo::pam::Pam;
use phylo::tree::Tree;

/// High-level stand-enumeration entry point over a [`StandProblem`].
///
/// Mirrors the `Terrace` class of the paper's implementation (§III-B): it
/// owns the constraint trees and offers counting / enumeration with a
/// chosen configuration.
#[derive(Clone, Debug)]
pub struct Terrace {
    problem: StandProblem,
}

impl Terrace {
    /// Input mode 1: a set of unrooted incomplete constraint trees.
    pub fn from_constraint_trees(trees: Vec<Tree>) -> Result<Self, ProblemError> {
        Ok(Terrace {
            problem: StandProblem::from_constraints(trees)?,
        })
    }

    /// Input mode 2: a complete species tree plus a presence–absence
    /// matrix; constraints are the per-locus induced subtrees.
    pub fn from_species_tree_and_pam(tree: &Tree, pam: &Pam) -> Result<Self, ProblemError> {
        Ok(Terrace {
            problem: StandProblem::from_species_tree_and_pam(tree, pam)?,
        })
    }

    /// The underlying problem instance.
    pub fn problem(&self) -> &StandProblem {
        &self.problem
    }

    /// Counts the stand (serial), discarding topologies.
    pub fn count(&self, config: &GentriusConfig) -> Result<RunResult, ProblemError> {
        self.enumerate(config, &mut CountOnly)
    }

    /// Enumerates the stand (serial), streaming each complete tree into
    /// `sink`.
    pub fn enumerate<S: StandSink>(
        &self,
        config: &GentriusConfig,
        sink: &mut S,
    ) -> Result<RunResult, ProblemError> {
        run_serial(&self.problem, config, sink)
    }

    /// Quick terrace check: does the stand contain more than one tree?
    /// Runs with a 2-tree stopping rule, so the cost is a few states even
    /// on inputs whose full stand is astronomical.
    pub fn is_on_terrace(&self) -> Result<bool, ProblemError> {
        Ok(self.stand_size_at_least(2)? >= 2)
    }

    /// Counts stand trees up to `k` and stops: returns `min(stand, k)`
    /// exactly. The cheap way to ask "is the stand at least this big?"
    /// without paying for full enumeration.
    pub fn stand_size_at_least(&self, k: u64) -> Result<u64, ProblemError> {
        let cfg = GentriusConfig {
            stopping: StoppingRules {
                max_stand_trees: Some(k),
                max_intermediate_states: None,
                max_time: None,
            },
            ..GentriusConfig::default()
        };
        Ok(self.count(&cfg)?.stats.stand_trees.min(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::newick::parse_forest;
    use phylo::TaxonId;

    #[test]
    fn terrace_from_pam_equals_from_induced_trees() {
        let (_, trees) = parse_forest(["(((A,B),(C,D)),((E,F),(G,H)));"]).unwrap();
        let species = &trees[0];
        let mut pam = Pam::new(8, 2);
        for t in [0, 1, 2, 3, 4] {
            pam.set(TaxonId(t), 0, true);
        }
        for t in [3, 4, 5, 6, 7] {
            pam.set(TaxonId(t), 1, true);
        }
        let t1 = Terrace::from_species_tree_and_pam(species, &pam).unwrap();
        let t2 = Terrace::from_constraint_trees(pam.induced_subtrees(species)).unwrap();
        let cfg = GentriusConfig::exhaustive();
        let r1 = t1.count(&cfg).unwrap();
        let r2 = t2.count(&cfg).unwrap();
        assert_eq!(r1.stats, r2.stats);
        // The species tree itself is on the stand.
        assert!(r1.stats.stand_trees >= 1);
    }

    #[test]
    fn terrace_checks_are_cheap_and_exact() {
        let (_, trees) = parse_forest(["((A,B),(C,D));", "((C,D),(E,F));"]).unwrap();
        let t = Terrace::from_constraint_trees(trees).unwrap();
        assert!(t.is_on_terrace().unwrap());
        let full = t
            .count(&GentriusConfig::exhaustive())
            .unwrap()
            .stats
            .stand_trees;
        assert_eq!(t.stand_size_at_least(3).unwrap(), 3.min(full));
        assert_eq!(t.stand_size_at_least(u64::MAX).unwrap(), full);

        // A single complete constraint: stand of exactly one tree.
        let (_, one) = parse_forest(["((A,B),((C,D),E));"]).unwrap();
        let t1 = Terrace::from_constraint_trees(one).unwrap();
        assert!(!t1.is_on_terrace().unwrap());
        assert_eq!(t1.stand_size_at_least(10).unwrap(), 1);
    }
}
