//! Incrementally-maintained attachment projections.
//!
//! The paper's implementation keeps the double-edge mappings alive across
//! taxon insertions/removals and patches them ("After each taxon insertion
//! or removal, these mappings are updated", §II-A; §V measures this
//! maintenance at 15–30% of total runtime). This module is the equivalent
//! engine for our projection representation:
//!
//! * Inserting taxon `t` on edge `e` splits `e` into a near half (keeps the
//!   id), a far half and a pendant. For a constraint **not containing**
//!   `t`, the common taxa `C` are unchanged and all three edges project to
//!   whatever `e` projected to — an O(1) patch, and a no-op to undo
//!   (the stale entries for freed edge ids are never read and are always
//!   overwritten before reuse).
//! * For a constraint **containing** `t`, `C` gains a taxon and the whole
//!   projection changes; we recompute it and push the previous maps on an
//!   undo stack.
//!
//! Net effect: per state, only the constraints containing the inserted
//! taxon pay a recomputation, instead of every constraint at every state.

use crate::mapping::{attachment_map, missing_taxon_targets, AttachMap};
use crate::problem::StandProblem;
use phylo::bitset::BitSet;
use phylo::split::Split;
use phylo::tree::{Insertion, Tree};

#[derive(Clone)]
struct ConstraintMaps {
    /// `C = W ∩ Y_i`, kept in sync with the agile tree's taxa.
    c: BitSet,
    /// Projection of agile edges onto the common subtree.
    map: AttachMap,
    /// `b̂(t)` for each taxon of `Y_i \ W` (indexed by taxon id).
    targets: Vec<Option<Split>>,
}

struct UndoEntry {
    constraint: usize,
    map: AttachMap,
    targets: Vec<Option<Split>>,
}

/// The live projections for every constraint plus the undo stack.
pub struct IncrementalMaps {
    per: Vec<ConstraintMaps>,
    undo: Vec<Vec<UndoEntry>>,
}

impl IncrementalMaps {
    /// Builds the projections for the root state.
    pub fn new(problem: &StandProblem, agile: &Tree) -> Self {
        let per = problem
            .constraints()
            .iter()
            .map(|cons| {
                let c = agile.taxa().intersection(cons.taxa());
                ConstraintMaps {
                    map: attachment_map(agile, &c),
                    targets: missing_taxon_targets(cons, &c),
                    c,
                }
            })
            .collect();
        IncrementalMaps {
            per,
            undo: Vec::new(),
        }
    }

    /// The agile-edge projection for constraint `ci`.
    pub fn agile_map(&self, ci: usize) -> &AttachMap {
        &self.per[ci].map
    }

    /// The per-taxon attachment targets for constraint `ci`.
    pub fn targets(&self, ci: usize) -> &[Option<Split>] {
        &self.per[ci].targets
    }

    /// Records a no-op frame for an insertion whose maps will never be
    /// queried (the completion of the agile tree: the search emits the
    /// stand tree and immediately backtracks, so updating projections
    /// would be pure waste — completions dominate tree-rich runs).
    pub fn after_insert_unqueried(&mut self) {
        self.undo.push(Vec::new());
    }

    /// Patches the maps after `agile` gained the insertion `ins`.
    pub fn after_insert(&mut self, problem: &StandProblem, agile: &Tree, ins: &Insertion) {
        let t = ins.taxon.index();
        let mut frame = Vec::new();
        for (ci, cm) in self.per.iter_mut().enumerate() {
            let cons = &problem.constraints()[ci];
            if cons.taxa().contains(t) {
                // C grows: full recomputation, with undo.
                let new_c = {
                    let mut c = cm.c.clone();
                    c.insert(t);
                    c
                };
                let new_map = attachment_map(agile, &new_c);
                let new_targets = missing_taxon_targets(cons, &new_c);
                let old_map = std::mem::replace(&mut cm.map, new_map);
                let old_targets = std::mem::replace(&mut cm.targets, new_targets);
                cm.c = new_c;
                frame.push(UndoEntry {
                    constraint: ci,
                    map: old_map,
                    targets: old_targets,
                });
            } else if let AttachMap::Projected(map) = &mut cm.map {
                // C unchanged: the three edges around the subdivision all
                // project to whatever the subdivided edge projected to.
                let hi = ins.far_half.index().max(ins.pendant.index());
                if map.len() <= hi {
                    map.resize(hi + 1, None);
                }
                let split = map[ins.edge.index()].clone();
                map[ins.far_half.index()] = split.clone();
                map[ins.pendant.index()] = split;
            }
        }
        self.undo.push(frame);
    }

    /// Clones the *live* projections only, with an empty undo stack. Sound
    /// for task handoff because a resumed task never undoes below its
    /// resume point: the undo frames it pushes are exactly those it pops.
    pub fn fork_live(&self) -> Self {
        IncrementalMaps {
            per: self.per.clone(),
            undo: Vec::new(),
        }
    }

    /// Reverts the most recent [`IncrementalMaps::after_insert`]. Call
    /// *before* removing the insertion from the tree (LIFO discipline).
    pub fn before_remove(&mut self, ins: &Insertion) {
        let frame = self.undo.pop().expect("undo stack underflow");
        for entry in frame {
            let cm = &mut self.per[entry.constraint];
            cm.c.remove(ins.taxon.index());
            cm.map = entry.map;
            cm.targets = entry.targets;
        }
        // Constraints without the taxon need no repair: the entries for the
        // freed edge ids are never read while dead and are rewritten by the
        // patch of whichever insertion reuses the ids.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::newick::parse_forest;
    use phylo::taxa::TaxonId;

    fn problem(newicks: &[&str]) -> StandProblem {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    /// Compares the incremental maps against freshly recomputed ones.
    fn assert_matches_recompute(inc: &IncrementalMaps, problem: &StandProblem, agile: &Tree) {
        for (ci, cons) in problem.constraints().iter().enumerate() {
            let c = agile.taxa().intersection(cons.taxa());
            let fresh_map = attachment_map(agile, &c);
            let fresh_targets = missing_taxon_targets(cons, &c);
            assert_eq!(inc.targets(ci), fresh_targets.as_slice(), "targets of {ci}");
            // Compare projections on live edges only.
            for e in agile.edges() {
                assert_eq!(
                    inc.agile_map(ci).get(e),
                    fresh_map.get(e),
                    "constraint {ci}, edge {e:?}"
                );
            }
            assert_eq!(
                inc.agile_map(ci).all_admissible(),
                fresh_map.all_admissible(),
                "all_admissible flag of {ci}"
            );
        }
    }

    #[test]
    fn insert_remove_tracks_recompute() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));", "((A,F),(G,B));"]);
        let mut agile = p.constraints()[0].clone();
        let mut inc = IncrementalMaps::new(&p, &agile);
        assert_matches_recompute(&inc, &p, &agile);

        // Insert E (in constraint 1), then G (in constraint 2) on various
        // edges, checking the maps after every edit.
        let e_taxon = TaxonId(4);
        let g_taxon = TaxonId(6);
        let edges: Vec<_> = agile.edges().collect();
        let ins1 = agile.insert_leaf_on_edge(e_taxon, edges[2]);
        inc.after_insert(&p, &agile, &ins1);
        assert_matches_recompute(&inc, &p, &agile);

        let edges: Vec<_> = agile.edges().collect();
        let ins2 = agile.insert_leaf_on_edge(g_taxon, edges[5]);
        inc.after_insert(&p, &agile, &ins2);
        assert_matches_recompute(&inc, &p, &agile);

        inc.before_remove(&ins2);
        agile.remove_insertion(&ins2);
        assert_matches_recompute(&inc, &p, &agile);

        inc.before_remove(&ins1);
        agile.remove_insertion(&ins1);
        assert_matches_recompute(&inc, &p, &agile);
    }

    #[test]
    fn reinsertion_after_undo_is_consistent() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let mut agile = p.constraints()[0].clone();
        let mut inc = IncrementalMaps::new(&p, &agile);
        let e_taxon = TaxonId(4);
        let edges: Vec<_> = agile.edges().collect();
        for &edge in &edges {
            let ins = agile.insert_leaf_on_edge(e_taxon, edge);
            inc.after_insert(&p, &agile, &ins);
            assert_matches_recompute(&inc, &p, &agile);
            inc.before_remove(&ins);
            agile.remove_insertion(&ins);
            assert_matches_recompute(&inc, &p, &agile);
        }
    }
}
