//! Brute-force ground truth for small instances.
//!
//! For up to ~9 taxa the full space of unrooted binary topologies is
//! enumerable (`(2n-5)!!`), so the stand can be computed by definition:
//! filter every topology by "displays every constraint tree". The paper's
//! authors "thoroughly verified that the sequential and parallel versions
//! yield the exact same results" (§IV); this module is the stronger form
//! of that verification — results are checked against the definition, not
//! just against each other. It is exposed as a public API (rather than
//! test-only code) so downstream users can validate their own inputs.

use crate::problem::StandProblem;
use phylo::enumerate::{for_each_topology, num_unrooted_topologies};
use phylo::newick::to_newick;
use phylo::ops::displays;
use phylo::taxa::{TaxonId, TaxonSet};
use phylo::tree::Tree;

/// Upper bound on taxa for which brute force is reasonable (`n = 10` is
/// already 2,027,025 topologies).
pub const MAX_BRUTE_FORCE_TAXA: usize = 10;

/// Counts the stand by enumerating every unrooted binary topology on the
/// problem's taxa and testing the display condition directly.
///
/// Panics if the problem has more than [`MAX_BRUTE_FORCE_TAXA`] taxa.
pub fn brute_force_count(problem: &StandProblem) -> u64 {
    let mut count = 0u64;
    brute_force_visit(problem, |_| count += 1);
    count
}

/// Collects the stand as canonical Newick strings, sorted — the exact set
/// Gentrius must produce for a full enumeration.
pub fn brute_force_stand(problem: &StandProblem, taxa: &TaxonSet) -> Vec<String> {
    let mut out = Vec::new();
    brute_force_visit(problem, |t| out.push(to_newick(t, taxa)));
    out.sort();
    out
}

/// Calls `visit` for every tree on the stand, in enumeration order.
pub fn brute_force_visit<F: FnMut(&Tree)>(problem: &StandProblem, mut visit: F) {
    let n = problem.num_taxa();
    assert!(
        n <= MAX_BRUTE_FORCE_TAXA,
        "brute force on {n} taxa would enumerate {} topologies",
        num_unrooted_topologies(n)
    );
    let ids: Vec<TaxonId> = problem
        .all_taxa()
        .iter()
        .map(|t| TaxonId(t as u32))
        .collect();
    for_each_topology(problem.universe(), &ids, |t| {
        if problem.constraints().iter().all(|c| displays(t, c)) {
            visit(t);
        }
    });
}

/// Convenience: runs Gentrius (serial, with the given config) *and* the
/// brute force, returning `(gentrius_stand, brute_force_stand)` as sorted
/// canonical Newick sets for comparison. The run must complete (no
/// stopping rule) for the comparison to be meaningful; this is asserted.
pub fn verify_against_brute_force(
    problem: &StandProblem,
    taxa: &TaxonSet,
    config: &crate::config::GentriusConfig,
) -> (Vec<String>, Vec<String>) {
    let mut sink = crate::sink::CollectNewick::with_cap(taxa, usize::MAX);
    let r = crate::driver::run_serial(problem, config, &mut sink).expect("valid problem");
    assert!(
        r.complete(),
        "verification requires a complete enumeration; raise the stopping rules"
    );
    sink.out.sort();
    (sink.out, brute_force_stand(problem, taxa))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GentriusConfig;
    use phylo::newick::parse_forest;

    fn setup(newicks: &[&str]) -> (TaxonSet, StandProblem) {
        let (taxa, trees) = parse_forest(newicks.iter().copied()).unwrap();
        (taxa, StandProblem::from_constraints(trees).unwrap())
    }

    #[test]
    fn count_matches_stand_len() {
        let (taxa, p) = setup(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let stand = brute_force_stand(&p, &taxa);
        assert_eq!(brute_force_count(&p) as usize, stand.len());
        assert!(!stand.is_empty());
    }

    #[test]
    fn verify_helper_agrees() {
        let (taxa, p) = setup(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let (gentrius, brute) =
            verify_against_brute_force(&p, &taxa, &GentriusConfig::exhaustive());
        assert_eq!(gentrius, brute);
    }

    #[test]
    #[should_panic(expected = "brute force on")]
    fn refuses_large_instances() {
        use phylo::generate::{random_tree_on_n, ShapeModel};
        use rand::SeedableRng;
        let t = random_tree_on_n(
            12,
            ShapeModel::Uniform,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(1),
        );
        let p = StandProblem::from_constraints(vec![t]).unwrap();
        brute_force_count(&p);
    }
}
