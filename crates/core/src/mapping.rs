//! Attachment projections — our realization of the paper's *double-edge
//! mapping* (§II-A and the Gentrius supplement).
//!
//! For an agile tree `A` on taxa `W` and a constraint tree `T` on `Y`, let
//! `C = W ∩ Y` be the common taxa. The invariant maintained by the search is
//! `A|C = T|C` (the *common subtree*). Every edge of `A` *projects* onto the
//! edge of the common subtree that a leaf inserted on it would subdivide;
//! the same projection computed on `T` tells, for each taxon `t ∈ Y \ W`,
//! which common-subtree edge `b̂(t)` it must subdivide. A branch of `A` is
//! then admissible for `t` (w.r.t. this constraint) iff it projects onto
//! `b̂(t)`.
//!
//! We identify common-subtree edges canonically by their **split of `C`**,
//! so projections computed independently on `A` and `T` are directly
//! comparable.
//!
//! ### Why the projection is total and single-valued
//!
//! Root the tree at a `C`-leaf and consider the Steiner (minimal spanning)
//! subtree of the `C`-leaves. An edge whose below-set of `C`-taxa is
//! non-empty lies on a path of the Steiner tree and projects to that path's
//! common-subtree edge (its split). An edge with an empty below-set hangs
//! off the Steiner tree; in a **binary** tree nothing can hang off a Steiner
//! *branching* vertex (it already has degree 3 inside the Steiner tree), so
//! the hanging point is always interior to exactly one path — the edge
//! inherits that path's split. Hence for `|C| ≥ 2` every edge of the tree
//! projects to exactly one common-subtree edge; for `|C| ≤ 1` the common
//! subtree has no edges and every branch is admissible.

use phylo::bitset::BitSet;
use phylo::split::{Split, SplitArena, SplitId};
use phylo::taxa::TaxonId;
use phylo::tree::{EdgeId, NodeId, Tree};
use std::sync::Arc;

/// The attachment projection of every edge of a tree onto the common
/// subtree with taxon set `C`.
#[derive(Clone, Debug)]
pub enum AttachMap {
    /// `|C| ≤ 1`: the common subtree has no edges; every branch of the
    /// tree is admissible for any taxon of this constraint.
    AllAdmissible,
    /// `|C| ≥ 2`: `map[e]` is the canonical `C`-split of the common-subtree
    /// edge that edge `e` projects onto (`None` for dead edge ids). Splits
    /// are shared (`Arc`) across the many edges projecting onto the same
    /// common-subtree edge — building the map allocates one split per
    /// *Steiner* edge instead of one per tree edge.
    Projected(Vec<Option<Arc<Split>>>),
}

impl AttachMap {
    /// Looks up the projection of a live edge. Returns `None` in the
    /// `AllAdmissible` case (no projection exists / not needed).
    pub fn get(&self, e: EdgeId) -> Option<&Split> {
        match self {
            AttachMap::AllAdmissible => None,
            AttachMap::Projected(v) => v[e.index()].as_deref(),
        }
    }

    /// True if the map is the degenerate all-admissible case.
    pub fn all_admissible(&self) -> bool {
        matches!(self, AttachMap::AllAdmissible)
    }
}

/// Computes the attachment projection of `tree` w.r.t. the common taxon set
/// `c` (which must be a subset of `tree`'s leaf set).
pub fn attachment_map(tree: &Tree, c: &BitSet) -> AttachMap {
    debug_assert!(c.is_subset(tree.taxa()), "C must be common taxa");
    if c.count() < 2 {
        return AttachMap::AllAdmissible;
    }
    // Root at the C-leaf with the smallest taxon id (deterministic).
    let root_taxon = TaxonId(c.min_member().unwrap() as u32);
    let root = tree.leaf(root_taxon).expect("C-taxon missing from tree");
    let order = tree.preorder(root);

    // Bottom-up: C-taxa below each node's parent edge.
    let mut below: Vec<BitSet> = (0..tree.node_id_bound())
        .map(|_| BitSet::new(tree.universe()))
        .collect();
    for &(v, _) in &order {
        if let Some(t) = tree.taxon(v) {
            if c.contains(t.index()) {
                below[v.index()].insert(t.index());
            }
        }
    }
    for &(v, pe) in order.iter().rev() {
        if let Some(pe) = pe {
            let parent = tree.opposite(pe, v);
            let child_set = below[v.index()].clone();
            below[parent.index()].union_with(&child_set);
        }
    }

    // Top-down: Steiner edges get their own split; hanging edges inherit
    // (and share) the split of the nearest ancestor Steiner edge.
    let mut map: Vec<Option<Arc<Split>>> = vec![None; tree.edge_id_bound()];
    let mut inherit: Vec<Option<Arc<Split>>> = vec![None; tree.node_id_bound()];
    for &(v, pe) in &order {
        let Some(pe) = pe else { continue };
        let parent = tree.opposite(pe, v);
        let split = if below[v.index()].is_empty() {
            inherit[parent.index()]
                .clone()
                .expect("hanging edge with no Steiner ancestor")
        } else {
            Arc::new(Split::canonical(below[v.index()].clone(), c))
        };
        map[pe.index()] = Some(Arc::clone(&split));
        inherit[v.index()] = Some(split);
    }
    AttachMap::Projected(map)
}

/// For a constraint tree `T` and common taxa `c`, returns for each taxon in
/// `T`'s leaf set *outside* `c` the common-subtree edge (as a `C`-split) it
/// attaches to — the `b̂(t)` of the admissibility test. Output is indexed by
/// taxon id (`None` for taxa that are in `c`, absent, or when `|c| ≤ 1`).
pub fn missing_taxon_targets(tree: &Tree, c: &BitSet) -> Vec<Option<Split>> {
    let mut out: Vec<Option<Split>> = vec![None; tree.universe()];
    let map = attachment_map(tree, c);
    let AttachMap::Projected(map) = map else {
        return out;
    };
    for (leaf, taxon) in tree.leaves() {
        if c.contains(taxon.index()) {
            continue;
        }
        let pendant = tree.adjacent_edges(leaf)[0];
        out[taxon.index()] = map[pendant.index()].as_deref().cloned();
    }
    out
}

/// Reusable buffers for [`project_edges_into`] / [`project_targets_into`].
///
/// One instance lives inside the edge-indexed kernel and is threaded
/// through every rebuild, so the steady-state explore loop performs no
/// per-node heap allocation: the per-node below-sets, the inherit vector
/// and the traversal buffers are all recycled across rebuilds.
pub struct ProjectionScratch {
    /// `below[v]` = C-taxa in the subtree below node `v`'s parent edge.
    below: Vec<BitSet>,
    /// Nearest-Steiner-ancestor split id per node (top-down inherit pass).
    inherit: Vec<SplitId>,
    order: Vec<(NodeId, Option<EdgeId>)>,
    stack: Vec<(NodeId, Option<EdgeId>)>,
}

impl ProjectionScratch {
    /// Creates empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        ProjectionScratch {
            below: Vec::new(),
            inherit: Vec::new(),
            order: Vec::new(),
            stack: Vec::new(),
        }
    }
}

impl Default for ProjectionScratch {
    fn default() -> Self {
        ProjectionScratch::new()
    }
}

/// Mutable access to two distinct slots of a slice (the bottom-up fold
/// unions a child's below-set into its parent's without cloning).
fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Edge-indexed variant of [`attachment_map`]: writes the projection of
/// every live edge of `tree` onto the common subtree of `c` into `map`
/// (indexed by `EdgeId`, dead slots are [`SplitId::NONE`]), interning the
/// splits into `arena`. Returns `false` for the degenerate `|C| ≤ 1` case
/// (every branch admissible; `map` contents are then meaningless).
///
/// Equal splits intern to equal ids, so two projections built against the
/// same arena compare with a single `u32` equality per edge.
pub fn project_edges_into(
    tree: &Tree,
    c: &BitSet,
    arena: &mut SplitArena,
    scratch: &mut ProjectionScratch,
    map: &mut Vec<SplitId>,
) -> bool {
    debug_assert!(c.is_subset(tree.taxa()), "C must be common taxa");
    if c.count() < 2 {
        return false;
    }
    // Root at the C-leaf with the smallest taxon id (deterministic). The
    // subset assertion above guarantees the leaf exists; degrade to
    // all-admissible rather than panic if the contract is ever broken.
    let Some(root) = c.min_member().and_then(|m| tree.leaf(TaxonId(m as u32))) else {
        debug_assert!(false, "C-taxon missing from tree");
        return false;
    };
    tree.preorder_into(root, &mut scratch.stack, &mut scratch.order);

    // Bottom-up: C-taxa below each node's parent edge.
    let nodes = tree.node_id_bound();
    while scratch.below.len() < nodes {
        scratch.below.push(BitSet::new(tree.universe()));
    }
    for &(v, _) in &scratch.order {
        let below = &mut scratch.below[v.index()];
        below.clear();
        if let Some(t) = tree.taxon(v) {
            if c.contains(t.index()) {
                below.insert(t.index());
            }
        }
    }
    for i in (0..scratch.order.len()).rev() {
        let (v, pe) = scratch.order[i];
        if let Some(pe) = pe {
            let parent = tree.opposite(pe, v);
            let (pb, vb) = two_mut(&mut scratch.below, parent.index(), v.index());
            pb.union_with(vb);
        }
    }

    // Top-down: Steiner edges intern their own split; hanging edges inherit
    // the id of the nearest ancestor Steiner edge.
    map.clear();
    map.resize(tree.edge_id_bound(), SplitId::NONE);
    scratch.inherit.clear();
    scratch.inherit.resize(nodes, SplitId::NONE);
    for &(v, pe) in &scratch.order {
        let Some(pe) = pe else { continue };
        let parent = tree.opposite(pe, v);
        let sid = if scratch.below[v.index()].is_empty() {
            let inherited = scratch.inherit[parent.index()];
            debug_assert!(
                !inherited.is_none(),
                "hanging edge with no Steiner ancestor"
            );
            inherited
        } else {
            arena.intern_side(&scratch.below[v.index()], c)
        };
        map[pe.index()] = sid;
        scratch.inherit[v.index()] = sid;
    }
    true
}

/// Edge-indexed variant of [`missing_taxon_targets`]: fills `out` (indexed
/// by taxon id over the whole universe) with the id of the common-subtree
/// edge each taxon of `tree`'s leaf set outside `c` must subdivide —
/// [`SplitId::NONE`] for taxa in `c`, absent taxa, or when `|C| ≤ 1`
/// (in which case `false` is returned). `cons_map` is scratch for the
/// constraint tree's own edge projection. Interns into the same `arena`
/// as the agile projection so target and projection ids are comparable.
pub fn project_targets_into(
    tree: &Tree,
    c: &BitSet,
    arena: &mut SplitArena,
    scratch: &mut ProjectionScratch,
    cons_map: &mut Vec<SplitId>,
    out: &mut Vec<SplitId>,
) -> bool {
    out.clear();
    out.resize(tree.universe(), SplitId::NONE);
    if !project_edges_into(tree, c, arena, scratch, cons_map) {
        return false;
    }
    for (leaf, taxon) in tree.leaves() {
        if c.contains(taxon.index()) {
            continue;
        }
        let pendant = tree.adjacent_edges(leaf)[0];
        out[taxon.index()] = cons_map[pendant.index()];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::newick::parse_forest;
    use phylo::ops::{displays, restrict};
    use phylo::split::topo_eq;

    /// Reference implementation of admissibility by definition: insert `t`
    /// on edge `e` of `agile` and check `A'|(C∪{t}) = T|(C∪{t})`.
    fn admissible_by_definition(agile: &Tree, constraint: &Tree, t: TaxonId, e: EdgeId) -> bool {
        let mut a = agile.clone();
        a.insert_leaf_on_edge(t, e);
        let mut cu = agile.taxa().intersection(constraint.taxa());
        cu.insert(t.index());
        topo_eq(&restrict(&a, &cu), &restrict(constraint, &cu))
    }

    /// Admissibility via the projection machinery.
    fn admissible_by_projection(agile: &Tree, constraint: &Tree, t: TaxonId, e: EdgeId) -> bool {
        let c = agile.taxa().intersection(constraint.taxa());
        let targets = missing_taxon_targets(constraint, &c);
        let Some(target) = &targets[t.index()] else {
            return true; // |C| <= 1 → every edge admissible
        };
        let map = attachment_map(agile, &c);
        map.get(e) == Some(target)
    }

    #[test]
    fn projection_matches_definition_small() {
        // Agile on {A,B,C,D}; constraint on {A,B,C,E}; insert E.
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((A,B),(C,E));"]).unwrap();
        let agile = &trees[0];
        let cons = &trees[1];
        let e_id = taxa.get("E").unwrap();
        let mut n_adm = 0;
        for e in agile.edges() {
            let d = admissible_by_definition(agile, cons, e_id, e);
            let p = admissible_by_projection(agile, cons, e_id, e);
            assert_eq!(d, p, "mismatch on edge {e:?}");
            n_adm += usize::from(d);
        }
        // E must end up sister to C among {A,B,C}: admissible are C's
        // pendant edge, the internal edge, and D's pendant (D is not in the
        // constraint, so (C,(D,E)) also restricts to (C,E)).
        assert_eq!(n_adm, 3);
    }

    #[test]
    fn hanging_subtree_edges_inherit() {
        // Agile has a whole subtree with no common taxa; all of its edges
        // plus the path edges they hang off must be admissible together.
        let (taxa, trees) = parse_forest([
            "((A,B),((X,Y),(C,D)));", // agile; X,Y not in constraint
            "((A,B),(C,E));",         // constraint: E next to C
        ])
        .unwrap();
        let agile = &trees[0];
        let cons = &trees[1];
        let e_id = taxa.get("E").unwrap();
        for e in agile.edges() {
            assert_eq!(
                admissible_by_definition(agile, cons, e_id, e),
                admissible_by_projection(agile, cons, e_id, e),
                "mismatch on edge {e:?}"
            );
        }
    }

    #[test]
    fn all_admissible_when_overlap_tiny() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((E,F),(G,A));"]).unwrap();
        let agile = &trees[0];
        let cons = &trees[1];
        // Common taxa = {A} → |C| = 1 → every edge admissible for E/F/G.
        let c = agile.taxa().intersection(cons.taxa());
        assert_eq!(c.count(), 1);
        assert!(attachment_map(agile, &c).all_admissible());
        let e_id = taxa.get("E").unwrap();
        for e in agile.edges() {
            assert!(admissible_by_projection(agile, cons, e_id, e));
        }
    }

    #[test]
    fn projection_randomized_against_definition() {
        use phylo::generate::{random_tree, ShapeModel};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let universe = 12usize;
        for trial in 0..40 {
            // Source tree on all taxa; agile = restriction to a subset W;
            // constraint = restriction to a subset Y; test every missing
            // taxon of Y on every agile edge.
            let ids: Vec<TaxonId> = (0..universe as u32).map(TaxonId).collect();
            let source = random_tree(universe, &ids, ShapeModel::Uniform, &mut rng);
            use rand::seq::SliceRandom;
            use rand::Rng;
            let mut shuffled = ids.clone();
            shuffled.shuffle(&mut rng);
            let w_size = rng.gen_range(3..=8);
            let y_size = rng.gen_range(4..=9);
            let w = BitSet::from_iter(universe, shuffled[..w_size].iter().map(|t| t.index()));
            shuffled.shuffle(&mut rng);
            let y = BitSet::from_iter(universe, shuffled[..y_size].iter().map(|t| t.index()));
            let agile = restrict(&source, &w);
            let cons = restrict(&source, &y);
            debug_assert!(displays(&source, &agile));
            for t in y.difference(&w).iter() {
                let t = TaxonId(t as u32);
                for e in agile.edges() {
                    assert_eq!(
                        admissible_by_definition(&agile, &cons, t, e),
                        admissible_by_projection(&agile, &cons, t, e),
                        "trial {trial}: taxon {t:?} edge {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn edge_indexed_projection_matches_arc_machinery() {
        use phylo::generate::{random_tree, ShapeModel};
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let universe = 12usize;
        let mut arena = SplitArena::new(universe);
        let mut scratch = ProjectionScratch::new();
        let (mut map, mut cons_map, mut targets) = (Vec::new(), Vec::new(), Vec::new());
        for trial in 0..40 {
            let ids: Vec<TaxonId> = (0..universe as u32).map(TaxonId).collect();
            let source = random_tree(universe, &ids, ShapeModel::Uniform, &mut rng);
            let mut shuffled = ids.clone();
            shuffled.shuffle(&mut rng);
            let w_size = rng.gen_range(3..=8);
            let y_size = rng.gen_range(4..=9);
            let w = BitSet::from_iter(universe, shuffled[..w_size].iter().map(|t| t.index()));
            shuffled.shuffle(&mut rng);
            let y = BitSet::from_iter(universe, shuffled[..y_size].iter().map(|t| t.index()));
            let agile = restrict(&source, &w);
            let cons = restrict(&source, &y);
            let c = agile.taxa().intersection(cons.taxa());

            let reference = attachment_map(&agile, &c);
            let projected = project_edges_into(&agile, &c, &mut arena, &mut scratch, &mut map);
            assert_eq!(projected, !reference.all_admissible(), "trial {trial}");
            if projected {
                for e in agile.edges() {
                    let via_arena = arena.get(map[e.index()]).map(|s| s.side());
                    let via_arc = reference.get(e).map(|s| s.side());
                    assert_eq!(via_arena, via_arc, "trial {trial}, edge {e:?}");
                }
            }

            let ref_targets = missing_taxon_targets(&cons, &c);
            let has_targets = project_targets_into(
                &cons,
                &c,
                &mut arena,
                &mut scratch,
                &mut cons_map,
                &mut targets,
            );
            assert_eq!(has_targets, projected, "trial {trial}");
            for t in 0..universe {
                let via_arena = arena.get(targets[t]).map(|s| s.side());
                let via_arc = ref_targets[t].as_ref().map(|s| s.side());
                assert_eq!(via_arena, via_arc, "trial {trial}, taxon {t}");
            }
        }
    }

    #[test]
    fn targets_only_for_missing_taxa() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((A,B),(C,E));"]).unwrap();
        let c = trees[0].taxa().intersection(trees[1].taxa());
        let targets = missing_taxon_targets(&trees[1], &c);
        assert!(targets[taxa.get("A").unwrap().index()].is_none());
        assert!(targets[taxa.get("E").unwrap().index()].is_some());
        assert!(targets[taxa.get("D").unwrap().index()].is_none()); // not in constraint
    }
}
