//! Attachment projections — our realization of the paper's *double-edge
//! mapping* (§II-A and the Gentrius supplement).
//!
//! For an agile tree `A` on taxa `W` and a constraint tree `T` on `Y`, let
//! `C = W ∩ Y` be the common taxa. The invariant maintained by the search is
//! `A|C = T|C` (the *common subtree*). Every edge of `A` *projects* onto the
//! edge of the common subtree that a leaf inserted on it would subdivide;
//! the same projection computed on `T` tells, for each taxon `t ∈ Y \ W`,
//! which common-subtree edge `b̂(t)` it must subdivide. A branch of `A` is
//! then admissible for `t` (w.r.t. this constraint) iff it projects onto
//! `b̂(t)`.
//!
//! We identify common-subtree edges canonically by their **split of `C`**,
//! so projections computed independently on `A` and `T` are directly
//! comparable.
//!
//! ### Why the projection is total and single-valued
//!
//! Root the tree at a `C`-leaf and consider the Steiner (minimal spanning)
//! subtree of the `C`-leaves. An edge whose below-set of `C`-taxa is
//! non-empty lies on a path of the Steiner tree and projects to that path's
//! common-subtree edge (its split). An edge with an empty below-set hangs
//! off the Steiner tree; in a **binary** tree nothing can hang off a Steiner
//! *branching* vertex (it already has degree 3 inside the Steiner tree), so
//! the hanging point is always interior to exactly one path — the edge
//! inherits that path's split. Hence for `|C| ≥ 2` every edge of the tree
//! projects to exactly one common-subtree edge; for `|C| ≤ 1` the common
//! subtree has no edges and every branch is admissible.

use phylo::bitset::BitSet;
use phylo::split::Split;
use phylo::taxa::TaxonId;
use phylo::tree::{EdgeId, Tree};
use std::sync::Arc;

/// The attachment projection of every edge of a tree onto the common
/// subtree with taxon set `C`.
#[derive(Clone, Debug)]
pub enum AttachMap {
    /// `|C| ≤ 1`: the common subtree has no edges; every branch of the
    /// tree is admissible for any taxon of this constraint.
    AllAdmissible,
    /// `|C| ≥ 2`: `map[e]` is the canonical `C`-split of the common-subtree
    /// edge that edge `e` projects onto (`None` for dead edge ids). Splits
    /// are shared (`Arc`) across the many edges projecting onto the same
    /// common-subtree edge — building the map allocates one split per
    /// *Steiner* edge instead of one per tree edge.
    Projected(Vec<Option<Arc<Split>>>),
}

impl AttachMap {
    /// Looks up the projection of a live edge. Returns `None` in the
    /// `AllAdmissible` case (no projection exists / not needed).
    pub fn get(&self, e: EdgeId) -> Option<&Split> {
        match self {
            AttachMap::AllAdmissible => None,
            AttachMap::Projected(v) => v[e.index()].as_deref(),
        }
    }

    /// True if the map is the degenerate all-admissible case.
    pub fn all_admissible(&self) -> bool {
        matches!(self, AttachMap::AllAdmissible)
    }
}

/// Computes the attachment projection of `tree` w.r.t. the common taxon set
/// `c` (which must be a subset of `tree`'s leaf set).
pub fn attachment_map(tree: &Tree, c: &BitSet) -> AttachMap {
    debug_assert!(c.is_subset(tree.taxa()), "C must be common taxa");
    if c.count() < 2 {
        return AttachMap::AllAdmissible;
    }
    // Root at the C-leaf with the smallest taxon id (deterministic).
    let root_taxon = TaxonId(c.min_member().unwrap() as u32);
    let root = tree.leaf(root_taxon).expect("C-taxon missing from tree");
    let order = tree.preorder(root);

    // Bottom-up: C-taxa below each node's parent edge.
    let mut below: Vec<BitSet> = (0..tree.node_id_bound())
        .map(|_| BitSet::new(tree.universe()))
        .collect();
    for &(v, _) in &order {
        if let Some(t) = tree.taxon(v) {
            if c.contains(t.index()) {
                below[v.index()].insert(t.index());
            }
        }
    }
    for &(v, pe) in order.iter().rev() {
        if let Some(pe) = pe {
            let parent = tree.opposite(pe, v);
            let child_set = below[v.index()].clone();
            below[parent.index()].union_with(&child_set);
        }
    }

    // Top-down: Steiner edges get their own split; hanging edges inherit
    // (and share) the split of the nearest ancestor Steiner edge.
    let mut map: Vec<Option<Arc<Split>>> = vec![None; tree.edge_id_bound()];
    let mut inherit: Vec<Option<Arc<Split>>> = vec![None; tree.node_id_bound()];
    for &(v, pe) in &order {
        let Some(pe) = pe else { continue };
        let parent = tree.opposite(pe, v);
        let split = if below[v.index()].is_empty() {
            inherit[parent.index()]
                .clone()
                .expect("hanging edge with no Steiner ancestor")
        } else {
            Arc::new(Split::canonical(below[v.index()].clone(), c))
        };
        map[pe.index()] = Some(Arc::clone(&split));
        inherit[v.index()] = Some(split);
    }
    AttachMap::Projected(map)
}

/// For a constraint tree `T` and common taxa `c`, returns for each taxon in
/// `T`'s leaf set *outside* `c` the common-subtree edge (as a `C`-split) it
/// attaches to — the `b̂(t)` of the admissibility test. Output is indexed by
/// taxon id (`None` for taxa that are in `c`, absent, or when `|c| ≤ 1`).
pub fn missing_taxon_targets(tree: &Tree, c: &BitSet) -> Vec<Option<Split>> {
    let mut out: Vec<Option<Split>> = vec![None; tree.universe()];
    let map = attachment_map(tree, c);
    let AttachMap::Projected(map) = map else {
        return out;
    };
    for (leaf, taxon) in tree.leaves() {
        if c.contains(taxon.index()) {
            continue;
        }
        let pendant = tree.adjacent_edges(leaf)[0];
        out[taxon.index()] = map[pendant.index()].as_deref().cloned();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::newick::parse_forest;
    use phylo::ops::{displays, restrict};
    use phylo::split::topo_eq;

    /// Reference implementation of admissibility by definition: insert `t`
    /// on edge `e` of `agile` and check `A'|(C∪{t}) = T|(C∪{t})`.
    fn admissible_by_definition(agile: &Tree, constraint: &Tree, t: TaxonId, e: EdgeId) -> bool {
        let mut a = agile.clone();
        a.insert_leaf_on_edge(t, e);
        let mut cu = agile.taxa().intersection(constraint.taxa());
        cu.insert(t.index());
        topo_eq(&restrict(&a, &cu), &restrict(constraint, &cu))
    }

    /// Admissibility via the projection machinery.
    fn admissible_by_projection(agile: &Tree, constraint: &Tree, t: TaxonId, e: EdgeId) -> bool {
        let c = agile.taxa().intersection(constraint.taxa());
        let targets = missing_taxon_targets(constraint, &c);
        let Some(target) = &targets[t.index()] else {
            return true; // |C| <= 1 → every edge admissible
        };
        let map = attachment_map(agile, &c);
        map.get(e) == Some(target)
    }

    #[test]
    fn projection_matches_definition_small() {
        // Agile on {A,B,C,D}; constraint on {A,B,C,E}; insert E.
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((A,B),(C,E));"]).unwrap();
        let agile = &trees[0];
        let cons = &trees[1];
        let e_id = taxa.get("E").unwrap();
        let mut n_adm = 0;
        for e in agile.edges() {
            let d = admissible_by_definition(agile, cons, e_id, e);
            let p = admissible_by_projection(agile, cons, e_id, e);
            assert_eq!(d, p, "mismatch on edge {e:?}");
            n_adm += usize::from(d);
        }
        // E must end up sister to C among {A,B,C}: admissible are C's
        // pendant edge, the internal edge, and D's pendant (D is not in the
        // constraint, so (C,(D,E)) also restricts to (C,E)).
        assert_eq!(n_adm, 3);
    }

    #[test]
    fn hanging_subtree_edges_inherit() {
        // Agile has a whole subtree with no common taxa; all of its edges
        // plus the path edges they hang off must be admissible together.
        let (taxa, trees) = parse_forest([
            "((A,B),((X,Y),(C,D)));", // agile; X,Y not in constraint
            "((A,B),(C,E));",         // constraint: E next to C
        ])
        .unwrap();
        let agile = &trees[0];
        let cons = &trees[1];
        let e_id = taxa.get("E").unwrap();
        for e in agile.edges() {
            assert_eq!(
                admissible_by_definition(agile, cons, e_id, e),
                admissible_by_projection(agile, cons, e_id, e),
                "mismatch on edge {e:?}"
            );
        }
    }

    #[test]
    fn all_admissible_when_overlap_tiny() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((E,F),(G,A));"]).unwrap();
        let agile = &trees[0];
        let cons = &trees[1];
        // Common taxa = {A} → |C| = 1 → every edge admissible for E/F/G.
        let c = agile.taxa().intersection(cons.taxa());
        assert_eq!(c.count(), 1);
        assert!(attachment_map(agile, &c).all_admissible());
        let e_id = taxa.get("E").unwrap();
        for e in agile.edges() {
            assert!(admissible_by_projection(agile, cons, e_id, e));
        }
    }

    #[test]
    fn projection_randomized_against_definition() {
        use phylo::generate::{random_tree, ShapeModel};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let universe = 12usize;
        for trial in 0..40 {
            // Source tree on all taxa; agile = restriction to a subset W;
            // constraint = restriction to a subset Y; test every missing
            // taxon of Y on every agile edge.
            let ids: Vec<TaxonId> = (0..universe as u32).map(TaxonId).collect();
            let source = random_tree(universe, &ids, ShapeModel::Uniform, &mut rng);
            use rand::seq::SliceRandom;
            use rand::Rng;
            let mut shuffled = ids.clone();
            shuffled.shuffle(&mut rng);
            let w_size = rng.gen_range(3..=8);
            let y_size = rng.gen_range(4..=9);
            let w = BitSet::from_iter(universe, shuffled[..w_size].iter().map(|t| t.index()));
            shuffled.shuffle(&mut rng);
            let y = BitSet::from_iter(universe, shuffled[..y_size].iter().map(|t| t.index()));
            let agile = restrict(&source, &w);
            let cons = restrict(&source, &y);
            debug_assert!(displays(&source, &agile));
            for t in y.difference(&w).iter() {
                let t = TaxonId(t as u32);
                for e in agile.edges() {
                    assert_eq!(
                        admissible_by_definition(&agile, &cons, t, e),
                        admissible_by_projection(&agile, &cons, t, e),
                        "trial {trial}: taxon {t:?} edge {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn targets_only_for_missing_taxa() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((A,B),(C,E));"]).unwrap();
        let c = trees[0].taxa().intersection(trees[1].taxa());
        let targets = missing_taxon_targets(&trees[1], &c);
        assert!(targets[taxa.get("A").unwrap().index()].is_none());
        assert!(targets[taxa.get("E").unwrap().index()].is_some());
        assert!(targets[taxa.get("D").unwrap().index()].is_none()); // not in constraint
    }
}
