//! Stand post-analysis: branch support across the enumerated stand.
//!
//! Enumerating a stand answers "how many equally-scoring trees are there";
//! the follow-up question — central to the paper's motivation (§I) — is
//! *which parts of the inferred tree survive across the whole stand*. This
//! module provides a streaming sink that accumulates split frequencies
//! while Gentrius enumerates, plus a summary with strict / majority-rule
//! consensus trees and per-branch support for a reference tree.

use crate::sink::StandSink;
use phylo::consensus::SplitFrequencies;
use phylo::split::{nontrivial_splits, Split};
use phylo::tree::Tree;

/// A [`StandSink`] that accumulates split frequencies over the stand
/// without storing the trees (memory stays O(#distinct splits)).
#[derive(Default)]
pub struct SplitSupportSink {
    freqs: SplitFrequencies,
}

impl SplitSupportSink {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes the accumulation and produces the summary.
    pub fn finish(self) -> StandSummary {
        StandSummary { freqs: self.freqs }
    }

    /// Read access to the running frequencies.
    pub fn frequencies(&self) -> &SplitFrequencies {
        &self.freqs
    }
}

impl StandSink for SplitSupportSink {
    fn stand_tree(&mut self, tree: &Tree) {
        self.freqs.add(tree);
    }
}

/// Summary of a (possibly partially) enumerated stand.
pub struct StandSummary {
    freqs: SplitFrequencies,
}

impl StandSummary {
    /// Number of stand trees accumulated.
    pub fn num_trees(&self) -> u64 {
        self.freqs.num_trees()
    }

    /// The underlying split frequencies.
    pub fn frequencies(&self) -> &SplitFrequencies {
        &self.freqs
    }

    /// The strict consensus of the accumulated stand.
    pub fn strict_consensus(&self) -> Option<Tree> {
        self.freqs.strict_consensus()
    }

    /// The majority-rule consensus of the accumulated stand.
    pub fn majority_consensus(&self) -> Option<Tree> {
        self.freqs.majority_consensus()
    }

    /// For each non-trivial split of `reference`, the fraction of stand
    /// trees containing it — the per-branch support annotation. Returns
    /// `(split, support)` in descending support order.
    pub fn branch_support(&self, reference: &Tree) -> Vec<(Split, f64)> {
        let total = self.freqs.num_trees().max(1) as f64;
        let mut out: Vec<(Split, f64)> = nontrivial_splits(reference)
            .into_iter()
            .map(|s| {
                let count = self
                    .freqs
                    .iter()
                    .find(|(fs, _)| **fs == s)
                    .map(|(_, c)| c)
                    .unwrap_or(0);
                (s, count as f64 / total)
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite support"));
        out
    }

    /// Fraction of the reference tree's internal branches that appear in
    /// *every* stand tree (fully resolved despite the missing data).
    pub fn resolved_fraction(&self, reference: &Tree) -> f64 {
        let support = self.branch_support(reference);
        if support.is_empty() {
            return 1.0;
        }
        let resolved = support
            .iter()
            .filter(|(_, s)| (*s - 1.0).abs() < 1e-12)
            .count();
        resolved as f64 / support.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GentriusConfig;
    use crate::driver::run_serial;
    use crate::problem::StandProblem;
    use phylo::newick::parse_forest;
    use phylo::ops::displays;
    use phylo::split::topo_eq;

    fn analyse(newicks: &[&str]) -> (Vec<Tree>, StandSummary) {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        let problem = StandProblem::from_constraints(trees.clone()).unwrap();
        let mut sink = SplitSupportSink::new();
        let r = run_serial(&problem, &GentriusConfig::exhaustive(), &mut sink).unwrap();
        assert!(r.complete());
        (trees, sink.finish())
    }

    #[test]
    fn summary_counts_match_run() {
        let (_, summary) = analyse(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        assert!(summary.num_trees() > 1);
        let strict = summary.strict_consensus().unwrap();
        let maj = summary.majority_consensus().unwrap();
        assert_eq!(strict.leaf_count(), 6);
        assert_eq!(maj.leaf_count(), 6);
    }

    #[test]
    fn consensus_never_conflicts_with_constraints() {
        // Every stand tree displays every constraint, so a split present
        // in >50% (or 100%) of them cannot conflict with a constraint:
        // the consensus restricted to a constraint's taxa must be pairwise
        // compatible with that constraint's splits (it may be less
        // resolved, never differently resolved).
        let (constraints, summary) = analyse(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        for cons_tree in [summary.strict_consensus(), summary.majority_consensus()] {
            let cons_tree = cons_tree.unwrap();
            for c in &constraints {
                let r = phylo::ops::restrict(&cons_tree, c.taxa());
                for s in phylo::split::nontrivial_splits(&r) {
                    assert!(phylo::split::nontrivial_splits(c)
                        .iter()
                        .all(|cs| cs.compatible_with(&s, r.taxa())));
                }
            }
        }
    }

    #[test]
    fn branch_support_of_a_stand_member() {
        let (_, trees) = parse_forest(["((A,B),(C,D));", "((C,D),(E,F));"]).unwrap();
        let problem = StandProblem::from_constraints(trees).unwrap();
        let mut collect = crate::sink::CollectTrees::with_cap(10_000);
        let mut support = SplitSupportSink::new();
        struct Both<'a>(&'a mut crate::sink::CollectTrees, &'a mut SplitSupportSink);
        impl StandSink for Both<'_> {
            fn stand_tree(&mut self, t: &Tree) {
                self.0.stand_tree(t);
                self.1.stand_tree(t);
            }
        }
        let r = run_serial(
            &problem,
            &GentriusConfig::exhaustive(),
            &mut Both(&mut collect, &mut support),
        )
        .unwrap();
        assert!(r.complete());
        let summary = support.finish();
        let member = &collect.trees[0];
        let sup = summary.branch_support(member);
        assert_eq!(sup.len(), member.leaf_count() - 3);
        for (_, s) in &sup {
            assert!(*s > 0.0 && *s <= 1.0);
        }
        // Note: no split is *forced* on this stand — the missing taxa E,F
        // can invade any cherry of the first constraint, so even AB|rest
        // is below 1.0. Supports must simply be consistent frequencies.
        let rf = summary.resolved_fraction(member);
        assert!((0.0..=1.0).contains(&rf));
    }

    #[test]
    fn single_tree_stand_fully_resolved() {
        let (_, trees) = parse_forest(["((A,B),((C,D),E));"]).unwrap();
        let species = trees[0].clone();
        let problem = StandProblem::from_constraints(trees).unwrap();
        let mut sink = SplitSupportSink::new();
        let r = run_serial(&problem, &GentriusConfig::exhaustive(), &mut sink).unwrap();
        assert_eq!(r.stats.stand_trees, 1);
        let summary = sink.finish();
        let strict = summary.strict_consensus().unwrap();
        assert!(topo_eq(&strict, &species));
        assert_eq!(summary.resolved_fraction(&species), 1.0);
        assert!(displays(&strict, &species));
    }
}
