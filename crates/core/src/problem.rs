//! The stand-enumeration problem instance: a set of unrooted, incomplete
//! constraint trees over a common taxon universe.

use crate::config::InitialTreeRule;
use phylo::bitset::BitSet;
use phylo::pam::Pam;
use phylo::tree::Tree;
use std::fmt;

/// Errors constructing a [`StandProblem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProblemError {
    /// No constraint trees were given.
    Empty,
    /// Constraint `i` is not a binary unrooted tree.
    NotBinary(usize),
    /// Constraint `i` has fewer than three taxa (no informative topology
    /// and no place to start an insertion from).
    TooSmall(usize),
    /// Constraint `i` addresses a different taxon universe size.
    UniverseMismatch(usize),
    /// The initial-tree index given by [`InitialTreeRule::Index`] is out of
    /// bounds.
    BadInitialIndex(usize),
    /// A fixed taxon-insertion order does not cover the missing taxa.
    BadTaxonOrder(String),
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::Empty => write!(f, "no constraint trees"),
            ProblemError::NotBinary(i) => write!(f, "constraint {i} is not binary unrooted"),
            ProblemError::TooSmall(i) => write!(f, "constraint {i} has fewer than 3 taxa"),
            ProblemError::UniverseMismatch(i) => {
                write!(f, "constraint {i} has a different taxon universe")
            }
            ProblemError::BadInitialIndex(i) => {
                write!(f, "initial tree index {i} out of bounds")
            }
            ProblemError::BadTaxonOrder(m) => write!(f, "bad taxon order: {m}"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A stand-enumeration instance: constraint trees `T_i` on `Y_i ⊆ X`.
///
/// The *stand* is the set of all binary unrooted trees on
/// `X = ∪ Y_i` displaying every `T_i`.
#[derive(Clone, Debug)]
pub struct StandProblem {
    universe: usize,
    constraints: Vec<Tree>,
    /// `X = ∪ Y_i`.
    all_taxa: BitSet,
    /// For each taxon, the indices of the constraints containing it.
    taxon_constraints: Vec<Vec<u32>>,
}

impl StandProblem {
    /// Builds a problem from constraint trees (Gentrius input mode 1).
    /// All trees must share the same universe, be binary unrooted and have
    /// at least three taxa.
    pub fn from_constraints(constraints: Vec<Tree>) -> Result<Self, ProblemError> {
        if constraints.is_empty() {
            return Err(ProblemError::Empty);
        }
        let universe = constraints[0].universe();
        for (i, t) in constraints.iter().enumerate() {
            if t.universe() != universe {
                return Err(ProblemError::UniverseMismatch(i));
            }
            if t.leaf_count() < 3 {
                return Err(ProblemError::TooSmall(i));
            }
            if !t.is_binary_unrooted() {
                return Err(ProblemError::NotBinary(i));
            }
        }
        let mut all_taxa = BitSet::new(universe);
        for t in &constraints {
            all_taxa.union_with(t.taxa());
        }
        let mut taxon_constraints = vec![Vec::new(); universe];
        for (i, t) in constraints.iter().enumerate() {
            for tx in t.taxa().iter() {
                taxon_constraints[tx].push(i as u32);
            }
        }
        Ok(StandProblem {
            universe,
            constraints,
            all_taxa,
            taxon_constraints,
        })
    }

    /// Builds a problem from a complete species tree plus a PAM (Gentrius
    /// input mode 2): the constraints are the per-locus induced subtrees.
    /// Loci inducing fewer than three taxa are rejected via the normal
    /// constraint validation.
    pub fn from_species_tree_and_pam(tree: &Tree, pam: &Pam) -> Result<Self, ProblemError> {
        Self::from_constraints(pam.induced_subtrees(tree))
    }

    /// The taxon universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The constraint trees.
    pub fn constraints(&self) -> &[Tree] {
        &self.constraints
    }

    /// `X`: the union of all constraint leaf sets.
    pub fn all_taxa(&self) -> &BitSet {
        &self.all_taxa
    }

    /// Number of taxa in `X`.
    pub fn num_taxa(&self) -> usize {
        self.all_taxa.count()
    }

    /// Indices of constraints containing taxon `t`.
    pub fn constraints_of_taxon(&self, t: usize) -> &[u32] {
        &self.taxon_constraints[t]
    }

    /// Chooses the initial agile tree index per `rule`.
    ///
    /// [`InitialTreeRule::MaxOverlap`] is the paper's heuristic: the
    /// constraint sharing the largest total number of taxa with all other
    /// constraints (ties → smallest index).
    pub fn initial_tree_index(&self, rule: &InitialTreeRule) -> Result<usize, ProblemError> {
        match rule {
            InitialTreeRule::Index(i) => {
                if *i < self.constraints.len() {
                    Ok(*i)
                } else {
                    Err(ProblemError::BadInitialIndex(*i))
                }
            }
            InitialTreeRule::MaxOverlap => {
                let mut best = 0usize;
                let mut best_score = 0usize;
                for (j, tj) in self.constraints.iter().enumerate() {
                    let mut score = 0usize;
                    for (i, ti) in self.constraints.iter().enumerate() {
                        if i != j {
                            score += tj.taxa().intersection_count(ti.taxa());
                        }
                    }
                    if j == 0 || score > best_score {
                        best = j;
                        best_score = score;
                    }
                }
                Ok(best)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::newick::parse_forest;

    #[test]
    fn construction_and_union() {
        let (_, trees) = parse_forest(["((A,B),(C,D));", "((C,D),(E,F));"]).unwrap();
        let p = StandProblem::from_constraints(trees).unwrap();
        assert_eq!(p.num_taxa(), 6);
        assert_eq!(p.constraints().len(), 2);
        assert_eq!(p.constraints_of_taxon(2), &[0, 1]); // C in both
        assert_eq!(p.constraints_of_taxon(0), &[0]); // A only in first
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            StandProblem::from_constraints(vec![]).unwrap_err(),
            ProblemError::Empty
        );
        let (_, trees) = parse_forest(["(A,B,C,D);"]).unwrap(); // star
        assert_eq!(
            StandProblem::from_constraints(trees).unwrap_err(),
            ProblemError::NotBinary(0)
        );
        let (_, trees) = parse_forest(["(A,B);"]).unwrap();
        assert_eq!(
            StandProblem::from_constraints(trees).unwrap_err(),
            ProblemError::TooSmall(0)
        );
    }

    #[test]
    fn max_overlap_picks_hub_tree() {
        // Middle tree shares taxa with both others; outer trees share only
        // with the middle one.
        let (_, trees) =
            parse_forest(["((A,B),(C,D));", "((C,D),(E,F));", "((E,F),(G,H));"]).unwrap();
        let p = StandProblem::from_constraints(trees).unwrap();
        assert_eq!(
            p.initial_tree_index(&InitialTreeRule::MaxOverlap).unwrap(),
            1
        );
        assert_eq!(p.initial_tree_index(&InitialTreeRule::Index(2)).unwrap(), 2);
        assert!(p.initial_tree_index(&InitialTreeRule::Index(9)).is_err());
    }

    #[test]
    fn from_pam_mode() {
        let (_, trees) = parse_forest(["((A,B),((C,D),(E,F)));"]).unwrap();
        let mut pam = Pam::new(6, 2);
        for t in [0, 1, 2, 3] {
            pam.set(phylo::TaxonId(t), 0, true);
        }
        for t in [2, 3, 4, 5] {
            pam.set(phylo::TaxonId(t), 1, true);
        }
        let p = StandProblem::from_species_tree_and_pam(&trees[0], &pam).unwrap();
        assert_eq!(p.num_taxa(), 6);
        assert_eq!(p.constraints().len(), 2);
    }
}
