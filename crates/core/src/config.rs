//! Run configuration: heuristics, stopping rules and mapping engine.

use phylo::taxa::TaxonId;
use std::time::Duration;

/// How the initial agile tree is chosen among the constraint trees
/// (paper §II-B, first heuristic).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum InitialTreeRule {
    /// The constraint tree sharing the largest total number of taxa with
    /// all remaining constraint trees (the paper's default heuristic).
    #[default]
    MaxOverlap,
    /// A fixed constraint tree by index — used to reproduce the paper's
    /// "random constraint tree" ablation deterministically.
    Index(usize),
}

/// How the next taxon to insert is selected (paper §II-B, second
/// heuristic: *dynamic taxon insertion*; the paper's §V lists exploring
/// further insertion-order heuristics as future work — the last two
/// variants are that exploration, evaluated by the E11 bench).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum TaxonOrderRule {
    /// At every state insert the remaining taxon with the fewest admissible
    /// branches (ties broken by smallest taxon id). The paper's default.
    #[default]
    Dynamic,
    /// Insert in increasing taxon-id order.
    ById,
    /// Insert in an explicitly given order (must cover all missing taxa;
    /// used for the shuffled-order ablation of §II-B).
    Fixed(Vec<TaxonId>),
    /// Future-work variant 1 (static): insert taxa in descending order of
    /// how many constraint trees contain them — highly shared taxa are
    /// the most constrained on average, so they are placed early without
    /// paying the per-state admissibility scan of `Dynamic`.
    MostConstrainedFirst,
    /// Future-work variant 2 (dynamic): fewest admissible branches, with
    /// ties broken by the *most* containing constraints (instead of the
    /// smallest id) — among equally-pinned taxa, prefer the one whose
    /// insertion refines the most mappings.
    DynamicByConstraints,
}

/// How per-constraint projections are maintained across insertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MappingMode {
    /// Recompute all attachment maps at every state — the oracle engine
    /// every other mode is conformance-checked against.
    Recompute,
    /// Patch `Arc<Split>`-based maps incrementally on insert/remove with an
    /// undo log (the scheme the paper's implementation uses; §V notes it
    /// costs 15–30% of total runtime to maintain).
    Incremental,
    /// Flat `Vec<SplitId>` kernels indexed by `EdgeId` with arena-interned
    /// splits, patched on insert/undone on remove: the admissibility test
    /// collapses to one integer compare per (edge, constraint). The
    /// default.
    #[default]
    EdgeIndexed,
}

impl MappingMode {
    /// Stable CLI/metrics name of the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            MappingMode::Recompute => "recompute",
            MappingMode::Incremental => "incremental",
            MappingMode::EdgeIndexed => "edge-indexed",
        }
    }
}

impl std::fmt::Display for MappingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for MappingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "recompute" => Ok(MappingMode::Recompute),
            "incremental" => Ok(MappingMode::Incremental),
            "edge-indexed" | "edgeindexed" => Ok(MappingMode::EdgeIndexed),
            other => Err(format!(
                "unknown mapping mode '{other}' (expected recompute, incremental or edge-indexed)"
            )),
        }
    }
}

/// The three stopping rules of §II-B. `None` disables a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoppingRules {
    /// Rule 1: stop after counting more than this many stand trees.
    pub max_stand_trees: Option<u64>,
    /// Rule 2: stop after visiting more than this many intermediate states.
    pub max_intermediate_states: Option<u64>,
    /// Rule 3: stop after this much wall-clock time.
    pub max_time: Option<Duration>,
}

impl StoppingRules {
    /// The paper's defaults: 10^6 trees, 10^7 states, 168 hours.
    pub fn paper_defaults() -> Self {
        StoppingRules {
            max_stand_trees: Some(1_000_000),
            max_intermediate_states: Some(10_000_000),
            max_time: Some(Duration::from_secs(168 * 3600)),
        }
    }

    /// No limits (full enumeration; use only when the stand is known small).
    pub fn unlimited() -> Self {
        StoppingRules {
            max_stand_trees: None,
            max_intermediate_states: None,
            max_time: None,
        }
    }

    /// Limits on trees and states only (deterministic; no timer).
    pub fn counts(max_trees: u64, max_states: u64) -> Self {
        StoppingRules {
            max_stand_trees: Some(max_trees),
            max_intermediate_states: Some(max_states),
            max_time: None,
        }
    }
}

impl Default for StoppingRules {
    fn default() -> Self {
        StoppingRules::paper_defaults()
    }
}

/// Which stopping rule fired, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// Rule 1: the stand-tree limit was reached.
    StandTreeLimit,
    /// Rule 2: the intermediate-state limit was reached.
    StateLimit,
    /// Rule 3: the time limit was reached.
    TimeLimit,
}

/// Complete configuration of a Gentrius run.
#[derive(Clone, Debug, Default)]
pub struct GentriusConfig {
    /// Initial agile tree selection.
    pub initial_tree: InitialTreeRule,
    /// Taxon insertion order.
    pub taxon_order: TaxonOrderRule,
    /// Stopping rules.
    pub stopping: StoppingRules,
    /// Mapping maintenance engine.
    pub mapping: MappingMode,
}

impl GentriusConfig {
    /// Paper-default configuration.
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Full enumeration with both heuristics on and no limits.
    pub fn exhaustive() -> Self {
        GentriusConfig {
            stopping: StoppingRules::unlimited(),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iib() {
        let s = StoppingRules::paper_defaults();
        assert_eq!(s.max_stand_trees, Some(1_000_000));
        assert_eq!(s.max_intermediate_states, Some(10_000_000));
        assert_eq!(s.max_time, Some(Duration::from_secs(604_800)));
    }

    #[test]
    fn default_config_uses_both_heuristics() {
        let c = GentriusConfig::default();
        assert_eq!(c.initial_tree, InitialTreeRule::MaxOverlap);
        assert_eq!(c.taxon_order, TaxonOrderRule::Dynamic);
        assert_eq!(c.mapping, MappingMode::EdgeIndexed);
    }

    #[test]
    fn mapping_mode_round_trips_through_names() {
        for mode in [
            MappingMode::Recompute,
            MappingMode::Incremental,
            MappingMode::EdgeIndexed,
        ] {
            assert_eq!(mode.as_str().parse::<MappingMode>(), Ok(mode));
        }
        assert_eq!(
            "edgeindexed".parse::<MappingMode>(),
            Ok(MappingMode::EdgeIndexed)
        );
        assert!("hashmap".parse::<MappingMode>().is_err());
    }

    #[test]
    fn unlimited_disables_everything() {
        let s = StoppingRules::unlimited();
        assert!(s.max_stand_trees.is_none());
        assert!(s.max_intermediate_states.is_none());
        assert!(s.max_time.is_none());
    }
}
