//! The mutable search state of Algorithm 1: the agile tree, the set of
//! remaining taxa, and the admissibility queries against every constraint.
//!
//! This is the paper's *state*: "the current agile tree, together with the
//! set of constraint trees, the common subtrees, and the corresponding
//! mappings at a given point in time" (§II-A). In the reference
//! [`MappingMode::Recompute`](crate::config::MappingMode) engine the
//! projections are recomputed per state; the incremental engine patches
//! them on insert/remove.

use crate::config::{MappingMode, TaxonOrderRule};
use crate::edge_index::EdgeIndexedMaps;
use crate::incremental::IncrementalMaps;
use crate::mapping::{attachment_map, missing_taxon_targets, AttachMap};
use crate::problem::StandProblem;
use phylo::split::{Split, SplitId};
use phylo::taxa::TaxonId;
use phylo::tree::{EdgeId, Insertion, Tree};

/// Undo record for one taxon insertion (tree edit + taxon bookkeeping).
#[derive(Clone, Debug)]
pub struct AppliedStep {
    /// The tree edit.
    pub ins: Insertion,
    /// Where in the remaining list the taxon sat (restored on undo).
    remaining_idx: usize,
}

impl AppliedStep {
    /// The inserted taxon.
    pub fn taxon(&self) -> TaxonId {
        self.ins.taxon
    }

    /// The edge that was subdivided.
    pub fn edge(&self) -> EdgeId {
        self.ins.edge
    }
}

/// The choice produced by [`SearchState::select_next`].
#[derive(Clone, Debug)]
pub struct NextTaxon {
    /// The taxon to insert at this state.
    pub taxon: TaxonId,
    /// Its admissible branches, in increasing edge-id order.
    pub branches: Vec<EdgeId>,
}

/// Tie-breaking policy of the dynamic selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DynamicTie {
    SmallestId,
    MostConstraints,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OrderEngine {
    Dynamic(DynamicTie),
    Static,
}

/// An owned, problem-independent copy of a [`SearchState`]: the agile
/// tree, the remaining taxa and the *live* projection engine state (with
/// empty undo stacks). This is the replay-free task-handoff payload: a
/// thief rebuilds a working state in O(state) via
/// [`SearchState::resume`] instead of replaying the path through the
/// mapping kernels.
pub struct StateSnapshot {
    agile: Tree,
    remaining: Vec<TaxonId>,
    order: OrderEngine,
    engine: MapsEngine,
}

impl StateSnapshot {
    /// A minimal placeholder snapshot (empty tree, no taxa, recompute
    /// engine) for scheduler tests and probes that never resume it.
    pub fn sentinel() -> Self {
        StateSnapshot {
            agile: Tree::new(0),
            remaining: Vec::new(),
            order: OrderEngine::Static,
            engine: MapsEngine::Recompute,
        }
    }

    /// Number of taxa already inserted beyond nothing — used only for
    /// diagnostics (`snapshot_depth` in task spans).
    pub fn remaining_count(&self) -> usize {
        self.remaining.len()
    }

    /// The agile tree of this snapshot (for serialization).
    pub fn agile(&self) -> &Tree {
        &self.agile
    }

    /// The remaining taxa in selection order (for serialization).
    pub fn remaining(&self) -> &[TaxonId] {
        &self.remaining
    }

    /// One-byte wire code of the order engine (see
    /// [`StateSnapshot::from_parts`] for the mapping).
    pub fn order_code(&self) -> u8 {
        match self.order {
            OrderEngine::Static => 0,
            OrderEngine::Dynamic(DynamicTie::SmallestId) => 1,
            OrderEngine::Dynamic(DynamicTie::MostConstraints) => 2,
        }
    }

    /// The [`MappingMode`] whose engine backs this snapshot.
    pub fn mapping_mode(&self) -> MappingMode {
        match self.engine {
            MapsEngine::Recompute => MappingMode::Recompute,
            MapsEngine::Incremental(_) => MappingMode::Incremental,
            MapsEngine::EdgeIndexed(_) => MappingMode::EdgeIndexed,
        }
    }

    /// Rebuilds a snapshot from its serialized parts, constructing the
    /// projection engine *fresh* from `(problem, agile)` — the engines are
    /// deterministic functions of the problem and the current agile tree
    /// (their constructors recompute every map from scratch), so checkpoint
    /// files never serialize kernel internals. `order_code` is the wire
    /// byte from [`StateSnapshot::order_code`]: 0 = static, 1 = dynamic
    /// with smallest-id tie-break, 2 = dynamic with most-constraints
    /// tie-break.
    ///
    /// The parts cross process boundaries through checkpoint files, so they
    /// are validated as hostile input: the universe must match the problem,
    /// the remaining taxa must be exactly the taxa missing from the agile
    /// tree, and the agile tree must be binary.
    pub fn from_parts(
        problem: &StandProblem,
        agile: Tree,
        remaining: Vec<TaxonId>,
        order_code: u8,
        mapping: MappingMode,
    ) -> Result<StateSnapshot, String> {
        let order = match order_code {
            0 => OrderEngine::Static,
            1 => OrderEngine::Dynamic(DynamicTie::SmallestId),
            2 => OrderEngine::Dynamic(DynamicTie::MostConstraints),
            other => return Err(format!("unknown order-engine code {other}")),
        };
        if agile.universe() != problem.universe() {
            return Err(format!(
                "agile tree universe {} does not match the problem's {}",
                agile.universe(),
                problem.universe()
            ));
        }
        if !agile.is_binary_unrooted() {
            return Err("agile tree is not binary unrooted".into());
        }
        let mut missing = problem.all_taxa().difference(agile.taxa());
        for &t in &remaining {
            if !missing.contains(t.index()) {
                return Err(format!(
                    "remaining taxon {} is already in the agile tree or repeated",
                    t.0
                ));
            }
            missing.remove(t.index());
        }
        if missing.count() != 0 {
            return Err(format!(
                "{} missing taxa absent from the remaining list",
                missing.count()
            ));
        }
        let engine = match mapping {
            MappingMode::Recompute => MapsEngine::Recompute,
            MappingMode::Incremental => {
                MapsEngine::Incremental(IncrementalMaps::new(problem, &agile))
            }
            MappingMode::EdgeIndexed => {
                MapsEngine::EdgeIndexed(Box::new(EdgeIndexedMaps::new(problem, &agile)))
            }
        };
        Ok(StateSnapshot {
            agile,
            remaining,
            order,
            engine,
        })
    }
}

impl Clone for StateSnapshot {
    fn clone(&self) -> Self {
        StateSnapshot {
            agile: self.agile.clone(),
            remaining: self.remaining.clone(),
            order: self.order,
            engine: match &self.engine {
                MapsEngine::Recompute => MapsEngine::Recompute,
                MapsEngine::Incremental(inc) => MapsEngine::Incremental(inc.fork_live()),
                MapsEngine::EdgeIndexed(ei) => MapsEngine::EdgeIndexed(Box::new(ei.fork_live())),
            },
        }
    }
}

impl std::fmt::Debug for StateSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateSnapshot")
            .field("leaves", &self.agile.leaf_count())
            .field("remaining", &self.remaining.len())
            .finish_non_exhaustive()
    }
}

/// The projection-maintenance engine backing admissibility queries — the
/// runtime counterpart of [`MappingMode`].
enum MapsEngine {
    /// Rebuild projections per query batch (the oracle).
    Recompute,
    /// Arc-based maps patched on insert/remove.
    Incremental(IncrementalMaps),
    /// Flat edge-indexed kernels (the default).
    EdgeIndexed(Box<EdgeIndexedMaps>),
}

/// Mutable Gentrius search state over a borrowed problem.
pub struct SearchState<'p> {
    problem: &'p StandProblem,
    /// The growing agile tree.
    pub agile: Tree,
    /// Taxa not yet inserted, in selection-rule order.
    remaining: Vec<TaxonId>,
    order: OrderEngine,
    /// Live projections per the configured [`MappingMode`].
    engine: MapsEngine,
    /// Reusable query buffers (see [`QueryScratch`]); kept on the state so
    /// the selection loop allocates nothing per candidate taxon.
    scratch: QueryScratch,
}

impl<'p> SearchState<'p> {
    /// Creates the root state: the agile tree is (a copy of) constraint
    /// `initial_idx`; the remaining taxa are ordered per `order`.
    ///
    /// Returns `Err` if a [`TaxonOrderRule::Fixed`] order does not cover
    /// exactly the missing taxa.
    pub fn new(
        problem: &'p StandProblem,
        initial_idx: usize,
        order: &TaxonOrderRule,
    ) -> Result<Self, String> {
        let agile = problem.constraints()[initial_idx].clone();
        let missing = problem.all_taxa().difference(agile.taxa());
        let remaining: Vec<TaxonId> = match order {
            TaxonOrderRule::Dynamic
            | TaxonOrderRule::DynamicByConstraints
            | TaxonOrderRule::ById => missing.iter().map(|t| TaxonId(t as u32)).collect(),
            TaxonOrderRule::MostConstrainedFirst => {
                let mut v: Vec<TaxonId> = missing.iter().map(|t| TaxonId(t as u32)).collect();
                v.sort_by_key(|t| {
                    (
                        std::cmp::Reverse(problem.constraints_of_taxon(t.index()).len()),
                        t.index(),
                    )
                });
                v
            }
            TaxonOrderRule::Fixed(seq) => {
                let given: Vec<TaxonId> = seq
                    .iter()
                    .copied()
                    .filter(|t| missing.contains(t.index()))
                    .collect();
                if given.len() != missing.count() {
                    return Err(format!(
                        "fixed order covers {} of {} missing taxa",
                        given.len(),
                        missing.count()
                    ));
                }
                given
            }
        };
        let engine = match order {
            TaxonOrderRule::Dynamic => OrderEngine::Dynamic(DynamicTie::SmallestId),
            TaxonOrderRule::DynamicByConstraints => {
                OrderEngine::Dynamic(DynamicTie::MostConstraints)
            }
            _ => OrderEngine::Static,
        };
        Ok(SearchState {
            problem,
            agile,
            remaining,
            order: engine,
            engine: MapsEngine::Recompute,
            scratch: QueryScratch::new(),
        })
    }

    /// Installs the projection engine for `mode` (must be called on the
    /// root state, before any insertion). A fresh state starts in
    /// [`MappingMode::Recompute`].
    pub fn enable_mapping(&mut self, mode: MappingMode) {
        self.engine = match mode {
            MappingMode::Recompute => MapsEngine::Recompute,
            MappingMode::Incremental => {
                MapsEngine::Incremental(IncrementalMaps::new(self.problem, &self.agile))
            }
            MappingMode::EdgeIndexed => {
                MapsEngine::EdgeIndexed(Box::new(EdgeIndexedMaps::new(self.problem, &self.agile)))
            }
        };
    }

    /// Switches this state to the incremental mapping engine (must be
    /// called on the root state, before any insertion).
    pub fn enable_incremental(&mut self) {
        self.enable_mapping(MappingMode::Incremental);
    }

    /// The problem this state explores.
    pub fn problem(&self) -> &'p StandProblem {
        self.problem
    }

    /// Captures an owned [`StateSnapshot`] of the current logical state.
    /// The projection engines are forked *live-only* (empty undo stacks),
    /// which is sound because a resumed task never undoes below its resume
    /// point. Costs one O(state) clone — paid by the splitter, not the
    /// thief.
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            agile: self.agile.clone(),
            remaining: self.remaining.clone(),
            order: self.order,
            engine: match &self.engine {
                MapsEngine::Recompute => MapsEngine::Recompute,
                MapsEngine::Incremental(inc) => MapsEngine::Incremental(inc.fork_live()),
                MapsEngine::EdgeIndexed(ei) => MapsEngine::EdgeIndexed(Box::new(ei.fork_live())),
            },
        }
    }

    /// Rebuilds a working state from a snapshot taken over the same
    /// `problem`. Moves the owned snapshot data — the thief side of a task
    /// handoff performs no clone and no kernel replay.
    pub fn resume(problem: &'p StandProblem, snap: StateSnapshot) -> SearchState<'p> {
        SearchState {
            problem,
            agile: snap.agile,
            remaining: snap.remaining,
            order: snap.order,
            engine: snap.engine,
            scratch: QueryScratch::new(),
        }
    }

    /// True when the agile tree contains every taxon of `X`.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Number of taxa still to insert.
    pub fn remaining_count(&self) -> usize {
        self.remaining.len()
    }

    /// The remaining taxa in selection order (mostly for diagnostics).
    pub fn remaining(&self) -> &[TaxonId] {
        &self.remaining
    }

    /// Inserts `taxon` on `edge` and removes it from the remaining list.
    pub fn apply(&mut self, taxon: TaxonId, edge: EdgeId) -> AppliedStep {
        let remaining_idx = self
            .remaining
            .iter()
            .position(|&t| t == taxon)
            // xlint: allow(panic-freedom) — a taxon outside `remaining` means the frame stack is corrupt; going on would enumerate wrong stands
            .expect("inserting a taxon that is not remaining");
        self.remaining.remove(remaining_idx);
        let ins = self.agile.insert_leaf_on_edge(taxon, edge);
        // Completion: the state is emitted and undone without any
        // admissibility query — skip the (expensive) map update.
        let unqueried = self.remaining.is_empty();
        match &mut self.engine {
            MapsEngine::Recompute => {}
            MapsEngine::Incremental(inc) => {
                if unqueried {
                    inc.after_insert_unqueried();
                } else {
                    inc.after_insert(self.problem, &self.agile, &ins);
                }
            }
            MapsEngine::EdgeIndexed(ei) => {
                if unqueried {
                    ei.after_insert_unqueried();
                } else {
                    ei.after_insert(self.problem, &self.agile, &ins);
                }
            }
        }
        AppliedStep { ins, remaining_idx }
    }

    /// Exactly undoes [`SearchState::apply`] (LIFO discipline required).
    pub fn undo(&mut self, step: &AppliedStep) {
        match &mut self.engine {
            MapsEngine::Recompute => {}
            MapsEngine::Incremental(inc) => inc.before_remove(&step.ins),
            MapsEngine::EdgeIndexed(ei) => ei.before_remove(&step.ins),
        }
        self.agile.remove_insertion(&step.ins);
        self.remaining.insert(step.remaining_idx, step.ins.taxon);
    }

    /// The admissible branches of `taxon` at the current state, in
    /// increasing edge-id order (the canonical branch enumeration order).
    ///
    /// Allocates its own scratch, so it stays callable through `&self`;
    /// the hot path is [`SearchState::select_next`], which reuses the
    /// state-owned buffers instead.
    pub fn admissible_branches(&self, taxon: TaxonId) -> Vec<EdgeId> {
        let mut scratch = QueryScratch::new();
        scratch.reset(self.problem.constraints().len());
        let mut out = Vec::new();
        admissible_into(
            self.problem,
            &self.agile,
            &self.engine,
            &mut scratch,
            taxon,
            &mut out,
        );
        out
    }

    /// Selects the next taxon per the configured order rule and returns it
    /// with its admissible branches. `None` when the tree is complete.
    ///
    /// Under the dynamic rule this is the paper's *dynamic taxon
    /// insertion*: the remaining taxon with the fewest admissible branches
    /// (ties → smallest taxon id; a zero-branch taxon short-circuits, which
    /// is what makes dead ends detectable immediately).
    ///
    /// Takes `&mut self` only to reuse the state-owned query buffers; the
    /// logical state (tree, remaining taxa, projections) is not modified.
    pub fn select_next(&mut self) -> Option<NextTaxon> {
        if self.remaining.is_empty() {
            return None;
        }
        // Destructure so the engine/scratch borrows are disjoint.
        let SearchState {
            problem,
            agile,
            remaining,
            order,
            engine,
            scratch,
        } = self;
        scratch.reset(problem.constraints().len());
        let mut cand = std::mem::take(&mut scratch.cand);
        let OrderEngine::Dynamic(tie) = *order else {
            let taxon = remaining[0];
            admissible_into(problem, agile, engine, scratch, taxon, &mut cand);
            let branches = cand.clone();
            scratch.cand = cand;
            return Some(NextTaxon { taxon, branches });
        };
        let rank = |t: TaxonId| match tie {
            // Lower rank wins on branch-count ties.
            DynamicTie::SmallestId => (0usize, t.index()),
            DynamicTie::MostConstraints => (
                usize::MAX - problem.constraints_of_taxon(t.index()).len(),
                t.index(),
            ),
        };
        let mut best_buf = std::mem::take(&mut scratch.best);
        let mut best: Option<TaxonId> = None;
        for &taxon in remaining.iter() {
            admissible_into(problem, agile, engine, scratch, taxon, &mut cand);
            if cand.is_empty() {
                scratch.cand = cand;
                scratch.best = best_buf;
                return Some(NextTaxon {
                    taxon,
                    branches: Vec::new(),
                });
            }
            let better = match best {
                None => true,
                Some(b) => {
                    cand.len() < best_buf.len()
                        || (cand.len() == best_buf.len() && rank(taxon) < rank(b))
                }
            };
            if better {
                std::mem::swap(&mut cand, &mut best_buf);
                best = Some(taxon);
            }
        }
        let choice = best.map(|taxon| NextTaxon {
            taxon,
            branches: best_buf.clone(),
        });
        scratch.cand = cand;
        scratch.best = best_buf;
        choice
    }
}

/// Computes the admissible branches of `taxon` into `out` (cleared first),
/// in increasing edge-id order. Free function over disjoint borrows so
/// [`SearchState::select_next`] can thread the state-owned scratch through
/// without fighting the borrow checker.
fn admissible_into(
    problem: &StandProblem,
    agile: &Tree,
    engine: &MapsEngine,
    scratch: &mut QueryScratch,
    taxon: TaxonId,
    out: &mut Vec<EdgeId>,
) {
    out.clear();
    let cis = problem.constraints_of_taxon(taxon.index());
    if let MapsEngine::EdgeIndexed(ei) = engine {
        // Flat kernels: one u32 compare per (edge, constraint).
        scratch.ei_checks.clear();
        for &ci in cis {
            let ci = ci as usize;
            let target = ei.target_id(ci, taxon);
            if !target.is_none() {
                scratch.ei_checks.push((ci, target));
            }
        }
        'edges: for e in agile.edges() {
            for &(ci, target) in &scratch.ei_checks {
                if ei.projection_id(ci, e) != target {
                    continue 'edges;
                }
            }
            out.push(e);
        }
        return;
    }
    // Recompute mode fills the per-state scratch lazily; the incremental
    // engine already holds live maps.
    if let MapsEngine::Recompute = engine {
        for &ci in cis {
            let ci = ci as usize;
            if scratch.agile_maps[ci].is_none() {
                let cons = &problem.constraints()[ci];
                let c = agile.taxa().intersection(cons.taxa());
                scratch.agile_maps[ci] = Some(attachment_map(agile, &c));
                scratch.targets[ci] = Some(missing_taxon_targets(cons, &c));
            }
        }
    }
    // Collect (agile map, target split) for each constraint containing
    // the taxon whose common-taxa overlap is >= 2; a constraint with
    // |C| <= 1 has no target and admits every branch.
    let mut checks: Vec<(&AttachMap, &Split)> = Vec::new();
    for &ci in cis {
        let ci = ci as usize;
        let (map, targets): (&AttachMap, &[Option<Split>]) = match engine {
            MapsEngine::Incremental(inc) => (inc.agile_map(ci), inc.targets(ci)),
            _ => (
                // xlint: allow(panic-freedom) — the recompute loop above filled this cell; a miss would silently admit wrong branches
                scratch.agile_maps[ci].as_ref().expect("ensured above"),
                // xlint: allow(panic-freedom) — same invariant as the map cell directly above
                scratch.targets[ci].as_ref().expect("ensured above"),
            ),
        };
        if let Some(target) = &targets[taxon.index()] {
            checks.push((map, target));
        }
    }
    'edges: for e in agile.edges() {
        for &(map, target) in &checks {
            if map.get(e) != Some(target) {
                continue 'edges;
            }
        }
        out.push(e);
    }
}

/// Reusable per-state query buffers: the recompute mode's lazily-filled
/// projection caches (one slot per constraint, invalidated per selection)
/// plus the candidate/best branch buffers and the edge-indexed check list
/// that keep the selection loop allocation-free.
struct QueryScratch {
    agile_maps: Vec<Option<AttachMap>>,
    targets: Vec<Option<Vec<Option<Split>>>>,
    /// `(constraint, target id)` pairs for the edge-indexed fast path.
    ei_checks: Vec<(usize, SplitId)>,
    /// Branches of the candidate taxon under evaluation.
    cand: Vec<EdgeId>,
    /// Branches of the best candidate so far.
    best: Vec<EdgeId>,
}

impl QueryScratch {
    fn new() -> Self {
        QueryScratch {
            agile_maps: Vec::new(),
            targets: Vec::new(),
            ei_checks: Vec::new(),
            cand: Vec::new(),
            best: Vec::new(),
        }
    }

    /// Invalidates the recompute caches (the agile tree changed since the
    /// last query batch) without shrinking any buffer.
    fn reset(&mut self, n_constraints: usize) {
        self.agile_maps.clear();
        self.agile_maps.resize(n_constraints, None);
        self.targets.clear();
        self.targets.resize_with(n_constraints, || None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitialTreeRule;
    use phylo::newick::parse_forest;

    fn problem(newicks: &[&str]) -> StandProblem {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    #[test]
    fn root_state_setup() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let idx = p.initial_tree_index(&InitialTreeRule::Index(0)).unwrap();
        let s = SearchState::new(&p, idx, &TaxonOrderRule::Dynamic).unwrap();
        assert_eq!(s.remaining_count(), 2); // E, F
        assert!(!s.is_complete());
    }

    #[test]
    fn fixed_order_validation() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let e = TaxonId(4);
        let f = TaxonId(5);
        assert!(SearchState::new(&p, 0, &TaxonOrderRule::Fixed(vec![f, e])).is_ok());
        assert!(SearchState::new(&p, 0, &TaxonOrderRule::Fixed(vec![e])).is_err());
    }

    #[test]
    fn apply_undo_roundtrip() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let mut s = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let fp = s.agile.arena_fingerprint();
        let next = s.select_next().unwrap();
        assert!(!next.branches.is_empty());
        let step = s.apply(next.taxon, next.branches[0]);
        assert_eq!(s.remaining_count(), 1);
        s.undo(&step);
        assert_eq!(s.remaining_count(), 2);
        assert_eq!(s.agile.arena_fingerprint(), fp);
        assert_eq!(s.remaining(), &[TaxonId(4), TaxonId(5)]);
    }

    #[test]
    fn admissible_respects_constraints() {
        // Agile = ((A,B),(C,D)); constraint ((A,B),(C,E)) pins E next to C.
        let p = problem(&["((A,B),(C,D));", "((A,B),(C,E));"]);
        let s = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let branches = s.admissible_branches(TaxonId(4));
        // E must be sister to C w.r.t. {A,B}: C's pendant, the internal
        // edge, and D's pendant all satisfy the restriction (D is not in
        // the constraint); A's and B's pendant edges do not.
        assert_eq!(branches.len(), 3);
        let leaf_c = s.agile.leaf(TaxonId(2)).unwrap();
        assert!(branches.contains(&s.agile.adjacent_edges(leaf_c)[0]));
        for bad in [TaxonId(0), TaxonId(1)] {
            let leaf = s.agile.leaf(bad).unwrap();
            assert!(!branches.contains(&s.agile.adjacent_edges(leaf)[0]));
        }
    }

    #[test]
    fn unconstrained_taxon_admits_every_branch() {
        // F appears only in the second constraint, which shares just one
        // taxon (C) with the agile tree → all 5 branches admissible.
        let p = problem(&["((A,B),(C,D));", "((F,G),(H,C));"]);
        let s = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let branches = s.admissible_branches(TaxonId(4));
        assert_eq!(branches.len(), s.agile.edge_count());
    }

    #[test]
    fn dynamic_selection_prefers_fewest_branches() {
        // E is pinned to one branch; the taxa of the weakly-overlapping
        // constraint are free → dynamic must pick E first.
        let p = problem(&["((A,B),(C,D));", "((A,B),(C,E));", "((F,G),(H,A));"]);
        let mut s = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let next = s.select_next().unwrap();
        assert_eq!(next.taxon, TaxonId(4)); // E: 3 branches vs 5 for F,G,H
        assert_eq!(next.branches.len(), 3);
    }

    #[test]
    fn by_id_order_ignores_branch_counts() {
        let p = problem(&["((A,B),(C,D));", "((A,B),(C,E));", "((F,G),(H,A));"]);
        let mut s = SearchState::new(&p, 0, &TaxonOrderRule::ById).unwrap();
        let next = s.select_next().unwrap();
        assert_eq!(next.taxon, TaxonId(4)); // smallest missing id happens to be E
        let mut s2 = SearchState::new(
            &p,
            0,
            &TaxonOrderRule::Fixed(vec![TaxonId(5), TaxonId(6), TaxonId(7), TaxonId(4)]),
        )
        .unwrap();
        let next2 = s2.select_next().unwrap();
        assert_eq!(next2.taxon, TaxonId(5)); // F first per fixed order
    }

    #[test]
    fn most_constrained_first_orders_by_constraint_count() {
        // E appears in two constraints, F/G/H in one → E first.
        let p = problem(&["((A,B),(C,D));", "((A,B),(C,E));", "((F,G),(H,E));"]);
        let mut s = SearchState::new(&p, 0, &TaxonOrderRule::MostConstrainedFirst).unwrap();
        assert_eq!(s.remaining()[0], TaxonId(4)); // E
        let next = s.select_next().unwrap();
        assert_eq!(next.taxon, TaxonId(4));
    }

    #[test]
    fn dynamic_by_constraints_breaks_ties_differently() {
        // F and G are both unconstrained w.r.t. the agile tree (5 branches
        // each), but G appears in two constraints vs F's one → the
        // constraint-count tie-break prefers G while the id tie-break
        // prefers F.
        let p = problem(&["((A,B),(C,D));", "((F,G),(H,A));", "((G,B),(I,J));"]);
        let mut by_id = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let mut by_cons = SearchState::new(&p, 0, &TaxonOrderRule::DynamicByConstraints).unwrap();
        let a = by_id.select_next().unwrap();
        let b = by_cons.select_next().unwrap();
        assert_eq!(a.branches.len(), b.branches.len());
        assert!(a.taxon < b.taxon, "id tie-break picks the smaller id");
        let g = TaxonId(5);
        assert_eq!(b.taxon, g);
    }

    #[test]
    fn conflicting_constraint_yields_zero_branches() {
        // Constraints force E both next to C and next to A — impossible.
        let p = problem(&["((A,B),(C,D));", "((A,B),(C,E));", "((E,A),(B,C));"]);
        let mut s = SearchState::new(&p, 0, &TaxonOrderRule::Dynamic).unwrap();
        let next = s.select_next().unwrap();
        assert_eq!(next.taxon, TaxonId(4));
        assert!(next.branches.is_empty());
    }
}
