//! Edge-indexed admissibility kernels — flat, arena-backed projections.
//!
//! The incremental engine ([`crate::incremental`]) keeps the paper's
//! double-edge mappings alive across insertions, but still represents a
//! projection as `Vec<Option<Arc<Split>>>` and answers the admissibility
//! test `map[e] == b̂(t)` by comparing full split bitsets. This module is
//! the flat-vector successor:
//!
//! * per constraint, every split is interned into a [`SplitArena`] so a
//!   projection is a plain `Vec<SplitId>` indexed by `EdgeId` and the
//!   targets a plain `Vec<SplitId>` indexed by taxon id — the admissibility
//!   test is a single `u32` compare per (edge, constraint);
//! * rebuilds reuse the bitset/traversal scratch of
//!   [`ProjectionScratch`] and recycle retired id vectors through a pool,
//!   so the steady-state explore loop allocates nothing per node;
//! * insertions follow the incremental engine's patch discipline: a
//!   constraint not containing the inserted taxon gets an O(1) three-slot
//!   `u32` patch, a containing constraint gets a rebuild with the old
//!   vectors (plus an arena checkpoint) pushed onto the undo stack.
//!
//! [`crate::config::MappingMode::Recompute`] stays available as the oracle
//! the conformance matrix checks every kernel against.

use crate::mapping::{project_edges_into, project_targets_into, ProjectionScratch};
use crate::problem::StandProblem;
use phylo::bitset::BitSet;
use phylo::split::{Split, SplitArena, SplitId};
use phylo::taxa::TaxonId;
use phylo::tree::{EdgeId, Insertion, Tree};

/// Flat projection state for one constraint tree.
#[derive(Clone)]
struct EdgeKernel {
    /// `C = W ∩ Y_i`, kept in sync with the agile tree's taxa.
    c: BitSet,
    /// `|C| ≤ 1`: no common subtree edges; every branch is admissible and
    /// `map`/`targets` contents are meaningless.
    all: bool,
    /// Projection of agile edges onto the common subtree, by `EdgeId`.
    map: Vec<SplitId>,
    /// `b̂(t)` for each taxon (by taxon id; `NONE` when absent).
    targets: Vec<SplitId>,
    /// Interns both the agile projection and the targets, so the two id
    /// spaces are directly comparable.
    arena: SplitArena,
}

/// Undo record for one constraint rebuilt by an insertion.
struct UndoEntry {
    constraint: u32,
    all: bool,
    map: Vec<SplitId>,
    targets: Vec<SplitId>,
    arena_mark: usize,
}

/// The live edge-indexed projections for every constraint plus the LIFO
/// undo stack and the recycled scratch buffers.
pub struct EdgeIndexedMaps {
    per: Vec<EdgeKernel>,
    undo: Vec<Vec<UndoEntry>>,
    scratch: ProjectionScratch,
    /// Scratch for the constraint tree's own edge projection.
    cons_map: Vec<SplitId>,
    /// Retired `Vec<SplitId>` buffers, recycled across rebuilds.
    pool: Vec<Vec<SplitId>>,
    /// Retired undo frames, recycled across insertions.
    frame_pool: Vec<Vec<UndoEntry>>,
}

impl EdgeIndexedMaps {
    /// Builds the kernels for the root state.
    pub fn new(problem: &StandProblem, agile: &Tree) -> Self {
        let mut scratch = ProjectionScratch::new();
        let mut cons_map = Vec::new();
        let per = problem
            .constraints()
            .iter()
            .map(|cons| {
                let c = agile.taxa().intersection(cons.taxa());
                let mut arena = SplitArena::new(agile.universe());
                let mut map = Vec::new();
                let mut targets = Vec::new();
                let projected = project_edges_into(agile, &c, &mut arena, &mut scratch, &mut map);
                if projected {
                    project_targets_into(
                        cons,
                        &c,
                        &mut arena,
                        &mut scratch,
                        &mut cons_map,
                        &mut targets,
                    );
                }
                EdgeKernel {
                    all: !projected,
                    c,
                    map,
                    targets,
                    arena,
                }
            })
            .collect();
        EdgeIndexedMaps {
            per,
            undo: Vec::new(),
            scratch,
            cons_map,
            pool: Vec::new(),
            frame_pool: Vec::new(),
        }
    }

    /// True if constraint `ci` admits every branch (`|C| ≤ 1`).
    #[inline]
    pub fn all_admissible(&self, ci: usize) -> bool {
        self.per[ci].all
    }

    /// The target id `b̂(t)` of `taxon` under constraint `ci`, or `NONE`
    /// when the constraint admits every branch or does not pin the taxon.
    #[inline]
    pub fn target_id(&self, ci: usize, taxon: TaxonId) -> SplitId {
        let k = &self.per[ci];
        if k.all {
            return SplitId::NONE;
        }
        k.targets
            .get(taxon.index())
            .copied()
            .unwrap_or(SplitId::NONE)
    }

    /// The projection id of live edge `e` under constraint `ci`.
    #[inline]
    pub fn projection_id(&self, ci: usize, e: EdgeId) -> SplitId {
        self.per[ci]
            .map
            .get(e.index())
            .copied()
            .unwrap_or(SplitId::NONE)
    }

    /// Resolves an id from constraint `ci`'s arena (diagnostics/tests).
    pub fn resolve(&self, ci: usize, id: SplitId) -> Option<&Split> {
        self.per[ci].arena.get(id)
    }

    /// The common taxa `C` tracked for constraint `ci` (tests).
    pub fn common(&self, ci: usize) -> &BitSet {
        &self.per[ci].c
    }

    /// Records a no-op frame for an insertion whose maps will never be
    /// queried (tree completion: the stand is emitted and undone without
    /// any admissibility query, so patching would be pure waste).
    pub fn after_insert_unqueried(&mut self) {
        self.undo.push(self.frame_pool.pop().unwrap_or_default());
    }

    /// Patches the kernels after `agile` gained the insertion `ins`.
    pub fn after_insert(&mut self, problem: &StandProblem, agile: &Tree, ins: &Insertion) {
        let t = ins.taxon.index();
        let mut frame = self.frame_pool.pop().unwrap_or_default();
        for (ci, k) in self.per.iter_mut().enumerate() {
            let cons = &problem.constraints()[ci];
            if cons.taxa().contains(t) {
                // C grows: full rebuild into recycled buffers, with undo.
                // The checkpoint is taken first so rolling back on undo
                // drops exactly the splits this rebuild interned; the old
                // vectors only reference ids below the mark.
                k.c.insert(t);
                let arena_mark = k.arena.checkpoint();
                let mut new_map = self.pool.pop().unwrap_or_default();
                let mut new_targets = self.pool.pop().unwrap_or_default();
                let projected =
                    project_edges_into(agile, &k.c, &mut k.arena, &mut self.scratch, &mut new_map);
                if projected {
                    project_targets_into(
                        cons,
                        &k.c,
                        &mut k.arena,
                        &mut self.scratch,
                        &mut self.cons_map,
                        &mut new_targets,
                    );
                }
                frame.push(UndoEntry {
                    constraint: ci as u32,
                    all: k.all,
                    map: std::mem::replace(&mut k.map, new_map),
                    targets: std::mem::replace(&mut k.targets, new_targets),
                    arena_mark,
                });
                k.all = !projected;
            } else if !k.all {
                // C unchanged: the three edges around the subdivision all
                // project to whatever the subdivided edge projected to.
                // Undo needs no repair — the slots of freed edge ids are
                // never read while dead and are rewritten on id reuse.
                let hi = ins.far_half.index().max(ins.pendant.index());
                if k.map.len() <= hi {
                    k.map.resize(hi + 1, SplitId::NONE);
                }
                let sid = k.map[ins.edge.index()];
                k.map[ins.far_half.index()] = sid;
                k.map[ins.pendant.index()] = sid;
            }
        }
        self.undo.push(frame);
    }

    /// Clones the *live* kernel state only — projections, targets and
    /// arenas — with empty undo stacks and pools. Sound for task handoff
    /// because a resumed task never undoes below its resume point: the undo
    /// frames it pushes from here on are exactly the ones it will pop.
    pub fn fork_live(&self) -> Self {
        EdgeIndexedMaps {
            per: self.per.clone(),
            undo: Vec::new(),
            scratch: ProjectionScratch::new(),
            cons_map: Vec::new(),
            pool: Vec::new(),
            frame_pool: Vec::new(),
        }
    }

    /// Reverts the most recent [`EdgeIndexedMaps::after_insert`]. Call
    /// *before* removing the insertion from the tree (LIFO discipline).
    pub fn before_remove(&mut self, ins: &Insertion) {
        // xlint: allow(panic-freedom) — undo underflow means the LIFO discipline broke; continuing would enumerate wrong stands
        let mut frame = self.undo.pop().expect("undo stack underflow");
        for entry in frame.drain(..) {
            let k = &mut self.per[entry.constraint as usize];
            k.c.remove(ins.taxon.index());
            k.all = entry.all;
            k.arena.rollback(entry.arena_mark);
            self.pool.push(std::mem::replace(&mut k.map, entry.map));
            self.pool
                .push(std::mem::replace(&mut k.targets, entry.targets));
        }
        self.frame_pool.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{attachment_map, missing_taxon_targets};
    use phylo::newick::parse_forest;

    fn problem(newicks: &[&str]) -> StandProblem {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    /// Compares the edge-indexed kernels against freshly recomputed
    /// Arc-based projections, split by split.
    fn assert_matches_recompute(ei: &EdgeIndexedMaps, problem: &StandProblem, agile: &Tree) {
        for (ci, cons) in problem.constraints().iter().enumerate() {
            let c = agile.taxa().intersection(cons.taxa());
            assert_eq!(ei.common(ci), &c, "C of {ci}");
            let fresh_map = attachment_map(agile, &c);
            assert_eq!(
                ei.all_admissible(ci),
                fresh_map.all_admissible(),
                "all_admissible flag of {ci}"
            );
            for e in agile.edges() {
                let via_kernel = if ei.all_admissible(ci) {
                    None
                } else {
                    ei.resolve(ci, ei.projection_id(ci, e)).map(|s| s.side())
                };
                assert_eq!(
                    via_kernel,
                    fresh_map.get(e).map(|s| s.side()),
                    "constraint {ci}, edge {e:?}"
                );
            }
            let fresh_targets = missing_taxon_targets(cons, &c);
            for (t, fresh) in fresh_targets.iter().enumerate() {
                let via_kernel = ei
                    .resolve(ci, ei.target_id(ci, TaxonId(t as u32)))
                    .map(|s| s.side());
                assert_eq!(
                    via_kernel,
                    fresh.as_ref().map(|s| s.side()),
                    "constraint {ci}, taxon {t}"
                );
            }
        }
    }

    #[test]
    fn insert_remove_tracks_recompute() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));", "((A,F),(G,B));"]);
        let mut agile = p.constraints()[0].clone();
        let mut ei = EdgeIndexedMaps::new(&p, &agile);
        assert_matches_recompute(&ei, &p, &agile);

        let e_taxon = TaxonId(4);
        let g_taxon = TaxonId(6);
        let edges: Vec<_> = agile.edges().collect();
        let ins1 = agile.insert_leaf_on_edge(e_taxon, edges[2]);
        ei.after_insert(&p, &agile, &ins1);
        assert_matches_recompute(&ei, &p, &agile);

        let edges: Vec<_> = agile.edges().collect();
        let ins2 = agile.insert_leaf_on_edge(g_taxon, edges[5]);
        ei.after_insert(&p, &agile, &ins2);
        assert_matches_recompute(&ei, &p, &agile);

        ei.before_remove(&ins2);
        agile.remove_insertion(&ins2);
        assert_matches_recompute(&ei, &p, &agile);

        ei.before_remove(&ins1);
        agile.remove_insertion(&ins1);
        assert_matches_recompute(&ei, &p, &agile);
    }

    #[test]
    fn reinsertion_after_undo_is_consistent() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let mut agile = p.constraints()[0].clone();
        let mut ei = EdgeIndexedMaps::new(&p, &agile);
        let e_taxon = TaxonId(4);
        let edges: Vec<_> = agile.edges().collect();
        for &edge in &edges {
            let ins = agile.insert_leaf_on_edge(e_taxon, edge);
            ei.after_insert(&p, &agile, &ins);
            assert_matches_recompute(&ei, &p, &agile);
            ei.before_remove(&ins);
            agile.remove_insertion(&ins);
            assert_matches_recompute(&ei, &p, &agile);
        }
    }

    #[test]
    fn tiny_overlap_transitions_all_admissible_flag() {
        // Constraint 1 shares only taxon A with the agile tree at the root
        // (all-admissible); inserting E (in constraint 1) grows C to two
        // taxa and must flip the flag — and undo must flip it back.
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let mut agile = p.constraints()[0].clone();
        let mut ei = EdgeIndexedMaps::new(&p, &agile);
        assert!(ei.all_admissible(1));
        let edges: Vec<_> = agile.edges().collect();
        let ins = agile.insert_leaf_on_edge(TaxonId(4), edges[0]);
        ei.after_insert(&p, &agile, &ins);
        assert!(!ei.all_admissible(1));
        assert_matches_recompute(&ei, &p, &agile);
        ei.before_remove(&ins);
        agile.remove_insertion(&ins);
        assert!(ei.all_admissible(1));
        assert_matches_recompute(&ei, &p, &agile);
    }
}
