//! Run counters: stand trees, intermediate states, dead ends.
//!
//! These are the three quantities the paper reports for every run and uses
//! to verify that serial and parallel executions traverse the exact same
//! branch-and-bound tree (§IV, preamble).

/// Counter snapshot for one (partial) exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Complete stand trees generated.
    pub stand_trees: u64,
    /// Intermediate states visited (incomplete agile trees created).
    pub intermediate_states: u64,
    /// Dead ends: intermediate states where some remaining taxon has no
    /// admissible branch.
    pub dead_ends: u64,
}

impl RunStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise sum — used to merge per-thread / per-task counters.
    pub fn merge(&mut self, other: &RunStats) {
        self.stand_trees += other.stand_trees;
        self.intermediate_states += other.intermediate_states;
        self.dead_ends += other.dead_ends;
    }
}

impl std::ops::Add for RunStats {
    type Output = RunStats;
    fn add(mut self, rhs: RunStats) -> RunStats {
        self.merge(&rhs);
        self
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stand trees: {}, intermediate states: {}, dead ends: {}",
            self.stand_trees, self.intermediate_states, self.dead_ends
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = RunStats {
            stand_trees: 1,
            intermediate_states: 10,
            dead_ends: 2,
        };
        let b = RunStats {
            stand_trees: 4,
            intermediate_states: 5,
            dead_ends: 0,
        };
        a.merge(&b);
        assert_eq!(a.stand_trees, 5);
        assert_eq!(a.intermediate_states, 15);
        assert_eq!(a.dead_ends, 2);
        let c = a + b;
        assert_eq!(c.stand_trees, 9);
    }

    #[test]
    fn display_is_readable() {
        let s = RunStats {
            stand_trees: 3,
            intermediate_states: 7,
            dead_ends: 1,
        };
        assert_eq!(
            s.to_string(),
            "stand trees: 3, intermediate states: 7, dead ends: 1"
        );
    }
}
