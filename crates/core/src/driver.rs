//! The serial Gentrius driver: runs the [`Explorer`] to completion while
//! accounting and enforcing the stopping rules.

use crate::config::{GentriusConfig, StopCause};
use crate::explore::{Explorer, StepEvent};
use crate::problem::{ProblemError, StandProblem};
use crate::sink::StandSink;
use crate::state::SearchState;
use crate::stats::RunStats;
use phylo::ops::compatible;
use std::time::{Duration, Instant};

/// Outcome of one (serial) Gentrius run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// The counters (stand trees / intermediate states / dead ends).
    pub stats: RunStats,
    /// Which stopping rule fired; `None` means the enumeration completed
    /// and `stats.stand_trees` is the exact stand size.
    pub stop: Option<StopCause>,
    /// Wall-clock duration of the exploration.
    pub elapsed: Duration,
    /// Index of the constraint tree used as the initial agile tree.
    pub initial_tree: usize,
}

impl RunResult {
    /// True if the stand was fully enumerated (no stopping rule fired).
    pub fn complete(&self) -> bool {
        self.stop.is_none()
    }
}

/// How often (in step events) the wall-clock stopping rule is polled;
/// counter rules are checked on every event.
const TIME_CHECK_INTERVAL: u64 = 8192;

/// Runs the sequential Gentrius algorithm on `problem` with `config`,
/// streaming every complete stand tree into `sink`.
///
/// Before exploring, the initial agile tree is checked for pairwise
/// compatibility against every constraint (the invariant `A|C_i = T_i|C_i`
/// must hold at the root); an incompatible input yields an immediate empty
/// stand.
pub fn run_serial<S: StandSink>(
    problem: &StandProblem,
    config: &GentriusConfig,
    sink: &mut S,
) -> Result<RunResult, ProblemError> {
    let initial = problem.initial_tree_index(&config.initial_tree)?;
    let started = Instant::now();

    // Root invariant check: the initial tree must be compatible with every
    // other constraint, otherwise the stand is empty by definition.
    let agile0 = &problem.constraints()[initial];
    for cons in problem.constraints() {
        if !compatible(agile0, cons) {
            return Ok(RunResult {
                stats: RunStats::new(),
                stop: None,
                elapsed: started.elapsed(),
                initial_tree: initial,
            });
        }
    }

    let mut state = SearchState::new(problem, initial, &config.taxon_order)
        .map_err(ProblemError::BadTaxonOrder)?;
    state.enable_mapping(config.mapping);
    let mut explorer = Explorer::new_root(state);
    let mut stats = RunStats::new();
    let mut stop = None;
    let mut events: u64 = 0;

    loop {
        match explorer.step(sink) {
            StepEvent::Entered => stats.intermediate_states += 1,
            StepEvent::StandTree => stats.stand_trees += 1,
            StepEvent::DeadEnd => {
                stats.intermediate_states += 1;
                stats.dead_ends += 1;
            }
            StepEvent::Backtracked => {}
            StepEvent::Finished => break,
        }
        events += 1;
        if let Some(max) = config.stopping.max_stand_trees {
            if stats.stand_trees >= max {
                stop = Some(StopCause::StandTreeLimit);
                break;
            }
        }
        if let Some(max) = config.stopping.max_intermediate_states {
            if stats.intermediate_states >= max {
                stop = Some(StopCause::StateLimit);
                break;
            }
        }
        if events.is_multiple_of(TIME_CHECK_INTERVAL) {
            if let Some(max) = config.stopping.max_time {
                if started.elapsed() >= max {
                    stop = Some(StopCause::TimeLimit);
                    break;
                }
            }
        }
    }

    Ok(RunResult {
        stats,
        stop,
        elapsed: started.elapsed(),
        initial_tree: initial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitialTreeRule, MappingMode, StoppingRules, TaxonOrderRule};
    use crate::sink::CountOnly;
    use phylo::newick::parse_forest;

    fn problem(newicks: &[&str]) -> StandProblem {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    #[test]
    fn complete_run_reports_no_stop() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let r = run_serial(&p, &GentriusConfig::exhaustive(), &mut CountOnly).unwrap();
        assert!(r.complete());
        assert!(r.stats.stand_trees > 0);
    }

    #[test]
    fn stand_tree_limit_fires() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let full = run_serial(&p, &GentriusConfig::exhaustive(), &mut CountOnly).unwrap();
        assert!(full.stats.stand_trees > 3);
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(3, u64::MAX),
            ..GentriusConfig::default()
        };
        let r = run_serial(&p, &cfg, &mut CountOnly).unwrap();
        assert_eq!(r.stop, Some(StopCause::StandTreeLimit));
        assert_eq!(r.stats.stand_trees, 3);
    }

    #[test]
    fn state_limit_fires() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));"]);
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(u64::MAX, 2),
            ..GentriusConfig::default()
        };
        let r = run_serial(&p, &cfg, &mut CountOnly).unwrap();
        assert_eq!(r.stop, Some(StopCause::StateLimit));
        assert_eq!(r.stats.intermediate_states, 2);
    }

    #[test]
    fn incompatible_initial_tree_short_circuits() {
        // Two quartets on the same taxa with conflicting topology.
        let p = problem(&["((A,B),(C,D));", "((A,C),(B,D));"]);
        let r = run_serial(&p, &GentriusConfig::exhaustive(), &mut CountOnly).unwrap();
        assert!(r.complete());
        assert_eq!(r.stats.stand_trees, 0);
        assert_eq!(r.stats.intermediate_states, 0);
    }

    #[test]
    fn initial_tree_rule_is_respected() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));", "((E,F),(G,H));"]);
        let cfg = GentriusConfig {
            initial_tree: InitialTreeRule::Index(2),
            stopping: StoppingRules::unlimited(),
            ..GentriusConfig::default()
        };
        let r = run_serial(&p, &cfg, &mut CountOnly).unwrap();
        assert_eq!(r.initial_tree, 2);
        let r2 = run_serial(&p, &GentriusConfig::exhaustive(), &mut CountOnly).unwrap();
        assert_eq!(r2.initial_tree, 1); // MaxOverlap picks the hub tree
                                        // Same stand size regardless of starting tree.
        assert_eq!(r.stats.stand_trees, r2.stats.stand_trees);
    }

    #[test]
    fn order_rules_same_count_different_effort() {
        // §II-B: disabling dynamic insertion preserves correctness but
        // typically visits more states / dead ends.
        let p = problem(&[
            "((A,B),(C,D));",
            "((A,B),(C,E));",
            "((B,C),(D,F));",
            "((A,E),(D,G));",
        ]);
        let dynamic = run_serial(&p, &GentriusConfig::exhaustive(), &mut CountOnly).unwrap();
        let by_id = run_serial(
            &p,
            &GentriusConfig {
                taxon_order: TaxonOrderRule::ById,
                stopping: StoppingRules::unlimited(),
                ..GentriusConfig::default()
            },
            &mut CountOnly,
        )
        .unwrap();
        assert_eq!(dynamic.stats.stand_trees, by_id.stats.stand_trees);
    }

    #[test]
    fn all_order_rules_agree_on_stand_size() {
        let p = problem(&[
            "((A,B),(C,D));",
            "((A,B),(C,E));",
            "((B,C),(D,F));",
            "((A,E),(D,G));",
        ]);
        let mut sizes = Vec::new();
        for order in [
            TaxonOrderRule::Dynamic,
            TaxonOrderRule::ById,
            TaxonOrderRule::MostConstrainedFirst,
            TaxonOrderRule::DynamicByConstraints,
        ] {
            let cfg = GentriusConfig {
                taxon_order: order,
                stopping: StoppingRules::unlimited(),
                ..GentriusConfig::default()
            };
            sizes.push(
                run_serial(&p, &cfg, &mut CountOnly)
                    .unwrap()
                    .stats
                    .stand_trees,
            );
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn bad_fixed_order_is_reported() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));"]);
        let cfg = GentriusConfig {
            taxon_order: TaxonOrderRule::Fixed(vec![phylo::TaxonId(4)]), // misses F
            ..GentriusConfig::default()
        };
        assert!(matches!(
            run_serial(&p, &cfg, &mut CountOnly),
            Err(ProblemError::BadTaxonOrder(_))
        ));
    }

    #[test]
    fn all_mapping_modes_match_recompute() {
        let p = problem(&["((A,B),(C,D));", "((C,D),(E,F));", "((A,F),(G,B));"]);
        let rec = run_serial(
            &p,
            &GentriusConfig {
                mapping: MappingMode::Recompute,
                stopping: StoppingRules::unlimited(),
                ..GentriusConfig::default()
            },
            &mut CountOnly,
        )
        .unwrap();
        for mapping in [MappingMode::Incremental, MappingMode::EdgeIndexed] {
            let alt = run_serial(
                &p,
                &GentriusConfig {
                    mapping,
                    stopping: StoppingRules::unlimited(),
                    ..GentriusConfig::default()
                },
                &mut CountOnly,
            )
            .unwrap();
            assert_eq!(rec.stats, alt.stats, "{mapping}");
        }
    }
}
