//! Scenario instances reproducing the *roles* of specific datasets named in
//! the paper (DESIGN.md substitution 2).
//!
//! The paper's narrative datasets (`emp-data-42370`, `sim-data-5001`,
//! `sim-data-1511/1792/1795`, the Table I/II long runners) are not
//! redistributable here; what matters for reproduction is their *behaviour
//! class*. This module provides deterministic searches over the seeded
//! generators for instances exhibiting each class, plus named accessors
//! with pre-searched seeds so the benches start from known-good instances.

use crate::dataset::Dataset;
use crate::simulated::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_core::{GentriusConfig, StoppingRules};
use gentrius_sim::{simulate, SimConfig};
use phylo::generate::ShapeModel;

/// Outcome of probing one instance with the virtual-time simulator.
#[derive(Clone, Debug)]
pub struct Probe {
    /// Serial (1-thread) virtual makespan.
    pub serial_ticks: u64,
    /// Serial stand trees (under the probe's stopping rules).
    pub serial_trees: u64,
    /// Whether the serial run completed without a stopping rule.
    pub serial_complete: bool,
}

/// Simulates the dataset serially under the given stopping rules.
pub fn probe(dataset: &Dataset, stopping: &StoppingRules) -> Probe {
    let problem = dataset.problem().expect("generated dataset is valid");
    let cfg = GentriusConfig {
        stopping: stopping.clone(),
        ..GentriusConfig::default()
    };
    let r = simulate(&problem, &cfg, &SimConfig::with_threads(1)).expect("probe run");
    Probe {
        serial_ticks: r.makespan,
        serial_trees: r.stats.stand_trees,
        serial_complete: r.complete(),
    }
}

/// Deterministically scans generator indices `start..start+budget` and
/// returns the first dataset satisfying `pred`, together with its index.
pub fn find_instance<F>(
    params: &SimulatedParams,
    seed: u64,
    start: u64,
    budget: u64,
    mut pred: F,
) -> Option<(u64, Dataset)>
where
    F: FnMut(&Dataset) -> bool,
{
    for i in start..start + budget {
        let d = simulated_dataset(params, seed, i);
        if pred(&d) {
            return Some((i, d));
        }
    }
    None
}

/// The parameter block used by all scenario searches: small enough that a
/// probe takes milliseconds, constrained enough that interesting workflow
/// shapes occur.
pub fn scenario_params() -> SimulatedParams {
    SimulatedParams {
        taxa: (14, 26),
        loci: (4, 7),
        missing: (0.35, 0.55),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    }
}

/// The master seed for the pre-searched scenarios below. Changing it
/// invalidates the hardcoded indices.
pub const SCENARIO_SEED: u64 = 20230512;

/// `emp-data-42370` role (§II-B): a completable instance with a
/// non-trivial stand where both heuristics visibly reduce the number of
/// visited intermediate states and dead ends.
pub fn heuristics_showcase() -> Dataset {
    // Pre-searched: see `find_heuristics_showcase` and the scenario tests.
    simulated_dataset(&scenario_params(), SCENARIO_SEED, HEURISTICS_INDEX)
}

/// Pre-searched index for [`heuristics_showcase`] (probe: stand of 8,385
/// trees; 510 states with both heuristics, 5,337 (10.5×) without the
/// initial-tree rule, 17,382 (34.1×) with 5,502 dead ends without dynamic
/// insertion — the paper's both-heuristics-matter shape). Indices are tied
/// to the workspace RNG stream (`shims/rand*`); re-pin with the
/// `heur_scan`/`find_scenarios` tools if the stream changes.
pub const HEURISTICS_INDEX: u64 = 26;

/// Parameters of the trap search: clustered missingness produces the
/// heterogeneous (desert/garden) branch-and-bound trees where the
/// stopping-rule distortion of Fig. 5b / Fig. 8 occurs.
pub fn trap_params() -> SimulatedParams {
    SimulatedParams {
        taxa: (22, 36),
        loci: (5, 9),
        missing: (0.45, 0.65),
        pattern: MissingPattern::Clustered,
        shape: ShapeModel::Uniform,
    }
}

/// `sim-data-5001` role (Fig. 5b, §IV-A): under a tight intermediate-state
/// limit the serial run burns most of the budget in dead-end-rich desert
/// regions, while the parallel descent reaches tree-dense regions sooner —
/// adapted speedups beyond the thread count (super-linear distortion).
pub fn trap_showcase() -> (Dataset, StoppingRules) {
    let d = simulated_dataset(&trap_params(), SCENARIO_SEED, TRAP_INDEX);
    (d, trap_stopping())
}

/// Pre-searched index for [`trap_showcase`] (probe: at a 50k-state budget
/// the serial run stops early and the 2-thread adapted speedup exceeds
/// 2.2× — the Fig. 5b distortion). Re-pin with `trap_scan` /
/// `find_scenarios` if the workspace RNG stream changes.
pub const TRAP_INDEX: u64 = 32;

/// The reduced stopping rules used by the trap scenario (scaled version of
/// the paper's 10M-state short analyses of §IV-D).
pub fn trap_stopping() -> StoppingRules {
    StoppingRules::counts(1_000_000_000, 50_000)
}

/// Searches for a trap instance: serial hits the state limit, and the
/// 2-thread adapted speedup exceeds `min_asp` (super-linear distortion).
pub fn find_trap_instance(
    seed: u64,
    start: u64,
    budget: u64,
    min_asp: f64,
) -> Option<(u64, Dataset)> {
    let params = trap_params();
    let stopping = trap_stopping();
    find_instance(&params, seed, start, budget, |d| {
        let problem = match d.problem() {
            Ok(p) => p,
            Err(_) => return false,
        };
        let cfg = GentriusConfig {
            stopping: stopping.clone(),
            ..GentriusConfig::default()
        };
        let serial = simulate(&problem, &cfg, &SimConfig::with_threads(1)).expect("sim");
        if serial.complete() {
            return false;
        }
        let par = simulate(&problem, &cfg, &SimConfig::with_threads(2)).expect("sim");
        par.adapted_speedup_vs(&serial) >= min_asp
    })
}

/// The dead-end blow-up role: a trap-family instance whose *complete*
/// enumeration is large (hundreds of thousands of events) and dead-end
/// dominated. Because the enumeration completes, serial and parallel runs
/// perform identical total work, which makes wall-clock throughput
/// comparisons between them exact — the scaling-regression gate
/// (BENCH_6) is built on this instance and [`blowup_showcase`].
pub fn deadend_blowup() -> Dataset {
    simulated_dataset(&trap_params(), SCENARIO_SEED, DEADEND_BLOWUP_INDEX)
}

/// Pre-searched index for [`deadend_blowup`] (probe: complete serial
/// enumeration of 192,375 trees, 204,299 intermediate states, 82,620
/// dead ends — a backtracking-heavy workload long enough to time
/// reliably). Re-pin with [`find_deadend_blowup`] if the workspace RNG
/// stream changes.
pub const DEADEND_BLOWUP_INDEX: u64 = 19;

/// Searches for a [`deadend_blowup`] instance: fully enumerable under a
/// large budget, at least `min_states` intermediate states, and dead
/// ends at least a third of the states.
pub fn find_deadend_blowup(
    seed: u64,
    start: u64,
    budget: u64,
    min_states: u64,
) -> Option<(u64, Dataset)> {
    use gentrius_core::{run_serial, CountOnly};
    let params = trap_params();
    find_instance(&params, seed, start, budget, |d| {
        let Ok(problem) = d.problem() else {
            return false;
        };
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(1_000_000, 400_000),
            ..GentriusConfig::default()
        };
        let Ok(r) = run_serial(&problem, &cfg, &mut CountOnly) else {
            return false;
        };
        r.complete()
            && r.stats.intermediate_states >= min_states
            && r.stats.dead_ends * 3 >= r.stats.intermediate_states
    })
}

/// Searches for a heuristics-showcase instance: fully enumerable within
/// the budget, with a stand of at least `min_trees` trees and at least
/// `min_states` intermediate states.
pub fn find_heuristics_showcase(
    seed: u64,
    start: u64,
    budget: u64,
    min_trees: u64,
    min_states: u64,
) -> Option<(u64, Dataset)> {
    let params = scenario_params();
    let stopping = StoppingRules::counts(500_000, 2_000_000);
    find_instance(&params, seed, start, budget, |d| {
        let p = probe(d, &stopping);
        p.serial_complete && p.serial_trees >= min_trees && p.serial_ticks >= min_states
    })
}

/// Fig. 5a role: a crafted instance whose branch-and-bound tree *cannot*
/// be load-balanced, producing a speedup plateau (the paper observed
/// plateaus of ~3× and ~5× on sim-data-1511/1792/1795).
///
/// Construction (see the E7 bench): the agile tree is a caterpillar on
/// taxa `c_0..c_m`; taxa `z_1..z_k` are each pinned to a single branch by
/// a quartet constraint (a forced chain — explored in the serial prefix);
/// taxon `y` is pinned by two quartets to a ~5-edge region — the initial
/// split; and two *free* taxa `f_1, f_2` form a large fan at the very
/// bottom, where fewer than three taxa remain, so the §III-A rule forbids
/// task creation. The workload therefore consists of exactly ~5
/// unstealable chunks: speedup plateaus at ~5 regardless of thread count.
pub fn plateau_showcase() -> Dataset {
    plateau_with_chunks(5)
}

/// The ~3x-plateau variant: `y`'s two quartets sandwich a 3-edge region
/// (the paper reports plateaus of both ~3x and ~5x).
pub fn plateau_showcase_3() -> Dataset {
    plateau_with_chunks(3)
}

/// Builds the crafted plateau instance with a `chunks`-edge initial split
/// (supported: 3 or 5 — the size of the admissible-region intersection is
/// set by how far apart `y`'s two anchoring quartets sit on the
/// caterpillar).
pub fn plateau_with_chunks(chunks: usize) -> Dataset {
    plateau_family(chunks, 1)
}

/// The caterpillar blow-up instance: the plateau construction with a
/// *large* free fan (`plateau_family(5, 3)`, six free taxa). Every free
/// taxon is admissible on every edge, so the stand size explodes
/// combinatorially (~10^9 topologies) and an enumeration under bench
/// limits spends its whole budget in wide, uniform frames — the §IV
/// blow-up regime where per-state work is cheap and engine overhead
/// (task handoff, stop polling, counter flushing) dominates scaling.
pub fn blowup_showcase() -> Dataset {
    let mut d = plateau_family(5, 3);
    d.name = "caterpillar-blowup".to_string();
    d
}

/// The shared plateau/blow-up construction: a caterpillar with a pinned
/// chain, the `chunks`-edge initial-split taxon `y`, and `free_pairs`
/// three-leaf fan constraints contributing `2 * free_pairs` taxa that are
/// admissible everywhere.
fn plateau_family(chunks: usize, free_pairs: usize) -> Dataset {
    use phylo::taxa::TaxonSet;
    use phylo::tree::Tree;
    use phylo::TaxonId;

    assert!(chunks == 3 || chunks == 5, "supported plateau sizes: 3, 5");
    assert!(free_pairs >= 1, "at least one free fan pair");
    let k = 6usize; // chain length
    let m = 27usize; // caterpillar taxa c_0..c_26
    let n = m + k + 1 + 2 * free_pairs; // + y + f1..f_{2*free_pairs}
    let mut taxa = TaxonSet::new();
    for i in 0..m {
        taxa.intern(&format!("c{i}"));
    }
    for i in 1..=k {
        taxa.intern(&format!("z{i}"));
    }
    taxa.intern("y");
    for i in 1..=2 * free_pairs {
        taxa.intern(&format!("f{i}"));
    }
    debug_assert_eq!(taxa.len(), n);
    let c = |i: usize| TaxonId(i as u32);
    let z = |i: usize| TaxonId((m + i - 1) as u32);
    let y = TaxonId((m + k) as u32);
    let f = |i: usize| TaxonId((m + k + i) as u32);

    // Caterpillar (((c0,c1),c2),c3)... on all c's: the initial agile tree.
    let mut caterpillar = Tree::three_leaf(n, c(0), c(1), c(2));
    for i in 3..m {
        let prev = caterpillar.leaf(c(i - 1)).expect("leaf exists");
        let e = caterpillar.adjacent_edges(prev)[0];
        caterpillar.insert_leaf_on_edge(c(i), e);
    }

    // Quartet ((a,b),(d,e)).
    let quartet = |a: TaxonId, b: TaxonId, d: TaxonId, e: TaxonId| {
        let mut t = Tree::three_leaf(n, a, b, d);
        let leaf_d = t.leaf(d).expect("leaf exists");
        let edge = t.adjacent_edges(leaf_d)[0];
        t.insert_leaf_on_edge(e, edge);
        t
    };

    let mut constraints = vec![caterpillar];
    // Chain pins: z_i forced onto c_j's pendant edge (j spaced by 3,
    // starting at 7, away from y's split region around c_0..c_5).
    for i in 1..=k {
        let j = 7 + 3 * (i - 1);
        constraints.push(quartet(z(i), c(j), c(j - 1), c(j + 1)));
    }
    // The initial-split taxon y: two quartets whose admissible regions
    // intersect in `chunks` edges around the bottom of the caterpillar
    // (anchoring the second quartet at (c3,c4) instead of (c4,c5) shrinks
    // the sandwiched region from 5 edges to 3).
    constraints.push(quartet(y, c(2), c(0), c(1)));
    if chunks == 5 {
        constraints.push(quartet(y, c(2), c(4), c(5)));
    } else {
        constraints.push(quartet(y, c(2), c(3), c(4)));
    }
    // Free fan taxa: a 3-leaf constraint sharing a single taxon with the
    // agile tree keeps each f-pair admissible everywhere.
    for i in 0..free_pairs {
        constraints.push(Tree::three_leaf(n, f(2 * i + 1), f(2 * i + 2), c(0)));
    }

    Dataset {
        name: format!("plateau-craft-{chunks}"),
        taxa,
        species_tree: None,
        pam: None,
        constraints,
    }
}

/// Pre-searched generator indices of the "long runner" family: instances
/// whose serial virtual cost exceeds ~150k ticks (probe via the
/// `long_scan` maintenance tool). The first two complete under a 400k
/// budget (Table II role); the rest have very large stands (Table I role).
pub const LONG_RUNNER_INDICES: [u64; 6] = [15, 42, 9, 12, 17, 24];

/// A deterministic "long runner" for the Table I / Table II roles: a large
/// instance with a big stand. `index` selects into
/// [`LONG_RUNNER_INDICES`].
pub fn long_runner(index: u64) -> Dataset {
    let params = SimulatedParams {
        taxa: (24, 40),
        loci: (5, 9),
        missing: (0.4, 0.6),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    let gen_idx = LONG_RUNNER_INDICES[index as usize % LONG_RUNNER_INDICES.len()];
    let mut d = simulated_dataset(&params, SCENARIO_SEED.wrapping_add(77), gen_idx);
    d.name = format!("long-runner-{index}");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_showcase_has_searched_property() {
        let d = heuristics_showcase();
        let p = probe(&d, &StoppingRules::counts(500_000, 2_000_000));
        assert!(p.serial_complete, "showcase must be fully enumerable");
        assert!(p.serial_trees >= 100, "stand too small: {}", p.serial_trees);
    }

    #[test]
    fn trap_showcase_has_searched_property() {
        let (d, stopping) = trap_showcase();
        let problem = d.problem().unwrap();
        let cfg = GentriusConfig {
            stopping,
            ..GentriusConfig::default()
        };
        let serial = simulate(&problem, &cfg, &SimConfig::with_threads(1)).unwrap();
        let par = simulate(&problem, &cfg, &SimConfig::with_threads(2)).unwrap();
        assert!(
            !serial.complete(),
            "trap serial run must hit the state limit"
        );
        // Super-linear adapted speedup at 2 threads: parallel finds more
        // trees per tick than serial (Fig. 5b mechanism).
        let asp = par.adapted_speedup_vs(&serial);
        assert!(asp > 2.2, "adapted speedup too low: {asp:.2}");
        assert!(
            par.stats.stand_trees > serial.stats.stand_trees,
            "parallel must find more trees: serial={} parallel={}",
            serial.stats.stand_trees,
            par.stats.stand_trees
        );
    }

    #[test]
    fn plateau_showcase_saturates() {
        let d = plateau_showcase();
        let p = d.problem().unwrap();
        let cfg = GentriusConfig {
            stopping: StoppingRules::unlimited(),
            ..GentriusConfig::default()
        };
        let mut sc1 = SimConfig::with_threads(1);
        sc1.cost = gentrius_sim::CostModel::ideal();
        let s1 = simulate(&p, &cfg, &sc1).unwrap();
        assert!(s1.complete());
        assert!(
            s1.makespan > 5_000,
            "plateau instance too small: {}",
            s1.makespan
        );
        let sp = |t: usize| {
            let mut sc = SimConfig::with_threads(t);
            sc.cost = gentrius_sim::CostModel::ideal();
            let r = simulate(&p, &cfg, &sc).unwrap();
            assert_eq!(r.stats, s1.stats);
            r.speedup_vs(&s1)
        };
        let sp8 = sp(8);
        let sp16 = sp(16);
        // The workload has ~5 unstealable chunks: speedup saturates.
        assert!(sp8 <= 6.0, "no plateau: sp8={sp8:.2}");
        assert!(
            (sp16 - sp8).abs() < 1.0,
            "still scaling: sp8={sp8:.2} sp16={sp16:.2}"
        );
        assert!(sp8 >= 2.0, "plateau too low: sp8={sp8:.2}");
    }

    #[test]
    fn plateau_3_variant_saturates_lower() {
        let d5 = plateau_showcase();
        let d3 = plateau_showcase_3();
        let cfg = GentriusConfig {
            stopping: StoppingRules::unlimited(),
            ..GentriusConfig::default()
        };
        let sp16 = |d: &crate::Dataset| {
            let p = d.problem().unwrap();
            let mut sc1 = SimConfig::with_threads(1);
            sc1.cost = gentrius_sim::CostModel::ideal();
            let s1 = simulate(&p, &cfg, &sc1).unwrap();
            let mut sc = SimConfig::with_threads(16);
            sc.cost = gentrius_sim::CostModel::ideal();
            let r = simulate(&p, &cfg, &sc).unwrap();
            r.speedup_vs(&s1)
        };
        let p5 = sp16(&d5);
        let p3 = sp16(&d3);
        assert!(
            p3 < p5,
            "3-chunk plateau ({p3:.2}) must sit below 5-chunk ({p5:.2})"
        );
        assert!(
            (2.0..=3.7).contains(&p3),
            "expected ~3x plateau, got {p3:.2}"
        );
        assert!(
            (4.0..=5.8).contains(&p5),
            "expected ~5x plateau, got {p5:.2}"
        );
    }

    #[test]
    fn long_runners_are_valid() {
        for i in 0..2 {
            let d = long_runner(i);
            d.problem().unwrap();
            d.pam.as_ref().unwrap().validate_for_inference().unwrap();
        }
    }
}

/// A named scenario in the registry: the dataset plus what it reproduces.
pub struct NamedScenario {
    /// Registry key (CLI: `gen --scenario <key>`).
    pub key: &'static str,
    /// One-line description of the paper role.
    pub role: &'static str,
    /// Builds the dataset.
    pub build: fn() -> Dataset,
}

/// All pre-searched / crafted scenario instances, by stable key.
pub const REGISTRY: &[NamedScenario] = &[
    NamedScenario {
        key: "heuristics-showcase",
        role:
            "emp-data-42370 role (SS II-B): both heuristics matter; 1x/5.8x/14.1x state inflation",
        build: heuristics_showcase,
    },
    NamedScenario {
        key: "trap",
        role: "sim-data-5001 role (Fig. 5b): stopping-rule trap with super-linear adapted speedups",
        build: || trap_showcase().0,
    },
    NamedScenario {
        key: "plateau-3",
        role: "Fig. 5a role: crafted 3-chunk workload, hard ~3x speedup plateau",
        build: plateau_showcase_3,
    },
    NamedScenario {
        key: "plateau-5",
        role: "Fig. 5a role: crafted 5-chunk workload, hard ~5x speedup plateau",
        build: plateau_showcase,
    },
    NamedScenario {
        key: "long-runner-0",
        role: "Table I/II role: large stand, ~200k-tick serial cost",
        build: || long_runner(0),
    },
    NamedScenario {
        key: "long-runner-1",
        role: "Table I/II role: large stand, near-paper Table II scaling shape",
        build: || long_runner(1),
    },
];

/// Looks up a scenario by key.
pub fn scenario_by_key(key: &str) -> Option<Dataset> {
    REGISTRY.iter().find(|s| s.key == key).map(|s| (s.build)())
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn every_registry_entry_builds_a_valid_problem() {
        for entry in REGISTRY {
            let d = scenario_by_key(entry.key).expect("key resolves");
            let p = d.problem().unwrap_or_else(|e| panic!("{}: {e}", entry.key));
            assert!(p.num_taxa() >= 4, "{}", entry.key);
            assert!(!entry.role.is_empty());
        }
        assert!(scenario_by_key("nope").is_none());
    }

    #[test]
    fn registry_keys_are_unique() {
        let mut keys: Vec<&str> = REGISTRY.iter().map(|s| s.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), REGISTRY.len());
    }
}
