//! # gentrius-datagen — seeded dataset generators
//!
//! Generates the workloads of the paper's evaluation (§IV):
//!
//! * [`simulated`] — the simulated suite of the original Gentrius
//!   manuscript (50–300 taxa, 5–30 loci, 30–50% missing data, several
//!   missingness patterns), with the ranges as parameters so laptop-scale
//!   sweeps preserve the regime;
//! * [`empirical`] — an "empirical-like" generator whose distributions
//!   follow what the paper reports about the RAxML Grove database (68% of
//!   datasets with missing data, 19% above 30% missing; clade-correlated
//!   blocky coverage, Yule-like tree shapes) — the offline substitute for
//!   the Grove extraction, documented in DESIGN.md;
//! * [`scenario`] — deterministic instances reproducing the *roles* of
//!   datasets named in the paper (`emp-data-42370`, `sim-data-5001`, the
//!   Table I/II long runners);
//! * [`dataset`] — the dataset container plus text-file persistence.
//!
//! Everything is a pure function of (parameters, seed, index): any
//! instance from any sweep can be regenerated in isolation.

#![warn(missing_docs)]

pub mod adversarial;
pub mod dataset;
pub mod empirical;
pub mod fuzz;
pub mod scenario;
pub mod simulated;

pub use adversarial::{
    grove_dataset, interaction_dataset, unbalanced_dataset, GroveParams, InteractionParams,
    UnbalancedParams,
};
pub use dataset::Dataset;
pub use empirical::{empirical_dataset, EmpiricalParams};
pub use simulated::{sample_pam, simulated_dataset, MissingPattern, SimulatedParams};
