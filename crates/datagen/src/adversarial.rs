//! Adversarial instance families beyond the crafted caterpillar blow-up
//! and the dead-end trap (ROADMAP item 4: the instance zoo).
//!
//! Three seeded families, each a pure function of `(params, seed, index)`
//! so any zoo member regenerates byte-identically in isolation:
//!
//! * [`unbalanced_dataset`] — **deep unbalanced workflow trees** (the
//!   Fig. 5a plateau class): a randomized caterpillar spine, a forced
//!   pinned chain explored in the serial prefix, one split taxon
//!   sandwiched into a narrow admissible region (the unstealable-chunk
//!   count), and a small free fan at the very bottom where the §III-A
//!   rule forbids task creation. Speedups plateau near the sandwiched
//!   region width regardless of thread count.
//! * [`interaction_dataset`] — **stopping-rule-interaction instances**
//!   (the Fig. 5b super-linearity class): a desert/garden presence–
//!   absence matrix whose first loci pin a dead-end-rich region early in
//!   the DFS order while later blocky loci keep a tree-dense region.
//!   Under the class state budget ([`interaction_stopping`]) the serial
//!   run burns its budget in the desert; the parallel descent reaches
//!   the garden sooner — adapted speedups beyond the thread count.
//! * [`grove_dataset`] — **Grove-like empirical sweeps** (the paper's §V
//!   distributions): Yule-shaped species trees, the RAxML-Grove
//!   missingness mixture (68% of datasets with missing data, 19% above
//!   30%), and *clade-correlated* blocky coverage — each locus covers a
//!   clade read off the species tree itself rather than a contiguous
//!   window of the taxon order.
//!
//! Pre-searched showcase indices (re-pin with the `zoo_scan` bin if the
//! workspace RNG stream changes) give the bench and the differential
//! harness known-good members of each class.

use crate::dataset::Dataset;
use gentrius_core::StoppingRules;
use phylo::bitset::BitSet;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::pam::Pam;
use phylo::taxa::{TaxonId, TaxonSet};
use phylo::tree::{EdgeId, Tree};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The master seed of the pre-searched zoo showcases below.
pub const ZOO_SEED: u64 = 20260808;

// ---------------------------------------------------------------------------
// Family 1: deep unbalanced workflow trees (Fig. 5a plateau class)
// ---------------------------------------------------------------------------

/// Parameters of the unbalanced-workflow family.
#[derive(Clone, Debug)]
pub struct UnbalancedParams {
    /// Inclusive range of caterpillar-spine lengths.
    pub spine: (usize, usize),
    /// Inclusive range of the far-quartet anchor offset `a` (≥3); the
    /// sandwiched split region spans `2a-3` edges — the number of
    /// unstealable chunks the plateau saturates at.
    pub anchor: (usize, usize),
    /// Inclusive range of forced-chain lengths (serial-prefix depth).
    pub pinned: (usize, usize),
    /// Inclusive range of free-fan *pairs* at the bottom (each pair is two
    /// everywhere-admissible taxa; 1 pair sits below the §III-A cut-off).
    pub tail_pairs: (usize, usize),
}

impl UnbalancedParams {
    /// The zoo defaults: plateaus between ~2x and ~6x, spines deep enough
    /// that the per-chunk work dwarfs the prefix.
    pub fn zoo() -> Self {
        UnbalancedParams {
            spine: (21, 31),
            anchor: (3, 6),
            pinned: (3, 6),
            tail_pairs: (1, 1),
        }
    }
}

/// Generates unbalanced-workflow instance `unbalanced-<index>`
/// deterministically from `(params, seed, index)`.
pub fn unbalanced_dataset(params: &UnbalancedParams, seed: u64, index: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    let m = rng.gen_range(params.spine.0..=params.spine.1).max(10);
    let anchor = rng.gen_range(params.anchor.0..=params.anchor.1).clamp(3, 6);
    // Chain pins sit on pendant edges spaced by 3 starting past the split
    // region; clamp the chain to what the spine can host.
    let first_pin = anchor + 3;
    let k_max = if m > first_pin + 2 {
        (m - first_pin - 2) / 3
    } else {
        0
    };
    let k = rng
        .gen_range(params.pinned.0..=params.pinned.1)
        .min(k_max)
        .max(1);
    let pairs = rng
        .gen_range(params.tail_pairs.0..=params.tail_pairs.1)
        .max(1);

    let n = m + k + 1 + 2 * pairs;
    let mut taxa = TaxonSet::new();
    for i in 0..m {
        taxa.intern(&format!("c{i}"));
    }
    for i in 1..=k {
        taxa.intern(&format!("z{i}"));
    }
    taxa.intern("y");
    for i in 1..=2 * pairs {
        taxa.intern(&format!("f{i}"));
    }
    let c = |i: usize| TaxonId(i as u32);
    let z = |i: usize| TaxonId((m + i - 1) as u32);
    let y = TaxonId((m + k) as u32);
    let f = |i: usize| TaxonId((m + k + i) as u32);

    // Caterpillar (((c0,c1),c2),c3)... on all c's: the agile tree.
    let mut caterpillar = Tree::three_leaf(n, c(0), c(1), c(2));
    for i in 3..m {
        let prev = caterpillar.leaf(c(i - 1)).expect("leaf exists");
        let e = caterpillar.adjacent_edges(prev)[0];
        caterpillar.insert_leaf_on_edge(c(i), e);
    }
    let quartet = |a: TaxonId, b: TaxonId, d: TaxonId, e: TaxonId| {
        let mut t = Tree::three_leaf(n, a, b, d);
        let leaf_d = t.leaf(d).expect("leaf exists");
        let edge = t.adjacent_edges(leaf_d)[0];
        t.insert_leaf_on_edge(e, edge);
        t
    };

    let mut constraints = vec![caterpillar];
    // Forced chain: z_i pinned to one pendant edge each, spaced out so the
    // pins never interact with y's split region.
    for i in 1..=k {
        let j = first_pin + 3 * (i - 1);
        constraints.push(quartet(z(i), c(j), c(j - 1), c(j + 1)));
    }
    // The split taxon y: two quartets sandwiching a bounded region at the
    // bottom of the caterpillar (same mechanism as the crafted plateau —
    // the far quartet anchored at (c_a, c_{a+1}) leaves a (2a-3)-edge
    // admissible intersection, so anchors 3..=6 give 3/5/7/9 chunks).
    constraints.push(quartet(y, c(2), c(0), c(1)));
    constraints.push(quartet(y, c(2), c(anchor), c(anchor + 1)));
    // Free fan pairs: each shares one spine taxon, so both fan taxa stay
    // admissible everywhere and are inserted last — below the §III-A
    // cut-off for a single pair.
    for i in 0..pairs {
        constraints.push(Tree::three_leaf(n, f(2 * i + 1), f(2 * i + 2), c(0)));
    }

    Dataset {
        name: format!("unbalanced-{index}"),
        taxa,
        species_tree: None,
        pam: None,
        constraints,
    }
}

/// Pre-searched index of the unbalanced-workflow showcase: a deep
/// instance whose 16-thread ideal-machine speedup saturates within ±1 of
/// its 8-thread speedup (the Fig. 5a plateau shape). Re-pin with
/// `zoo_scan`.
pub const UNBALANCED_INDEX: u64 = 3;

/// The unbalanced-workflow showcase instance.
pub fn unbalanced_showcase() -> Dataset {
    unbalanced_dataset(&UnbalancedParams::zoo(), ZOO_SEED, UNBALANCED_INDEX)
}

// ---------------------------------------------------------------------------
// Family 2: stopping-rule-interaction instances (Fig. 5b class)
// ---------------------------------------------------------------------------

/// Parameters of the stopping-rule-interaction family.
#[derive(Clone, Debug)]
pub struct InteractionParams {
    /// Inclusive range of taxon counts.
    pub taxa: (usize, usize),
    /// Inclusive range of locus counts.
    pub loci: (usize, usize),
    /// Fraction of the taxon range the narrow desert windows concentrate
    /// in (the dead-end-rich region).
    pub desert_frac: (f64, f64),
    /// Missing-data fraction of the narrow desert loci.
    pub desert_missing: (f64, f64),
    /// The class state budget: the stopping rule the interaction is
    /// defined against (Fig. 5b is a statement about truncated runs).
    pub state_budget: u64,
}

impl InteractionParams {
    /// The zoo defaults: a scaled version of the paper's 10M-state short
    /// analyses (§IV-D) sized for laptop benches.
    pub fn zoo() -> Self {
        InteractionParams {
            taxa: (22, 34),
            loci: (6, 9),
            desert_frac: (0.4, 0.6),
            desert_missing: (0.55, 0.7),
            state_budget: 50_000,
        }
    }
}

/// The class stopping rules: unlimited trees, the parameterized state
/// budget (rule 2 dominates, exactly the Fig. 5b setup).
pub fn interaction_stopping(params: &InteractionParams) -> StoppingRules {
    StoppingRules::counts(1_000_000_000, params.state_budget)
}

/// Generates stopping-rule-interaction instance `interaction-<index>`
/// deterministically. The PAM has bimodal clustered coverage: narrow
/// "desert" windows (high missingness, conflicting, concentrated in one
/// stretch of the taxon range) piled on top of wide "garden" windows
/// placed anywhere. Taxa under the desert pile carry many mutually
/// overlapping narrow constraints — dead-end-rich search regions — while
/// the rest of the range stays tree-dense. Under the class budget the
/// serial DFS can burn its whole state budget in a desert subtree that a
/// parallel descent escapes by splitting.
pub fn interaction_dataset(params: &InteractionParams, seed: u64, index: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    let n = rng.gen_range(params.taxa.0..=params.taxa.1);
    let m = rng.gen_range(params.loci.0..=params.loci.1).max(4);
    let desert_frac = rng.gen_range(params.desert_frac.0..=params.desert_frac.1);
    let desert_missing = rng.gen_range(params.desert_missing.0..=params.desert_missing.1);
    let n_desert = ((n as f64 * desert_frac) as usize).clamp(4, n - 4);

    let taxa = TaxonSet::with_synthetic(n);
    let tree = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
    let mut pam = Pam::new(n, m);
    let m_desert = (m / 2).max(2);
    for l in 0..m {
        let (cover, start) = if l < m_desert {
            // Narrow windows concentrated in the desert stretch.
            let cover = ((1.0 - desert_missing) * n as f64).round().max(4.0) as usize;
            (cover, rng.gen_range(0..n_desert))
        } else {
            // Wider windows placed anywhere (garden backbone), in the
            // dead-end-prone clustered regime of the crafted trap.
            let miss = rng.gen_range(0.45..0.6);
            let cover = ((1.0 - miss) * n as f64).round().max(4.0) as usize;
            (cover, rng.gen_range(0..n))
        };
        for j in 0..cover.min(n) {
            pam.set(TaxonId(((start + j) % n) as u32), l, true);
        }
        // Noise: flip ~10% of entries, as in the clustered regime.
        for _ in 0..n / 10 {
            let t = TaxonId(rng.gen_range(0..n as u32));
            pam.set(t, l, rng.gen::<bool>());
        }
    }
    repair(&mut pam, &mut rng);
    let constraints = pam.induced_subtrees(&tree);
    Dataset {
        name: format!("interaction-{index}"),
        taxa,
        species_tree: Some(tree),
        pam: Some(pam),
        constraints,
    }
}

/// Pre-searched index of the interaction showcase: under the class budget
/// the serial run stops on the state limit and the 2-thread adapted
/// speedup exceeds 2.2x. Re-pin with `zoo_scan`.
pub const INTERACTION_INDEX: u64 = 149;

/// The interaction showcase instance with its class stopping rules.
pub fn interaction_showcase() -> (Dataset, StoppingRules) {
    let params = InteractionParams::zoo();
    let d = interaction_dataset(&params, ZOO_SEED, INTERACTION_INDEX);
    (d, interaction_stopping(&params))
}

// ---------------------------------------------------------------------------
// Family 3: Grove-like empirical sweeps (§V distributions)
// ---------------------------------------------------------------------------

/// Parameters of the Grove-like family.
#[derive(Clone, Debug)]
pub struct GroveParams {
    /// Log-uniform taxon-count range.
    pub taxa: (usize, usize),
    /// Inclusive range of locus counts.
    pub loci: (usize, usize),
    /// Fraction of datasets with any missing data (RAxML Grove: 0.68).
    pub frac_with_missing: f64,
    /// Fraction of datasets with >30% missing (RAxML Grove: 0.19).
    pub frac_heavy_missing: f64,
}

impl GroveParams {
    /// Grove-shaped defaults at laptop scale.
    pub fn zoo() -> Self {
        GroveParams {
            taxa: (10, 30),
            loci: (4, 9),
            frac_with_missing: 0.68,
            frac_heavy_missing: 0.19,
        }
    }
}

/// Taxa on the far side of `edge` seen from `from` (the clade cut off by
/// the edge) — a small directed traversal over the unrooted tree.
fn clade_taxa(tree: &Tree, edge: EdgeId, from: phylo::tree::NodeId) -> BitSet {
    let mut out = BitSet::new(tree.universe());
    let start = tree.opposite(edge, from);
    let mut stack = vec![(start, edge)];
    while let Some((node, via)) = stack.pop() {
        if let Some(t) = tree.taxon(node) {
            out.insert(t.index());
        }
        for &e in tree.adjacent_edges(node) {
            if e != via {
                stack.push((tree.opposite(e, node), e));
            }
        }
    }
    out
}

/// Generates Grove-like instance `grove-<index>` deterministically: a
/// Yule species tree, the Grove missingness mixture, and per-locus
/// coverage equal to a *clade* of the species tree (whichever sampled
/// clade best matches the target coverage) plus light noise — blocky,
/// clade-correlated PAMs rather than contiguous windows.
pub fn grove_dataset(params: &GroveParams, seed: u64, index: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let (lo, hi) = params.taxa;
    let n = (lo as f64 * (hi as f64 / lo as f64).powf(rng.gen::<f64>())).round() as usize;
    let n = n.clamp(lo, hi).max(8);
    let m = rng.gen_range(params.loci.0..=params.loci.1).max(3);

    // Dataset-level missingness mixture per the Grove fractions.
    let u: f64 = rng.gen();
    let missing = if u >= params.frac_with_missing {
        0.0
    } else if u < params.frac_heavy_missing {
        rng.gen_range(0.3..0.55)
    } else {
        rng.gen_range(0.05..0.3)
    };

    let taxa = TaxonSet::with_synthetic(n);
    let tree = random_tree_on_n(n, ShapeModel::Yule, &mut rng);
    let mut pam = Pam::new(n, m);
    let edges: Vec<EdgeId> = tree.edges().collect();
    let target = (((1.0 - missing) * n as f64).round() as usize).clamp(4, n);
    for l in 0..m {
        if missing == 0.0 {
            for t in 0..n {
                pam.set(TaxonId(t as u32), l, true);
            }
            continue;
        }
        // Sample a handful of clades; keep the one whose size is closest
        // to the per-locus coverage target (jittered around the dataset
        // missingness so loci differ).
        let locus_target =
            ((target as f64 * rng.gen_range(0.75..1.25)).round() as usize).clamp(4, n);
        let mut best: Option<BitSet> = None;
        for _ in 0..6 {
            let e = edges[rng.gen_range(0..edges.len())];
            let (a, b) = tree.endpoints(e);
            let side = if rng.gen::<bool>() { a } else { b };
            let clade = clade_taxa(&tree, e, side);
            let better = match &best {
                None => true,
                Some(cur) => {
                    (clade.count() as i64 - locus_target as i64).abs()
                        < (cur.count() as i64 - locus_target as i64).abs()
                }
            };
            if better {
                best = Some(clade);
            }
        }
        let clade = best.expect("sampled at least one clade");
        for t in clade.iter() {
            pam.set(TaxonId(t as u32), l, true);
        }
        // Light uniform noise (~5% of entries) so the blocks are not
        // perfectly clean — real supermatrices never are.
        for _ in 0..n / 20 + 1 {
            let t = TaxonId(rng.gen_range(0..n as u32));
            pam.set(t, l, rng.gen::<bool>());
        }
    }
    repair(&mut pam, &mut rng);
    let constraints = pam.induced_subtrees(&tree);
    Dataset {
        name: format!("grove-{index}"),
        taxa,
        species_tree: Some(tree),
        pam: Some(pam),
        constraints,
    }
}

/// Pre-searched index of the Grove showcase: a fully enumerable instance
/// with a non-trivial stand and clade-blocky coverage. Re-pin with
/// `zoo_scan`.
pub const GROVE_INDEX: u64 = 188;

/// The Grove-like showcase instance.
pub fn grove_showcase() -> Dataset {
    grove_dataset(&GroveParams::zoo(), ZOO_SEED, GROVE_INDEX)
}

/// Ensures every locus has ≥4 taxa and every taxon ≥1 locus (same repair
/// contract as the simulated generator).
fn repair(pam: &mut Pam, rng: &mut ChaCha8Rng) {
    let n = pam.universe();
    let m = pam.loci();
    for l in 0..m {
        while pam.column(l).count() < 4 {
            let t = TaxonId(rng.gen_range(0..n as u32));
            pam.set(t, l, true);
        }
    }
    let covered = pam.covered_taxa();
    for t in 0..n {
        if !covered.contains(t) {
            let l = rng.gen_range(0..m);
            pam.set(TaxonId(t as u32), l, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gentrius_core::GentriusConfig;
    use gentrius_sim::{simulate, CostModel, SimConfig};

    #[test]
    fn families_are_deterministic_and_valid() {
        for i in 0..6 {
            let a = unbalanced_dataset(&UnbalancedParams::zoo(), 5, i);
            let b = unbalanced_dataset(&UnbalancedParams::zoo(), 5, i);
            assert_eq!(a.to_text(), b.to_text());
            a.problem().unwrap();
            let a = interaction_dataset(&InteractionParams::zoo(), 5, i);
            let b = interaction_dataset(&InteractionParams::zoo(), 5, i);
            assert_eq!(a.to_text(), b.to_text());
            a.problem().unwrap();
            a.pam.as_ref().unwrap().validate_for_inference().unwrap();
            let a = grove_dataset(&GroveParams::zoo(), 5, i);
            let b = grove_dataset(&GroveParams::zoo(), 5, i);
            assert_eq!(a.to_text(), b.to_text());
            a.problem().unwrap();
            a.pam.as_ref().unwrap().validate_for_inference().unwrap();
        }
    }

    #[test]
    fn unbalanced_showcase_plateaus() {
        let d = unbalanced_showcase();
        let p = d.problem().unwrap();
        let cfg = GentriusConfig::exhaustive();
        let sp = |t: usize| {
            let mut sc = SimConfig::with_threads(t);
            sc.cost = CostModel::ideal();
            simulate(&p, &cfg, &sc).unwrap()
        };
        let s1 = sp(1);
        assert!(s1.complete());
        assert!(s1.makespan > 3_000, "too small: {}", s1.makespan);
        let sp8 = sp(8).speedup_vs(&s1);
        let sp16 = sp(16).speedup_vs(&s1);
        assert!(sp8 >= 1.8, "plateau too low: {sp8:.2}");
        assert!(sp8 <= 7.0, "no plateau: sp8={sp8:.2}");
        assert!(
            (sp16 - sp8).abs() < 1.0,
            "still scaling: sp8={sp8:.2} sp16={sp16:.2}"
        );
    }

    #[test]
    fn interaction_showcase_is_superlinear_under_budget() {
        let (d, stopping) = interaction_showcase();
        let p = d.problem().unwrap();
        let cfg = GentriusConfig {
            stopping,
            ..GentriusConfig::default()
        };
        let serial = simulate(&p, &cfg, &SimConfig::with_threads(1)).unwrap();
        assert!(!serial.complete(), "serial run must hit the state budget");
        let par = simulate(&p, &cfg, &SimConfig::with_threads(2)).unwrap();
        let asp = par.adapted_speedup_vs(&serial);
        assert!(asp > 2.2, "adapted speedup too low: {asp:.2}");
    }

    #[test]
    fn grove_mixture_matches_fractions_and_blocks_are_clades() {
        let params = GroveParams::zoo();
        let total = 150u64;
        let mut with_missing = 0usize;
        let mut heavy = 0usize;
        for i in 0..total {
            let d = grove_dataset(&params, 11, i);
            let f = d.missing_fraction();
            if f > 0.01 {
                with_missing += 1;
            }
            if f > 0.3 {
                heavy += 1;
            }
        }
        let fw = with_missing as f64 / total as f64;
        let fh = heavy as f64 / total as f64;
        assert!((0.5..=0.85).contains(&fw), "with-missing fraction {fw}");
        assert!((0.06..=0.35).contains(&fh), "heavy-missing fraction {fh}");
    }

    #[test]
    fn grove_coverage_is_clade_correlated() {
        // For datasets with real missingness, locus columns must be close
        // (by symmetric difference) to some clade of the species tree —
        // closer than the best contiguous taxon-order window, on average.
        let params = GroveParams::zoo();
        let mut clade_better_or_equal = 0usize;
        let mut measured = 0usize;
        for i in 0..40 {
            let d = grove_dataset(&params, 13, i);
            let f = d.missing_fraction();
            if !(0.1..=0.6).contains(&f) {
                continue;
            }
            let tree = d.species_tree.as_ref().unwrap();
            let pam = d.pam.as_ref().unwrap();
            let n = pam.universe();
            for col in pam.columns() {
                if col.count() == n || col.count() < 4 {
                    continue;
                }
                let best_clade = tree
                    .edges()
                    .flat_map(|e| {
                        let (a, b) = tree.endpoints(e);
                        [(e, a), (e, b)]
                    })
                    .map(|(e, side)| {
                        let clade = clade_taxa(tree, e, side);
                        col.difference(&clade).count() + clade.difference(col).count()
                    })
                    .min()
                    .unwrap();
                let best_window = (0..n)
                    .map(|start| {
                        let w = BitSet::from_iter(n, (0..col.count()).map(|j| (start + j) % n));
                        col.difference(&w).count() + w.difference(col).count()
                    })
                    .min()
                    .unwrap();
                measured += 1;
                if best_clade <= best_window {
                    clade_better_or_equal += 1;
                }
            }
        }
        assert!(measured >= 20, "too few informative columns: {measured}");
        assert!(
            clade_better_or_equal * 10 >= measured * 7,
            "clade fit beat window fit on only {clade_better_or_equal}/{measured} columns"
        );
    }
}
