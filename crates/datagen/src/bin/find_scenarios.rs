//! Maintenance tool: re-searches the hardcoded scenario indices in
//! `gentrius_datagen::scenario`. Run after changing the generators, the
//! scenario seed or the search predicates, and update the constants.

use gentrius_datagen::scenario::{find_heuristics_showcase, find_trap_instance, SCENARIO_SEED};

fn main() {
    // Optional overrides: find_scenarios [budget] [min_asp]
    let args: Vec<String> = std::env::args().collect();
    let budget: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let min_asp: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.2);
    println!("searching heuristics showcase (seed {SCENARIO_SEED})...");
    match find_heuristics_showcase(SCENARIO_SEED, 0, budget, 100, 500) {
        Some((i, d)) => println!(
            "  HEURISTICS_INDEX = {i}  ({}, {} taxa, {} loci)",
            d.name,
            d.num_taxa(),
            d.num_loci()
        ),
        None => println!("  not found in budget"),
    }
    println!("searching trap instance (seed {SCENARIO_SEED}, min_asp {min_asp})...");
    match find_trap_instance(SCENARIO_SEED, 0, budget, min_asp) {
        Some((i, d)) => println!(
            "  TRAP_INDEX = {i}  ({}, {} taxa, {} loci)",
            d.name,
            d.num_taxa(),
            d.num_loci()
        ),
        None => println!("  not found in budget"),
    }
}
