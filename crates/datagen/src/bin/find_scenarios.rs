//! Maintenance tool: re-searches the hardcoded scenario indices in
//! `gentrius_datagen::scenario`. Run after changing the generators, the
//! scenario seed or the search predicates, and update the constants.

use gentrius_datagen::scenario::{
    find_heuristics_showcase, find_trap_instance, SCENARIO_SEED,
};

fn main() {
    println!("searching heuristics showcase (seed {SCENARIO_SEED})...");
    match find_heuristics_showcase(SCENARIO_SEED, 0, 200, 100, 500) {
        Some((i, d)) => println!(
            "  HEURISTICS_INDEX = {i}  ({}, {} taxa, {} loci)",
            d.name,
            d.num_taxa(),
            d.num_loci()
        ),
        None => println!("  not found in budget"),
    }
    println!("searching trap instance (seed {SCENARIO_SEED})...");
    match find_trap_instance(SCENARIO_SEED, 0, 50, 2.2) {
        Some((i, d)) => println!(
            "  TRAP_INDEX = {i}  ({}, {} taxa, {} loci)",
            d.name,
            d.num_taxa(),
            d.num_loci()
        ),
        None => println!("  not found in budget"),
    }
}
