//! Maintenance tool: searches for the emp-data-42370-role instance where
//! both §II-B heuristics visibly matter (states inflate when either is
//! disabled), to pin `HEURISTICS_INDEX`.

use gentrius_core::{CountOnly, GentriusConfig, InitialTreeRule, StoppingRules, TaxonOrderRule};
use gentrius_datagen::scenario::{scenario_params, SCENARIO_SEED};
use gentrius_datagen::simulated_dataset;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let start: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let params = scenario_params();
    for i in start..start + budget {
        let d = simulated_dataset(&params, SCENARIO_SEED, i);
        let Ok(p) = d.problem() else { continue };
        let run =
            |cfg: GentriusConfig| gentrius_core::run_serial(&p, &cfg, &mut CountOnly).unwrap();
        let both = run(GentriusConfig {
            stopping: StoppingRules::counts(300_000, 600_000),
            ..GentriusConfig::default()
        });
        if !both.complete() || both.stats.stand_trees < 500 || both.stats.intermediate_states < 200
        {
            continue;
        }
        let best = p.initial_tree_index(&InitialTreeRule::MaxOverlap).unwrap();
        let other = (0..p.constraints().len())
            .rev()
            .find(|&x| x != best)
            .unwrap();
        let noinit = run(GentriusConfig {
            initial_tree: InitialTreeRule::Index(other),
            stopping: StoppingRules::counts(300_000, 600_000),
            ..GentriusConfig::default()
        });
        let nodyn = run(GentriusConfig {
            taxon_order: TaxonOrderRule::ById,
            stopping: StoppingRules::counts(300_000, 600_000),
            ..GentriusConfig::default()
        });
        if !noinit.complete() || !nodyn.complete() {
            continue;
        }
        let r1 = noinit.stats.intermediate_states as f64 / both.stats.intermediate_states as f64;
        let r2 = nodyn.stats.intermediate_states as f64 / both.stats.intermediate_states as f64;
        if r1 > 1.5 && r2 > 3.0 && r2 > r1 {
            println!(
                "i={i:4} trees={} states both={} noinit={} ({r1:.1}x) nodyn={} ({r2:.1}x) dead={}/{}/{}",
                both.stats.stand_trees,
                both.stats.intermediate_states,
                noinit.stats.intermediate_states,
                nodyn.stats.intermediate_states,
                both.stats.dead_ends,
                noinit.stats.dead_ends,
                nodyn.stats.dead_ends,
            );
        }
    }
    println!("scan done");
}
