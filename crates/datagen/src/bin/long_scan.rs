//! Maintenance tool: finds generator indices for the "long runner"
//! scenario family (Table I / Table II roles) — instances whose serial
//! virtual cost is large enough to exercise 16–48 threads.

use gentrius_core::{GentriusConfig, StoppingRules};
use gentrius_datagen::scenario::SCENARIO_SEED;
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_sim::{simulate, SimConfig};
use phylo::generate::ShapeModel;

fn main() {
    let params = SimulatedParams {
        taxa: (24, 40),
        loci: (5, 9),
        missing: (0.4, 0.6),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(400_000, 400_000),
        ..GentriusConfig::default()
    };
    let mut found = 0;
    for i in 0..400u64 {
        if found >= 8 {
            break;
        }
        let d = simulated_dataset(&params, SCENARIO_SEED.wrapping_add(77), i);
        let Ok(p) = d.problem() else { continue };
        let s1 = simulate(&p, &cfg, &SimConfig::with_threads(1)).unwrap();
        if s1.makespan >= 50_000 {
            let s16 = simulate(&p, &cfg, &SimConfig::with_threads(16)).unwrap();
            println!(
                "idx={i:4} t1={:8} trees={:8} complete={} sp16={:.2}",
                s1.makespan,
                s1.stats.stand_trees,
                s1.complete(),
                s1.makespan as f64 / s16.makespan.max(1) as f64
            );
            found += 1;
        }
    }
    println!("scan done");
}
