//! Materializes the evaluation data as files — the reproduction's
//! analogue of the paper's downloadable dataset tarball.
//!
//! ```text
//! cargo run --release -p gentrius-datagen --bin make_suite -- <out-dir> [sim-count] [emp-count]
//! ```
//!
//! Writes `sim-data-*.dataset` and `emp-data-*.dataset` files (the
//! gentrius dataset v1 format), every scenario instance, and a MANIFEST
//! with per-dataset shape statistics. Everything is seeded: re-running
//! reproduces the exact same files.

use gentrius_datagen::scenario::REGISTRY;
use gentrius_datagen::{empirical_dataset, simulated_dataset, EmpiricalParams, SimulatedParams};
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = args.get(1).cloned().unwrap_or_else(|| "datasets".into());
    let sim_count: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(48);
    let emp_count: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(48);
    let dir = Path::new(&out);
    std::fs::create_dir_all(dir).expect("create output directory");

    let mut manifest = String::from(
        "# gentrius-rs dataset suite (seeded; regenerate with make_suite)\n\
         # name taxa loci missing% comprehensive overlap_connected decisive\n",
    );
    let mut describe = |d: &gentrius_datagen::Dataset| {
        let pam = d.pam.as_ref();
        writeln!(
            manifest,
            "{} {} {} {:.1} {} {} {}",
            d.name,
            d.num_taxa(),
            d.num_loci(),
            100.0 * d.missing_fraction(),
            pam.map(|p| p.comprehensive_taxa().count()).unwrap_or(0),
            pam.map(|p| p.overlap_graph_connected(2)).unwrap_or(true),
            pam.map(|p| p.is_decisive()).unwrap_or(false),
        )
        .unwrap();
    };

    let sim_params = SimulatedParams::scaled();
    for i in 0..sim_count {
        let d = simulated_dataset(&sim_params, 61, i);
        d.save(&dir.join(format!("{}.dataset", d.name)))
            .expect("write");
        describe(&d);
    }
    let emp_params = EmpiricalParams::scaled();
    for i in 0..emp_count {
        let d = empirical_dataset(&emp_params, 62, i);
        d.save(&dir.join(format!("{}.dataset", d.name)))
            .expect("write");
        describe(&d);
    }
    for s in REGISTRY {
        let d = (s.build)();
        d.save(&dir.join(format!("{}.dataset", d.name)))
            .expect("write");
        describe(&d);
    }
    std::fs::write(dir.join("MANIFEST"), manifest).expect("write manifest");
    println!(
        "wrote {} datasets + MANIFEST to {}",
        sim_count + emp_count + REGISTRY.len() as u64,
        dir.display()
    );
}
