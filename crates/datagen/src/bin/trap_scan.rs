//! Maintenance tool: scans for paper-role scenario instances (the
//! sim-data-5001 "trap" and the Fig. 5a "plateau") and prints per-instance
//! statistics under reduced stopping rules so the hardcoded scenario
//! indices in `gentrius_datagen::scenario` can be chosen.

use gentrius_core::{GentriusConfig, StoppingRules};
use gentrius_datagen::scenario::SCENARIO_SEED;
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_sim::{simulate, SimConfig};
use phylo::generate::ShapeModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let start: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    let pattern = match args.get(3).map(|s| s.as_str()) {
        Some("clustered") => MissingPattern::Clustered,
        Some("core") => MissingPattern::ComprehensiveCore,
        _ => MissingPattern::Uniform,
    };
    let max_trees: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let max_states: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let params = SimulatedParams {
        taxa: (22, 36),
        loci: (5, 9),
        missing: (0.45, 0.65),
        pattern,
        shape: ShapeModel::Uniform,
    };
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(max_trees, max_states),
        ..GentriusConfig::default()
    };
    for i in start..start + budget {
        let d = simulated_dataset(&params, SCENARIO_SEED, i);
        let p = match d.problem() {
            Ok(p) => p,
            Err(_) => continue,
        };
        let s1 = simulate(&p, &cfg, &SimConfig::with_threads(1)).unwrap();
        if s1.makespan < 2000 {
            continue; // "small dataset" — the paper filters these out too
        }
        let s2 = simulate(&p, &cfg, &SimConfig::with_threads(2)).unwrap();
        let s8 = simulate(&p, &cfg, &SimConfig::with_threads(8)).unwrap();
        let sp2 = s1.makespan as f64 / s2.makespan.max(1) as f64;
        let sp8 = s1.makespan as f64 / s8.makespan.max(1) as f64;
        println!(
            "i={i:4} n={:3} m={} stop={} t1={:9} trees1={:8} dead1={:7} | sp2={sp2:6.2} sp8={sp8:6.2} trees2={:8} trees8={:8}",
            d.num_taxa(),
            d.num_loci(),
            s1.stop.map(|c| format!("{c:?}")).unwrap_or_else(|| "-".into()),
            s1.makespan,
            s1.stats.stand_trees,
            s1.stats.dead_ends,
            s2.stats.stand_trees,
            s8.stats.stand_trees,
        );
    }
    println!("scan done");
}
