//! `datagen fuzz` — seeded constraint-set mutation fuzzing under the
//! 3-mode × thread-count conformance matrix.
//!
//! ```text
//! cargo run --release -p gentrius-datagen --bin fuzz -- \
//!     [--seed N] [--seconds N] [--iterations N] [--corpus-dir DIR] [--threads a,b]
//! ```
//!
//! Every iteration derives a mutant purely from `(seed, iteration)`, so a
//! reported failure replays with the same seed. Minimized failures are
//! written to the corpus directory (default `tests/corpus/`) in the
//! gentrius dataset v1 text format, where `tests/fuzz_corpus.rs` pins
//! them forever. Exits non-zero when any divergence was found.

use gentrius_datagen::fuzz::{run_fuzz, FuzzConfig};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut seed = 20260808u64;
    let mut seconds: Option<u64> = None;
    let mut iterations: Option<u64> = None;
    let mut corpus_dir: Option<PathBuf> = Some(PathBuf::from("tests/corpus"));
    let mut threads = vec![2usize, 4];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--seed" => {
                seed = need(i).parse().expect("--seed takes a u64");
                i += 2;
            }
            "--seconds" => {
                seconds = Some(need(i).parse().expect("--seconds takes a u64"));
                i += 2;
            }
            "--iterations" => {
                iterations = Some(need(i).parse().expect("--iterations takes a u64"));
                i += 2;
            }
            "--corpus-dir" => {
                let v = need(i);
                corpus_dir = if v == "none" {
                    None
                } else {
                    Some(PathBuf::from(v))
                };
                i += 2;
            }
            "--threads" => {
                threads = need(i)
                    .split(',')
                    .map(|s| s.parse().expect("--threads takes a,b,..."))
                    .collect();
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if seconds.is_none() && iterations.is_none() {
        seconds = Some(60);
    }

    let mut cfg = FuzzConfig::new(seed);
    cfg.max_iterations = iterations;
    cfg.time_box = seconds.map(Duration::from_secs);
    cfg.threads = threads;

    println!(
        "fuzz: seed={seed} time_box={:?} iterations={:?} threads={:?}",
        cfg.time_box, cfg.max_iterations, cfg.threads
    );
    let report = run_fuzz(&cfg, corpus_dir.as_deref()).expect("corpus write failed");
    println!(
        "fuzz: {} iterations, {} checked, {} skipped, {} failures",
        report.iterations,
        report.checked,
        report.skipped,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "  FAILURE iteration={} name={} reason={}",
            f.iteration, f.dataset.name, f.reason
        );
    }
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}
