//! Maintenance tool: scans the adversarial-zoo families and reports
//! which indices satisfy their showcase properties, so the pinned
//! `*_INDEX` constants in `adversarial.rs` can be re-searched whenever
//! the workspace RNG stream or the generators change.
//!
//! ```text
//! cargo run --release -p gentrius-datagen --bin zoo_scan -- [family] [start] [budget]
//! ```
//!
//! `family` is `unbalanced`, `interaction`, `grove` or `all`.

use gentrius_core::{run_serial, CountOnly, GentriusConfig};
use gentrius_datagen::adversarial::{
    grove_dataset, interaction_dataset, interaction_stopping, unbalanced_dataset, GroveParams,
    InteractionParams, UnbalancedParams, ZOO_SEED,
};
use gentrius_sim::{simulate, CostModel, SimConfig};

fn scan_unbalanced(start: u64, budget: u64) {
    println!("-- unbalanced (want: complete, t1>3000, 1.8<=sp8<=7, |sp16-sp8|<1)");
    let params = UnbalancedParams::zoo();
    let cfg = GentriusConfig::exhaustive();
    for i in start..start + budget {
        let d = unbalanced_dataset(&params, ZOO_SEED, i);
        let Ok(p) = d.problem() else { continue };
        let sim = |t: usize| {
            let mut sc = SimConfig::with_threads(t);
            sc.cost = CostModel::ideal();
            simulate(&p, &cfg, &sc).unwrap()
        };
        let s1 = sim(1);
        if !s1.complete() || s1.makespan <= 3_000 {
            continue;
        }
        let sp8 = sim(8).speedup_vs(&s1);
        let sp16 = sim(16).speedup_vs(&s1);
        let ok = (1.8..=7.0).contains(&sp8) && (sp16 - sp8).abs() < 1.0;
        println!(
            "i={i:4} n={:3} t1={:8} sp8={sp8:5.2} sp16={sp16:5.2} {}",
            d.num_taxa(),
            s1.makespan,
            if ok { "OK" } else { "" }
        );
    }
}

fn scan_interaction(start: u64, budget: u64) {
    println!("-- interaction (want: serial truncated by budget, ASP2 > 2.2)");
    let params = InteractionParams::zoo();
    let cfg = GentriusConfig {
        stopping: interaction_stopping(&params),
        ..GentriusConfig::default()
    };
    for i in start..start + budget {
        let d = interaction_dataset(&params, ZOO_SEED, i);
        let Ok(p) = d.problem() else { continue };
        let s1 = simulate(&p, &cfg, &SimConfig::with_threads(1)).unwrap();
        if s1.complete() {
            println!(
                "i={i:4} n={:3} complete (st={} states={})",
                d.num_taxa(),
                s1.stats.stand_trees,
                s1.stats.intermediate_states
            );
            continue; // must hit the state budget serially
        }
        let s2 = simulate(&p, &cfg, &SimConfig::with_threads(2)).unwrap();
        let asp = s2.adapted_speedup_vs(&s1);
        println!(
            "i={i:4} n={:3} st1={:6} st2={:6} asp2={asp:6.2} {}",
            d.num_taxa(),
            s1.stats.stand_trees,
            s2.stats.stand_trees,
            if asp > 2.2 { "OK" } else { "" }
        );
    }
}

fn scan_grove(start: u64, budget: u64) {
    println!("-- grove (want: valid PAM, complete enumeration, 10..40000 stand trees, missing>0)");
    let params = GroveParams::zoo();
    let cfg = GentriusConfig {
        stopping: gentrius_core::StoppingRules::counts(200_000, 400_000),
        ..GentriusConfig::default()
    };
    for i in start..start + budget {
        let d = grove_dataset(&params, ZOO_SEED, i);
        if d.pam
            .as_ref()
            .is_none_or(|p| p.validate_for_inference().is_err())
        {
            continue;
        }
        let Ok(p) = d.problem() else { continue };
        let Ok(r) = run_serial(&p, &cfg, &mut CountOnly) else {
            continue;
        };
        let ok = r.complete()
            && (10..=40_000).contains(&r.stats.stand_trees)
            && d.missing_fraction() > 0.05;
        println!(
            "i={i:4} n={:3} m={} miss={:4.2} trees={:7} states={:8} dead={:6} {} {}",
            d.num_taxa(),
            d.num_loci(),
            d.missing_fraction(),
            r.stats.stand_trees,
            r.stats.intermediate_states,
            r.stats.dead_ends,
            if r.complete() {
                "complete"
            } else {
                "truncated"
            },
            if ok { "OK" } else { "" }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let family = args.get(1).cloned().unwrap_or_else(|| "all".into());
    let start: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let budget: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(24);
    match family.as_str() {
        "unbalanced" => scan_unbalanced(start, budget),
        "interaction" => scan_interaction(start, budget),
        "grove" => scan_grove(start, budget),
        _ => {
            scan_unbalanced(start, budget);
            scan_interaction(start, budget);
            scan_grove(start, budget);
        }
    }
    println!("scan done");
}
