//! Regenerates the committed seed entries of `tests/corpus/` — the three
//! adversarial-zoo showcases in the dataset v1 text format. The corpus
//! otherwise only grows: `datagen fuzz` appends minimized failures, and
//! `tests/fuzz_corpus.rs` replays every entry forever.
//!
//! ```text
//! cargo run --release -p gentrius-datagen --bin corpus_seed -- [DIR]
//! ```

use gentrius_core::StoppingRules;
use gentrius_datagen::adversarial::{
    grove_showcase, interaction_dataset, unbalanced_showcase, InteractionParams, ZOO_SEED,
};
use gentrius_datagen::fuzz::{conformance_check, Conformance};
use gentrius_datagen::Dataset;
use std::path::PathBuf;

/// First fuzz-sized interaction instance whose full enumeration fits the
/// replay budget (the full-size `interaction_showcase` is a blow-up by
/// design, so it cannot be exact-identity-checked and lives in the bench
/// classes instead).
fn small_interaction(stopping: &StoppingRules) -> Dataset {
    let ip = InteractionParams {
        taxa: (10, 14),
        loci: (4, 6),
        ..InteractionParams::zoo()
    };
    for i in 0.. {
        let d = interaction_dataset(&ip, ZOO_SEED, i);
        if matches!(conformance_check(&d, stopping, &[2, 4]), Conformance::Ok) {
            return d;
        }
    }
    unreachable!("some index conforms")
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tests/corpus"));
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    // Same budget/thread matrix as `FuzzConfig::new` and the replay test.
    let stopping = StoppingRules::counts(40_000, 150_000);
    let seeds = [
        unbalanced_showcase(),
        small_interaction(&stopping),
        grove_showcase(),
    ];
    for d in seeds {
        match conformance_check(&d, &stopping, &[2, 4]) {
            Conformance::Ok => {}
            other => panic!("{}: seed entry must conform, got {other:?}", d.name),
        }
        let path = dir.join(format!("{}.dataset", d.name));
        d.save(&path).expect("write corpus entry");
        println!("wrote {}", path.display());
    }
}
