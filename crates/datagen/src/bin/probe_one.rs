//! Maintenance tool: probes one scan candidate at several thread counts
//! and stopping-rule settings to qualify it as a scenario instance.

use gentrius_core::{GentriusConfig, StoppingRules};
use gentrius_datagen::scenario::SCENARIO_SEED;
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_sim::{simulate, SimConfig};
use phylo::generate::ShapeModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let index: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(17);
    let max_trees: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(u64::MAX);
    let max_states: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let params = SimulatedParams {
        taxa: (22, 36),
        loci: (5, 9),
        missing: (0.45, 0.65),
        pattern: MissingPattern::Clustered,
        shape: ShapeModel::Uniform,
    };
    let d = simulated_dataset(&params, SCENARIO_SEED, index);
    println!(
        "{}: {} taxa, {} loci, {:.1}% missing",
        d.name,
        d.num_taxa(),
        d.num_loci(),
        100.0 * d.missing_fraction()
    );
    let p = d.problem().unwrap();
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(max_trees, max_states),
        ..GentriusConfig::default()
    };
    let mut serial = None;
    for t in [1usize, 2, 4, 8, 12, 16] {
        let r = simulate(&p, &cfg, &SimConfig::with_threads(t)).unwrap();
        let (sp, asp) = match &serial {
            None => (1.0, 1.0),
            Some(s) => (r.speedup_vs(s), r.adapted_speedup_vs(s)),
        };
        println!(
            "t={t:2} ticks={:9} trees={:9} states={:9} dead={:8} stop={:?} sp={sp:7.2} asp={asp:7.2}",
            r.makespan, r.stats.stand_trees, r.stats.intermediate_states, r.stats.dead_ends,
            r.stop.map(|c| format!("{c:?}")).unwrap_or_else(|| "-".into())
        );
        if serial.is_none() {
            serial = Some(r);
        }
    }
}
