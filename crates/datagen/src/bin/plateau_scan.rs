//! Maintenance tool: searches for Fig. 5a "plateau" instances — serial
//! cost large enough to matter, but speedup saturating far below the
//! thread count because the workflow tree is a chain.

use gentrius_core::{GentriusConfig, StoppingRules};
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_sim::{simulate, SimConfig};
use phylo::generate::ShapeModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let start: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let lo: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let hi: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0.40);
    let params = SimulatedParams {
        taxa: (16, 30),
        loci: (5, 9),
        missing: (lo, hi),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(500_000, 500_000),
        ..GentriusConfig::default()
    };
    for i in start..start + budget {
        let d = simulated_dataset(&params, 20230512, i);
        let Ok(p) = d.problem() else { continue };
        let s1 = simulate(&p, &cfg, &SimConfig::with_threads(1)).unwrap();
        if !s1.complete() || s1.makespan < 2000 {
            continue;
        }
        let s8 = simulate(&p, &cfg, &SimConfig::with_threads(8)).unwrap();
        let sp8 = s1.makespan as f64 / s8.makespan.max(1) as f64;
        if sp8 < 3.0 {
            let s16 = simulate(&p, &cfg, &SimConfig::with_threads(16)).unwrap();
            let sp16 = s1.makespan as f64 / s16.makespan.max(1) as f64;
            println!(
                "i={i:4} n={:3} m={} t1={:8} trees={:8} sp8={sp8:5.2} sp16={sp16:5.2}",
                d.num_taxa(),
                d.num_loci(),
                s1.makespan,
                s1.stats.stand_trees
            );
        }
    }
    println!("scan done");
}
