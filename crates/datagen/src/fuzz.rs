//! Seeded constraint-set mutation fuzzer (`datagen fuzz`).
//!
//! Takes zoo instances as bases, applies small random mutations to their
//! constraint trees (drop / duplicate a constraint, drop / add / regraft
//! a leaf) and drives every viable mutant through the 3-mode ×
//! thread-count conformance matrix: serial `Recompute` is the oracle;
//! `Incremental` and `EdgeIndexed` serially plus every mode at 2 and 4
//! threads must reproduce its counters and canonical stand set exactly,
//! and every counter snapshot must satisfy the dead-end invariant.
//!
//! Every mutant is a pure function of `(seed, iteration)`: a failure
//! report names the iteration, and rerunning with the same seed
//! regenerates the same mutant. Failing instances are greedily minimized
//! (dropping constraints, then taxa) and written to a corpus directory in
//! the standard dataset text format, where `tests/fuzz_corpus.rs` replays
//! them forever.

use crate::adversarial::{
    grove_dataset, interaction_dataset, unbalanced_dataset, GroveParams, InteractionParams,
    UnbalancedParams,
};
use crate::dataset::Dataset;
use crate::simulated::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_core::{
    canonical_stand_set, run_serial, CollectNewick, GentriusConfig, MappingMode, StoppingRules,
};
use gentrius_parallel::{run_parallel_with_sinks, ParallelConfig};
use phylo::generate::ShapeModel;
use phylo::ops::restrict;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::Path;
use std::time::{Duration, Instant};

/// Cap on collected stand trees per conformance cell.
const COLLECT_CAP: usize = 40_000;

/// Fuzzer configuration. Everything that affects which mutants are
/// generated is derived from `seed` alone; `time_box` / `max_iterations`
/// only decide how far down the deterministic stream the run gets.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed: mutant `i` is a pure function of `(seed, i)`.
    pub seed: u64,
    /// Stop after this many iterations (`None` = unbounded).
    pub max_iterations: Option<u64>,
    /// Stop after this wall-clock budget (`None` = unbounded). The box
    /// only truncates the stream — it never changes what iteration `i`
    /// does.
    pub time_box: Option<Duration>,
    /// Parallel thread counts of the conformance matrix.
    pub threads: Vec<usize>,
    /// Stopping rules of every conformance cell (bounded so pathological
    /// mutants cannot hang the fuzzer).
    pub stopping: StoppingRules,
}

impl FuzzConfig {
    /// The defaults used by `datagen fuzz` and the nightly smoke job.
    pub fn new(seed: u64) -> Self {
        FuzzConfig {
            seed,
            max_iterations: None,
            time_box: None,
            threads: vec![2, 4],
            stopping: StoppingRules::counts(40_000, 150_000),
        }
    }
}

/// One conformance divergence, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Iteration index down the seed's mutant stream.
    pub iteration: u64,
    /// The minimized failing dataset.
    pub dataset: Dataset,
    /// The first divergence the matrix hit.
    pub reason: String,
}

/// Aggregate outcome of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed (mutants drawn from the stream).
    pub iterations: u64,
    /// Mutants that ran the full conformance matrix.
    pub checked: u64,
    /// Mutants skipped (invalid problem or incomplete oracle enumeration).
    pub skipped: u64,
    /// Divergences found, minimized.
    pub failures: Vec<FuzzFailure>,
}

/// Draws the base dataset of iteration `i`: a rotation over the zoo
/// families plus the simulated clustered regime, all at fuzz-friendly
/// sizes.
pub fn base_dataset(seed: u64, i: u64) -> Dataset {
    match i % 4 {
        0 => {
            let sp = SimulatedParams {
                taxa: (8, 13),
                loci: (3, 5),
                missing: (0.3, 0.55),
                pattern: MissingPattern::Clustered,
                shape: ShapeModel::Uniform,
            };
            simulated_dataset(&sp, seed, i)
        }
        1 => grove_dataset(&GroveParams::zoo(), seed, i),
        2 => {
            let ip = InteractionParams {
                taxa: (10, 14),
                loci: (4, 6),
                ..InteractionParams::zoo()
            };
            interaction_dataset(&ip, seed, i)
        }
        _ => {
            let up = UnbalancedParams {
                spine: (10, 14),
                anchor: (3, 4),
                pinned: (1, 2),
                tail_pairs: (1, 1),
            };
            unbalanced_dataset(&up, seed, i)
        }
    }
}

/// Applies 1–3 random constraint-set mutations. Returns `None` when the
/// drawn mutations were all inapplicable (e.g. every constraint too small
/// to shrink). Mutants keep the taxon universe and stay parseable; they
/// are *not* guaranteed to be valid stand problems — the caller skips
/// those.
pub fn mutate(base: &Dataset, rng: &mut ChaCha8Rng) -> Option<Dataset> {
    let mut d = base.clone();
    // The PAM and species tree no longer describe the mutated constraints.
    d.pam = None;
    d.species_tree = None;
    d.name = format!("{}-mut", d.name);
    let n_mut = rng.gen_range(1..=3usize);
    let mut applied = 0usize;
    for _ in 0..n_mut {
        if d.constraints.is_empty() {
            break;
        }
        let which = rng.gen_range(0..5u32);
        let ci = rng.gen_range(0..d.constraints.len());
        match which {
            // Drop a constraint.
            0 if d.constraints.len() > 2 => {
                d.constraints.remove(ci);
                applied += 1;
            }
            // Duplicate a constraint (stresses identical-projection paths).
            1 => {
                let t = d.constraints[ci].clone();
                d.constraints.push(t);
                applied += 1;
            }
            // Drop a random leaf.
            2 if d.constraints[ci].leaf_count() > 4 => {
                let t = &d.constraints[ci];
                let leaves: Vec<_> = t.leaves().map(|(_, tx)| tx).collect();
                let victim = leaves[rng.gen_range(0..leaves.len())];
                let mut keep = t.taxa().clone();
                keep.remove(victim.index());
                d.constraints[ci] = restrict(t, &keep);
                applied += 1;
            }
            // Regraft a random leaf onto a random edge.
            3 if d.constraints[ci].leaf_count() > 4 => {
                let t = &d.constraints[ci];
                let leaves: Vec<_> = t.leaves().map(|(_, tx)| tx).collect();
                let victim = leaves[rng.gen_range(0..leaves.len())];
                let mut keep = t.taxa().clone();
                keep.remove(victim.index());
                let mut pruned = restrict(t, &keep);
                let edges: Vec<_> = pruned.edges().collect();
                let e = edges[rng.gen_range(0..edges.len())];
                pruned.insert_leaf_on_edge(victim, e);
                if pruned.is_binary_unrooted() {
                    d.constraints[ci] = pruned;
                    applied += 1;
                }
            }
            // Add a leaf the constraint is missing.
            4 => {
                let t = &d.constraints[ci];
                let universe = t.universe();
                let absent: Vec<u32> = (0..universe as u32)
                    .filter(|&x| !t.taxa().contains(x as usize))
                    .collect();
                if !absent.is_empty() {
                    let tx = phylo::taxa::TaxonId(absent[rng.gen_range(0..absent.len())]);
                    let mut grown = t.clone();
                    let edges: Vec<_> = grown.edges().collect();
                    let e = edges[rng.gen_range(0..edges.len())];
                    grown.insert_leaf_on_edge(tx, e);
                    d.constraints[ci] = grown;
                    applied += 1;
                }
            }
            _ => {}
        }
    }
    if applied == 0 {
        None
    } else {
        Some(d)
    }
}

/// Outcome of one conformance-matrix run.
#[derive(Clone, Debug)]
pub enum Conformance {
    /// Every cell matched the oracle.
    Ok,
    /// The instance could not be checked (invalid problem, or the oracle
    /// enumeration hit the fuzz budget — exact identity needs a complete
    /// run).
    Skip(String),
    /// A cell diverged from the oracle.
    Diverged(String),
}

/// Runs the 3-mode × thread-count conformance matrix on one dataset.
pub fn conformance_check(d: &Dataset, stopping: &StoppingRules, threads: &[usize]) -> Conformance {
    let p = match d.problem() {
        Ok(p) => p,
        Err(e) => return Conformance::Skip(format!("invalid problem: {e:?}")),
    };
    let oracle_cfg = GentriusConfig {
        mapping: MappingMode::Recompute,
        stopping: stopping.clone(),
        ..GentriusConfig::default()
    };
    let mut oracle_sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
    let oracle = match run_serial(&p, &oracle_cfg, &mut oracle_sink) {
        Ok(r) => r,
        Err(e) => return Conformance::Skip(format!("oracle failed: {e:?}")),
    };
    if !oracle.complete() {
        return Conformance::Skip("oracle enumeration hit the fuzz budget".to_string());
    }
    if oracle.stats.dead_ends > oracle.stats.intermediate_states {
        return Conformance::Diverged(format!(
            "oracle dead-end invariant: {} > {}",
            oracle.stats.dead_ends, oracle.stats.intermediate_states
        ));
    }
    let oracle_set = canonical_stand_set([oracle_sink.out]);
    for mode in [
        MappingMode::Recompute,
        MappingMode::Incremental,
        MappingMode::EdgeIndexed,
    ] {
        let config = GentriusConfig {
            mapping: mode,
            stopping: stopping.clone(),
            ..GentriusConfig::default()
        };
        if mode != MappingMode::Recompute {
            let mut sink = CollectNewick::with_cap(&d.taxa, COLLECT_CAP);
            let serial = match run_serial(&p, &config, &mut sink) {
                Ok(r) => r,
                Err(e) => return Conformance::Diverged(format!("{mode} serial errored: {e:?}")),
            };
            if serial.stats != oracle.stats {
                return Conformance::Diverged(format!(
                    "{mode} serial counters: {:?} vs oracle {:?}",
                    serial.stats, oracle.stats
                ));
            }
            if canonical_stand_set([sink.out]) != oracle_set {
                return Conformance::Diverged(format!("{mode} serial stand set diverged"));
            }
        }
        for &t in threads {
            let (par, sinks) =
                match run_parallel_with_sinks(&p, &config, &ParallelConfig::with_threads(t), |_| {
                    CollectNewick::with_cap(&d.taxa, COLLECT_CAP)
                }) {
                    Ok(r) => r,
                    Err(e) => {
                        return Conformance::Diverged(format!("{mode} threads={t} errored: {e:?}"))
                    }
                };
            if !par.complete() {
                return Conformance::Diverged(format!("{mode} threads={t}: spurious stop"));
            }
            if par.stats != oracle.stats {
                return Conformance::Diverged(format!(
                    "{mode} threads={t} counters: {:?} vs oracle {:?}",
                    par.stats, oracle.stats
                ));
            }
            for (ctx, stats) in std::iter::once(("totals", &par.stats))
                .chain(std::iter::once(("prefix", &par.prefix)))
                .chain(par.workers.iter().map(|w| ("worker", &w.stats)))
            {
                if stats.dead_ends > stats.intermediate_states {
                    return Conformance::Diverged(format!(
                        "{mode} threads={t} {ctx}: dead-end invariant violated"
                    ));
                }
            }
            if canonical_stand_set(sinks.into_iter().map(|s| s.out)) != oracle_set {
                return Conformance::Diverged(format!("{mode} threads={t}: stand set diverged"));
            }
        }
    }
    Conformance::Ok
}

/// Greedily minimizes a failing dataset: repeatedly tries dropping one
/// constraint, then restricting away one taxon, keeping any shrink that
/// still diverges. Deterministic (first shrink that reproduces wins).
pub fn minimize(d: &Dataset, stopping: &StoppingRules, threads: &[usize]) -> Dataset {
    let diverges = |c: &Dataset| {
        matches!(
            conformance_check(c, stopping, threads),
            Conformance::Diverged(_)
        )
    };
    let mut cur = d.clone();
    loop {
        let mut shrunk = false;
        // Pass 1: drop whole constraints.
        let mut i = 0;
        while i < cur.constraints.len() {
            if cur.constraints.len() <= 2 {
                break;
            }
            let mut cand = cur.clone();
            cand.constraints.remove(i);
            if diverges(&cand) {
                cur = cand;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        // Pass 2: restrict a taxon out of every constraint containing it.
        let universe = cur.taxa.len();
        for tx in 0..universe {
            let mut cand = cur.clone();
            let mut touched = false;
            for c in &mut cand.constraints {
                if c.taxa().contains(tx) && c.leaf_count() > 4 {
                    let mut keep = c.taxa().clone();
                    keep.remove(tx);
                    *c = restrict(c, &keep);
                    touched = true;
                }
            }
            if touched && diverges(&cand) {
                cur = cand;
                shrunk = true;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Runs the fuzzer. If `corpus_dir` is given, every minimized failure is
/// written there as `fuzz-<seed>-<iteration>.dataset` in the standard
/// dataset text format.
pub fn run_fuzz(config: &FuzzConfig, corpus_dir: Option<&Path>) -> std::io::Result<FuzzReport> {
    let start = Instant::now();
    let mut report = FuzzReport::default();
    let mut i = 0u64;
    loop {
        if let Some(max) = config.max_iterations {
            if i >= max {
                break;
            }
        }
        if let Some(box_) = config.time_box {
            if start.elapsed() >= box_ {
                break;
            }
        }
        // Each iteration derives its own RNG stream from (seed, i): the
        // time box truncates the stream but never perturbs it.
        let mut rng = ChaCha8Rng::seed_from_u64(
            config.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        );
        let base = base_dataset(config.seed, i);
        report.iterations += 1;
        let Some(mutant) = mutate(&base, &mut rng) else {
            report.skipped += 1;
            i += 1;
            continue;
        };
        match conformance_check(&mutant, &config.stopping, &config.threads) {
            Conformance::Ok => report.checked += 1,
            Conformance::Skip(_) => report.skipped += 1,
            Conformance::Diverged(reason) => {
                report.checked += 1;
                let mut min = minimize(&mutant, &config.stopping, &config.threads);
                min.name = format!("fuzz-{}-{}", config.seed, i);
                if let Some(dir) = corpus_dir {
                    std::fs::create_dir_all(dir)?;
                    min.save(&dir.join(format!("{}.dataset", min.name)))?;
                }
                report.failures.push(FuzzFailure {
                    iteration: i,
                    dataset: min,
                    reason,
                });
            }
        }
        i += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_are_deterministic_per_iteration() {
        for i in 0..12u64 {
            let gen = |_| {
                let mut rng = ChaCha8Rng::seed_from_u64(77 ^ i.wrapping_mul(3));
                mutate(&base_dataset(77, i), &mut rng).map(|d| d.to_text())
            };
            assert_eq!(gen(()), gen(()));
        }
    }

    #[test]
    fn short_fuzz_run_is_clean_and_deterministic() {
        let mut cfg = FuzzConfig::new(2026);
        cfg.max_iterations = Some(6);
        cfg.threads = vec![2];
        let a = run_fuzz(&cfg, None).expect("fuzz run");
        let b = run_fuzz(&cfg, None).expect("fuzz run");
        assert_eq!(a.iterations, 6);
        assert_eq!(a.checked, b.checked);
        assert_eq!(a.skipped, b.skipped);
        assert!(a.checked >= 2, "too few checked mutants: {}", a.checked);
        assert!(
            a.failures.is_empty(),
            "conformance divergence at HEAD: {:?}",
            a.failures.iter().map(|f| &f.reason).collect::<Vec<_>>()
        );
    }

    #[test]
    fn minimizer_preserves_divergence_verdicts() {
        // No real divergence exists at HEAD, so pin the minimizer shape
        // instead: a clean instance must come back unshrunk (no shrink can
        // "introduce" a failure verdict on the Ok path).
        let d = base_dataset(5, 0);
        let stopping = StoppingRules::counts(40_000, 150_000);
        let min = minimize(&d, &stopping, &[2]);
        assert_eq!(min.to_text(), d.to_text());
    }
}
