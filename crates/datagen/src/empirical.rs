//! The "empirical-like" generator (paper §IV-C substitute).
//!
//! The paper draws 3,097 partitioned datasets from the RAxML Grove
//! database. That database is not available offline, so this generator
//! produces seeded instances whose *distributions* follow what the paper
//! reports about RAxML Grove (§I: 68% of partitioned datasets have missing
//! data, 19% exceed 30% missing) and what is generally true of empirical
//! multi-gene matrices: log-ish-spread taxon counts, moderate locus counts,
//! blocky clade-correlated coverage rather than uniform noise, and
//! Yule-like (unbalanced-ish but not uniform-random) tree shapes.
//! DESIGN.md documents this substitution (item 2).

use crate::dataset::Dataset;
use crate::simulated::{sample_pam, MissingPattern};
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::taxa::TaxonSet;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the empirical-like generator.
#[derive(Clone, Debug)]
pub struct EmpiricalParams {
    /// Log-uniform taxon-count range.
    pub taxa: (usize, usize),
    /// Locus-count range.
    pub loci: (usize, usize),
    /// Fraction of datasets with any missing data (RAxML Grove: 0.68).
    pub frac_with_missing: f64,
    /// Fraction of datasets with >30% missing (RAxML Grove: 0.19).
    pub frac_heavy_missing: f64,
}

impl EmpiricalParams {
    /// RAxML-Grove-shaped defaults at paper scale.
    pub fn paper() -> Self {
        EmpiricalParams {
            taxa: (40, 400),
            loci: (2, 40),
            frac_with_missing: 0.68,
            frac_heavy_missing: 0.19,
        }
    }

    /// Scaled-down defaults for laptop-sized sweeps.
    pub fn scaled() -> Self {
        EmpiricalParams {
            taxa: (10, 30),
            loci: (3, 8),
            frac_with_missing: 0.68,
            frac_heavy_missing: 0.19,
        }
    }
}

/// Generates dataset `emp-data-<index>` deterministically.
pub fn empirical_dataset(params: &EmpiricalParams, seed: u64, index: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    // Log-uniform taxon count: empirical collections are skewed small.
    let (lo, hi) = params.taxa;
    let n = (lo as f64 * ((hi as f64 / lo as f64).powf(rng.gen::<f64>()))).round() as usize;
    let n = n.clamp(lo, hi).max(6);
    let m = rng.gen_range(params.loci.0..=params.loci.1).max(2);

    // Missingness mixture per the Grove fractions.
    let u: f64 = rng.gen();
    let missing = if u >= params.frac_with_missing {
        0.0
    } else if u < params.frac_heavy_missing {
        rng.gen_range(0.3..0.6)
    } else {
        rng.gen_range(0.02..0.3)
    };

    let taxa = TaxonSet::with_synthetic(n);
    let tree = random_tree_on_n(n, ShapeModel::Yule, &mut rng);
    let pattern = if missing > 0.0 {
        MissingPattern::Clustered
    } else {
        MissingPattern::Uniform // irrelevant at 0% missing
    };
    let pam = sample_pam(n, m, missing, pattern, &mut rng);
    let constraints = pam.induced_subtrees(&tree);
    Dataset {
        name: format!("emp-data-{index}"),
        taxa,
        species_tree: Some(tree),
        pam: Some(pam),
        constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_and_deterministic() {
        let params = EmpiricalParams::scaled();
        for i in 0..20 {
            let d = empirical_dataset(&params, 3, i);
            d.pam.as_ref().unwrap().validate_for_inference().unwrap();
            d.problem().unwrap();
        }
        assert_eq!(
            empirical_dataset(&params, 3, 5).to_text(),
            empirical_dataset(&params, 3, 5).to_text()
        );
    }

    #[test]
    fn missingness_mixture_matches_grove_fractions() {
        let params = EmpiricalParams::scaled();
        let mut with_missing = 0usize;
        let mut heavy = 0usize;
        let total = 300;
        for i in 0..total {
            let d = empirical_dataset(&params, 11, i);
            let f = d.missing_fraction();
            if f > 0.01 {
                with_missing += 1;
            }
            if f > 0.3 {
                heavy += 1;
            }
        }
        let fw = with_missing as f64 / total as f64;
        let fh = heavy as f64 / total as f64;
        // Paper: 68% / 19%. Repairs blur the edges; demand the regime.
        assert!((0.5..=0.85).contains(&fw), "with-missing fraction {fw}");
        assert!((0.08..=0.32).contains(&fh), "heavy-missing fraction {fh}");
    }

    #[test]
    fn taxon_counts_skew_small() {
        let params = EmpiricalParams::scaled();
        let sizes: Vec<usize> = (0..200)
            .map(|i| empirical_dataset(&params, 4, i).num_taxa())
            .collect();
        let below_mid = sizes.iter().filter(|&&n| n < 20).count();
        assert!(
            below_mid > 100,
            "log-uniform should skew small: {below_mid}/200"
        );
    }
}
