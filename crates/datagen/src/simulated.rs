//! The simulated-data generator (paper §IV-B).
//!
//! The paper's simulated suite (from the original Gentrius manuscript) has
//! 4,997 instances with 50–300 taxa, 5–30 loci and 30–50% missing data in
//! several missingness patterns. The generator below reproduces that
//! pipeline — sample a species tree, sample a PAM with a given pattern and
//! missingness, induce the per-locus constraint trees — with the ranges as
//! parameters so the benchmark harness can run a proportionally scaled
//! sweep on small hardware (documented in DESIGN.md substitution 3).

use crate::dataset::Dataset;
use phylo::bitset::BitSet;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::pam::Pam;
use phylo::taxa::{TaxonId, TaxonSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How the absent entries of the PAM are distributed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissingPattern {
    /// Every `(taxon, locus)` entry missing independently with probability
    /// `missing`.
    Uniform,
    /// Each locus covers a contiguous window of the taxon order plus
    /// uniform noise — mimics clade-specific loci (blocky empirical PAMs).
    Clustered,
    /// A comprehensive core of taxa present everywhere, the rest sparse —
    /// the "at least one comprehensive taxon" regime older tools require.
    ComprehensiveCore,
    /// Heterogeneous per-taxon completeness: each taxon draws its own
    /// missing probability from `[0, 2·missing]` (clamped to ≤ 0.95), so
    /// a few rogue taxa are nearly data-free while others are complete —
    /// the profile of real supermatrices assembled from GenBank scraps.
    RogueTaxa,
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct SimulatedParams {
    /// Inclusive range of taxon counts.
    pub taxa: (usize, usize),
    /// Inclusive range of locus counts.
    pub loci: (usize, usize),
    /// Range of the target missing-data fraction.
    pub missing: (f64, f64),
    /// Missingness pattern.
    pub pattern: MissingPattern,
    /// Species-tree shape model.
    pub shape: ShapeModel,
}

impl SimulatedParams {
    /// The paper's ranges (§IV-B): 50–300 taxa, 5–30 loci, 30–50% missing.
    pub fn paper() -> Self {
        SimulatedParams {
            taxa: (50, 300),
            loci: (5, 30),
            missing: (0.3, 0.5),
            pattern: MissingPattern::Uniform,
            shape: ShapeModel::Uniform,
        }
    }

    /// A proportionally scaled-down sweep that keeps the same missingness
    /// regime but finishes in seconds per instance on a laptop.
    pub fn scaled() -> Self {
        SimulatedParams {
            taxa: (12, 28),
            loci: (4, 8),
            missing: (0.3, 0.5),
            pattern: MissingPattern::Uniform,
            shape: ShapeModel::Uniform,
        }
    }
}

/// Generates dataset `sim-data-<index>` deterministically from `seed` and
/// `index` (the pair is the dataset identity, so sweeps are reproducible
/// and individual instances can be regenerated in isolation).
pub fn simulated_dataset(params: &SimulatedParams, seed: u64, index: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = rng.gen_range(params.taxa.0..=params.taxa.1);
    let m = rng.gen_range(params.loci.0..=params.loci.1);
    let missing = rng.gen_range(params.missing.0..=params.missing.1);

    let taxa = TaxonSet::with_synthetic(n);
    let tree = random_tree_on_n(n, params.shape, &mut rng);
    let pam = sample_pam(n, m, missing, params.pattern, &mut rng);
    let constraints = pam.induced_subtrees(&tree);
    Dataset {
        name: format!("sim-data-{index}"),
        taxa,
        species_tree: Some(tree),
        pam: Some(pam),
        constraints,
    }
}

/// Samples a PAM with the requested pattern, then repairs it so that every
/// locus keeps at least four taxa and every taxon is covered by at least
/// one locus (the paper's instances are usable by construction; see
/// `Pam::validate_for_inference`).
pub fn sample_pam(
    n: usize,
    m: usize,
    missing: f64,
    pattern: MissingPattern,
    rng: &mut ChaCha8Rng,
) -> Pam {
    let mut pam = Pam::new(n, m);
    match pattern {
        MissingPattern::Uniform => {
            for l in 0..m {
                for t in 0..n {
                    if rng.gen::<f64>() >= missing {
                        pam.set(TaxonId(t as u32), l, true);
                    }
                }
            }
        }
        MissingPattern::Clustered => {
            for l in 0..m {
                let cover = ((1.0 - missing) * n as f64).round().max(4.0) as usize;
                let start = rng.gen_range(0..n);
                for k in 0..cover.min(n) {
                    pam.set(TaxonId(((start + k) % n) as u32), l, true);
                }
                // Noise: flip ~10% of entries.
                for _ in 0..n / 10 {
                    let t = TaxonId(rng.gen_range(0..n as u32));
                    pam.set(t, l, rng.gen::<bool>());
                }
            }
        }
        MissingPattern::ComprehensiveCore => {
            let core = (n / 5).max(2);
            for l in 0..m {
                for t in 0..core {
                    pam.set(TaxonId(t as u32), l, true);
                }
                for t in core..n {
                    if rng.gen::<f64>() >= missing {
                        pam.set(TaxonId(t as u32), l, true);
                    }
                }
            }
        }
        MissingPattern::RogueTaxa => {
            let per_taxon: Vec<f64> = (0..n)
                .map(|_| (rng.gen::<f64>() * 2.0 * missing).min(0.95))
                .collect();
            for l in 0..m {
                for (t, &p) in per_taxon.iter().enumerate() {
                    if rng.gen::<f64>() >= p {
                        pam.set(TaxonId(t as u32), l, true);
                    }
                }
            }
        }
    }
    repair_pam(&mut pam, rng);
    pam
}

/// Ensures every locus has ≥4 taxa and every taxon ≥1 locus.
fn repair_pam(pam: &mut Pam, rng: &mut ChaCha8Rng) {
    let n = pam.universe();
    let m = pam.loci();
    for l in 0..m {
        while pam.column(l).count() < 4 {
            let t = TaxonId(rng.gen_range(0..n as u32));
            pam.set(t, l, true);
        }
    }
    let covered: BitSet = pam.covered_taxa();
    for t in 0..n {
        if !covered.contains(t) {
            let l = rng.gen_range(0..m);
            pam.set(TaxonId(t as u32), l, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_datasets_are_valid() {
        let params = SimulatedParams::scaled();
        for i in 0..20 {
            let d = simulated_dataset(&params, 42, i);
            assert_eq!(d.name, format!("sim-data-{i}"));
            let pam = d.pam.as_ref().unwrap();
            pam.validate_for_inference().unwrap();
            let p = d.problem().unwrap();
            assert_eq!(p.num_taxa(), d.num_taxa());
            for c in &d.constraints {
                assert!(c.is_binary_unrooted());
                assert!(c.leaf_count() >= 4);
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_index() {
        let params = SimulatedParams::scaled();
        let a = simulated_dataset(&params, 7, 3);
        let b = simulated_dataset(&params, 7, 3);
        assert_eq!(a.to_text(), b.to_text());
        let c = simulated_dataset(&params, 8, 3);
        assert_ne!(a.to_text(), c.to_text());
    }

    #[test]
    fn missing_fraction_in_regime() {
        let params = SimulatedParams::scaled();
        let mut in_range = 0;
        for i in 0..20 {
            let d = simulated_dataset(&params, 1, i);
            let f = d.missing_fraction();
            // Repairs can pull the fraction slightly out of the target
            // band; most instances must land near it.
            if (0.2..=0.6).contains(&f) {
                in_range += 1;
            }
        }
        assert!(in_range >= 15, "only {in_range}/20 in missingness regime");
    }

    #[test]
    fn patterns_differ_structurally() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let uni = sample_pam(40, 12, 0.6, MissingPattern::Uniform, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let core = sample_pam(40, 12, 0.6, MissingPattern::ComprehensiveCore, &mut rng);
        assert!(core.comprehensive_taxa().count() >= 1);
        // Uniform at 60% missing over 12 loci: P(comprehensive) = 0.4^12
        // per taxon, ~1e-5 over 40 taxa — deterministic under this seed.
        assert_eq!(uni.comprehensive_taxa().count(), 0);
    }

    #[test]
    fn rogue_taxa_pattern_has_heterogeneous_coverage() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let pam = sample_pam(60, 10, 0.35, MissingPattern::RogueTaxa, &mut rng);
        pam.validate_for_inference().unwrap();
        let cov = pam.taxon_coverage();
        let min = *cov.iter().min().unwrap();
        let max = *cov.iter().max().unwrap();
        // Heterogeneity: some taxa nearly complete, some nearly empty.
        assert!(max >= 9, "max coverage {max}");
        assert!(min <= 3, "min coverage {min}");
        // Uniform at the same target is much flatter.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let flat = sample_pam(60, 10, 0.35, MissingPattern::Uniform, &mut rng);
        let fcov = flat.taxon_coverage();
        let spread = max - min;
        let fspread = fcov.iter().max().unwrap() - fcov.iter().min().unwrap();
        assert!(spread > fspread, "rogue {spread} vs uniform {fspread}");
    }

    #[test]
    fn species_tree_is_on_its_own_stand() {
        use gentrius_core::{GentriusConfig, StoppingRules};
        let params = SimulatedParams {
            taxa: (8, 12),
            loci: (3, 4),
            missing: (0.3, 0.4),
            pattern: MissingPattern::Uniform,
            shape: ShapeModel::Uniform,
        };
        for i in 0..5 {
            let d = simulated_dataset(&params, 99, i);
            let p = d.problem().unwrap();
            let cfg = GentriusConfig {
                stopping: StoppingRules::counts(200_000, 2_000_000),
                ..GentriusConfig::default()
            };
            let species = d.species_tree.as_ref().unwrap();
            let mut found = false;
            let mut sink = |t: &phylo::Tree| {
                if phylo::split::topo_eq(t, species) {
                    found = true;
                }
            };
            let r = gentrius_core::run_serial(&p, &cfg, &mut sink).unwrap();
            if r.complete() {
                assert!(
                    found,
                    "species tree missing from fully enumerated stand {i}"
                );
            }
        }
    }
}
