//! A generated dataset: taxa, optional source species tree, PAM and the
//! induced constraint trees, plus simple text-file persistence.

use gentrius_core::{ProblemError, StandProblem};
use phylo::newick::{parse_forest, parse_newick, to_newick};
use phylo::pam::Pam;
use phylo::taxa::TaxonSet;
use phylo::tree::Tree;
use std::fmt::Write as _;
use std::path::Path;

/// One stand-enumeration dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Identifier (e.g. `sim-data-17`, mirroring the paper's naming).
    pub name: String,
    /// The taxon universe (labels).
    pub taxa: TaxonSet,
    /// The species tree the constraints were induced from, when generated
    /// that way (`None` for datasets built directly from subtrees).
    pub species_tree: Option<Tree>,
    /// The presence–absence matrix, when known.
    pub pam: Option<Pam>,
    /// The constraint trees (the Gentrius input).
    pub constraints: Vec<Tree>,
}

impl Dataset {
    /// Builds the [`StandProblem`] for this dataset.
    pub fn problem(&self) -> Result<StandProblem, ProblemError> {
        StandProblem::from_constraints(self.constraints.clone())
    }

    /// Number of taxa in the universe.
    pub fn num_taxa(&self) -> usize {
        self.taxa.len()
    }

    /// Number of loci / constraint trees.
    pub fn num_loci(&self) -> usize {
        self.constraints.len()
    }

    /// Fraction of missing entries in the PAM (0 when unknown).
    pub fn missing_fraction(&self) -> f64 {
        self.pam
            .as_ref()
            .map(|p| p.missing_fraction())
            .unwrap_or(0.0)
    }

    /// Serializes to the simple multi-section text format used by the CLI:
    ///
    /// ```text
    /// # gentrius dataset v1
    /// name <name>
    /// [species <newick>]
    /// constraint <newick>      (one per locus)
    /// [pam]
    /// <taxon> <0/1 row>
    /// ```
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# gentrius dataset v1\n");
        writeln!(s, "name {}", self.name).unwrap();
        if let Some(t) = &self.species_tree {
            writeln!(s, "species {}", to_newick(t, &self.taxa)).unwrap();
        }
        for c in &self.constraints {
            writeln!(s, "constraint {}", to_newick(c, &self.taxa)).unwrap();
        }
        if let Some(pam) = &self.pam {
            s.push_str("pam\n");
            s.push_str(&pam.to_text(&self.taxa));
        }
        s
    }

    /// Parses the format produced by [`Dataset::to_text`].
    pub fn from_text(input: &str) -> Result<Dataset, String> {
        let mut name = String::from("unnamed");
        let mut species_src: Option<String> = None;
        let mut constraint_srcs: Vec<String> = Vec::new();
        let mut pam_lines: Vec<&str> = Vec::new();
        let mut in_pam = false;
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if in_pam {
                pam_lines.push(line);
                continue;
            }
            if let Some(rest) = line.strip_prefix("name ") {
                name = rest.trim().to_string();
            } else if let Some(rest) = line.strip_prefix("species ") {
                species_src = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("constraint ") {
                constraint_srcs.push(rest.trim().to_string());
            } else if line == "pam" {
                in_pam = true;
            } else {
                return Err(format!("unrecognized dataset line: {line}"));
            }
        }
        if constraint_srcs.is_empty() {
            return Err("dataset has no constraint trees".into());
        }
        // Build a shared universe across species + constraints.
        let mut all: Vec<&str> = Vec::new();
        if let Some(s) = &species_src {
            all.push(s);
        }
        all.extend(constraint_srcs.iter().map(|s| s.as_str()));
        let (mut taxa, mut trees) = parse_forest(all.iter().copied()).map_err(|e| e.to_string())?;
        let species_tree = species_src.is_some().then(|| trees.remove(0));

        let pam = if pam_lines.is_empty() {
            None
        } else {
            let joined = pam_lines.join("\n");
            let pam = Pam::parse_text(&joined, &mut taxa)?;
            if pam.universe() != taxa.len() {
                // PAM may have introduced taxa unseen in trees; rebuild the
                // trees against the enlarged universe.
                let mut all2: Vec<String> = Vec::new();
                if let Some(t) = &species_tree {
                    all2.push(to_newick(t, &taxa));
                }
                trees = Vec::new();
                for src in &constraint_srcs {
                    trees.push(parse_newick(src, &taxa).map_err(|e| e.to_string())?);
                }
                let species_tree2 = species_src
                    .as_ref()
                    .map(|s| parse_newick(s, &taxa).map_err(|e| e.to_string()))
                    .transpose()?;
                return Ok(Dataset {
                    name,
                    taxa,
                    species_tree: species_tree2,
                    pam: Some(pam),
                    constraints: trees,
                });
            }
            Some(pam)
        };
        Ok(Dataset {
            name,
            taxa,
            species_tree,
            pam,
            constraints: trees,
        })
    }

    /// Writes the dataset to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a dataset from a file.
    pub fn load(path: &Path) -> Result<Dataset, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Dataset::from_text(&text)
    }

    /// Loads every `*.dataset` file in a directory (the layout written by
    /// the `make_suite` tool), sorted by file name for determinism.
    pub fn load_suite(dir: &Path) -> Result<Vec<Dataset>, String> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "dataset"))
            .collect();
        paths.sort();
        paths.iter().map(|p| Dataset::load(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::split::topo_eq;

    fn sample() -> Dataset {
        let (taxa, mut trees) =
            parse_forest(["((A,B),((C,D),(E,F)));", "((A,B),(C,D));", "((C,D),(E,F));"]).unwrap();
        let species = trees.remove(0);
        let mut pam = Pam::new(6, 2);
        for t in [0, 1, 2, 3] {
            pam.set(phylo::TaxonId(t), 0, true);
        }
        for t in [2, 3, 4, 5] {
            pam.set(phylo::TaxonId(t), 1, true);
        }
        Dataset {
            name: "toy-1".into(),
            taxa,
            species_tree: Some(species),
            pam: Some(pam),
            constraints: trees,
        }
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let d = sample();
        let text = d.to_text();
        let d2 = Dataset::from_text(&text).unwrap();
        assert_eq!(d2.name, d.name);
        assert_eq!(d2.num_taxa(), d.num_taxa());
        assert_eq!(d2.num_loci(), d.num_loci());
        assert!(topo_eq(
            d2.species_tree.as_ref().unwrap(),
            d.species_tree.as_ref().unwrap()
        ));
        for (a, b) in d2.constraints.iter().zip(&d.constraints) {
            assert!(topo_eq(a, b));
        }
        assert_eq!(d2.pam, d.pam);
    }

    #[test]
    fn problem_construction() {
        let d = sample();
        let p = d.problem().unwrap();
        assert_eq!(p.num_taxa(), 6);
        assert!((d.missing_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Dataset::from_text("name x\nnonsense line\n").is_err());
        assert!(Dataset::from_text("name x\n").is_err()); // no constraints
    }

    #[test]
    fn suite_roundtrip_through_directory() {
        let dir = std::env::temp_dir().join("gentrius-datagen-suite-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let d = sample();
        d.save(&dir.join("a.dataset")).unwrap();
        let mut d2 = sample();
        d2.name = "toy-2".into();
        d2.save(&dir.join("b.dataset")).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a dataset").unwrap();
        let suite = Dataset::load_suite(&dir).unwrap();
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].name, "toy-1");
        assert_eq!(suite[1].name, "toy-2");
    }

    #[test]
    fn minimal_dataset_without_pam() {
        let text = "name mini\nconstraint ((A,B),(C,D));\nconstraint ((C,D),(E,F));\n";
        let d = Dataset::from_text(text).unwrap();
        assert!(d.pam.is_none());
        assert!(d.species_tree.is_none());
        assert_eq!(d.num_loci(), 2);
        assert_eq!(d.num_taxa(), 6);
        d.problem().unwrap();
    }
}
