//! Fixture for the crates/parallel scopes: facade, ordering, stray I/O.
use std::sync::atomic::{AtomicUsize, Ordering}; // live: sync-facade

pub fn spawny() {
    std::thread::spawn(|| {}); // live: sync-facade
    std::thread::yield_now(); // fine: only spawn is fenced off
}

pub struct C(AtomicUsize);

impl C {
    pub fn bump(&self) -> usize {
        // ordering: monotonic diagnostic counter, no ordering required.
        self.0.fetch_add(1, Ordering::Relaxed) // justified
    }

    /* spacer so the justification above is out of the window below */

    pub fn read(&self) -> usize {
        self.0.load(Ordering::SeqCst) // live: ordering-justification
    }
    pub fn read_acq(&self) -> usize {
        self.0.load(Ordering::Acquire) // Acquire needs no justification
    }
    pub fn read_run_merged(&self) -> usize {
        // ordering: Relaxed — the marker line of this justification sits
        // more than the window above the use, but consecutive comment
        // lines merge into one run and coverage extends through the
        // run's last line, so the load below is still justified (a
        // regression guard for multi-line justification blocks).
        self.0.load(Ordering::Relaxed) // justified via run merge
    }
    pub fn shout(&self) {
        println!("value = {}", self.read()); // live: no-stray-io
        eprintln!("again"); // live: no-stray-io
    }
}
