//! Fixture: wire-format arithmetic. Scanned as
//! `crates/standfile/src/varint.rs` (the rule scopes exact files).

pub fn mixed(v: u64, n: usize, buf: &mut Vec<u8>) -> u8 {
    let masked = (v & 0x7f) as u8; // ok: literal-masked cast
    buf.push(masked);
    let _narrowed = v as u32; // FINDING: bare narrowing cast
    let _sum = n + 1; // FINDING: bare add
    let _shifted = v << 3; // FINDING: bare shift
    masked
}

pub fn justified(v: u64, n: usize) -> u64 {
    // arith: the caller guarantees `n < 8`, so neither op can wrap.
    let shifted = v << n;
    let bumped = n + 1;
    debug_assert!(bumped <= 8);
    let total = bumped + 2; // ok: a guard sits in the window above
    shifted ^ total as u64
}
