//! Fixture: atomic-ordering dataflow — declared-vs-actual mismatches and
//! release/relaxed asymmetry. Scanned as `crates/parallel/src/fixture.rs`.

use crate::sync::atomic::{AtomicUsize, Ordering};

pub struct Flags {
    flag: AtomicUsize,
    data: AtomicUsize,
    count: AtomicUsize,
}

impl Flags {
    pub fn publish(&self) {
        // ordering: Release — publishes the payload before the flag flips.
        self.flag.store(1, Ordering::Release);
    }

    pub fn read_bad(&self) -> usize {
        // ordering: Relaxed — quick look at the flag.
        self.flag.load(Ordering::Relaxed) // FINDING: unjustified asymmetry
    }

    pub fn read_ok(&self) -> usize {
        // ordering: Relaxed — advisory read; staleness is tolerated here.
        self.flag.load(Ordering::Relaxed)
    }

    pub fn mismatch(&self) -> usize {
        // ordering: Relaxed — text left behind by a later upgrade.
        self.data.load(Ordering::Acquire) // FINDING: comment contradicts code
    }

    pub fn good(&self) -> usize {
        // ordering: Acquire — pairs with a Release store elsewhere.
        self.data.load(Ordering::Acquire)
    }

    pub fn stale_seqcst(&self) -> usize {
        // ordering: Acquire — also stale; the code disagrees.
        self.count.load(Ordering::SeqCst) // FINDING: ordering-justification
    }

    pub fn bump(&self) {
        // ordering: Relaxed — monotonic diagnostic counter.
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}
