//! Fixture: literals containing panic-ish text must not count.
pub fn strings() -> Vec<String> {
    vec![
        "calling foo.unwrap() here".to_string(),
        r"raw: bar.expect(oops) and panic!".to_string(),
        r#"hash-raw with "quotes" and x.unwrap() inside"#.to_string(),
        r##"deeper "# raw with y.expect("msg") text"##.to_string(),
        String::from_utf8_lossy(b"byte str with z.unwrap()").into_owned(),
        'u'.to_string(),     // char literal, not the start of unwrap
        "\" escaped quote then fake .unwrap() \\".to_string(),
    ]
}
pub fn live(v: Vec<String>) -> String {
    let lifetime_ok: &'static str = "labels";
    v.into_iter().next().expect(lifetime_ok) // the only live finding
}
