//! Fixture: test regions are exempt, `not(test)` is not.
pub fn live_one(x: Option<u8>) -> u8 {
    x.unwrap() // live finding 1
}

#[cfg(not(test))]
pub fn not_test_is_production(x: Option<u8>) -> u8 {
    x.unwrap() // live finding 2: cfg(not(test)) is production code
}

#[test]
fn attr_test_fn() {
    Some(1).unwrap();
    panic!("fine in tests");
}

#[cfg(test)]
fn cfg_test_helper() {
    None::<u8>.expect("also fine");
}

#[cfg(all(test, not(loom)))]
mod tests {
    #[test]
    fn inner() {
        Some(2).unwrap();
        Some(3).expect("covered by the region");
    }
}

mod test_utils {
    pub fn helper() {
        Some(4).unwrap(); // `mod test_*` counts as a test region
    }
}

pub fn live_two() {
    panic!("live finding 3");
}
