//! Fixture: lock-scope discipline. Scanned as
//! `crates/parallel/src/fixture.rs`.

use crate::sync::{Condvar, Mutex};

pub fn bad_park(m: &Mutex<u32>, t: &Thread) {
    let guard = m.lock().unwrap();
    t.park(); // FINDING: park while `guard` is live
    drop(guard);
}

pub fn bad_cross_wait(a: &Mutex<u32>, b: &Mutex<u32>, cv: &Condvar) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    let gb = cv.wait(gb).unwrap(); // FINDING: does not consume `ga`
    drop(gb);
    drop(ga);
}

pub fn bad_kernel(m: &Mutex<u32>, frames: &mut Frames) {
    let g = m.lock().unwrap();
    frames.step(); // FINDING: explore kernel under the lock
    drop(g);
}

pub fn good_drop_first(m: &Mutex<u32>, frames: &mut Frames) {
    let g = m.lock().unwrap();
    let _v = *g;
    drop(g);
    frames.step(); // fine: the guard was dropped above
}

pub fn good_consuming_wait(m: &Mutex<u32>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    while *g == 0 {
        g = cv.wait(g).unwrap(); // fine: the wait consumes the guard
    }
    drop(g);
}
