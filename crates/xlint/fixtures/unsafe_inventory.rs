//! Fixture: unsafe-inventory. Scanned as `crates/core/src/fixture.rs`.

pub struct Raw(*mut u8);

// safety: the owner hands the pointer across threads only as a whole.
unsafe impl Send for Raw {}

pub fn read(r: &Raw) -> u8 {
    // safety: `r.0` is valid for reads for the life of `r`.
    unsafe { *r.0 }
}

pub fn write(r: &mut Raw, v: u8) {
    unsafe { *r.0 = v } // FINDING: block without a safety comment
}

unsafe impl Sync for Raw {} // FINDING: impl without a safety comment

// FINDING below: the fn itself is undocumented unsafe; the inner block
// carries its own justification and is fine.
pub unsafe fn offset(p: *const u8, n: usize) -> u8 {
    // safety: the caller promises `p + n` stays in bounds.
    unsafe { *p.add(n) }
}
