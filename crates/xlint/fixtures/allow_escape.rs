//! Fixture: the escape hatch suppresses exactly what it names.
pub fn allowed_same_line(x: Option<u8>) -> u8 {
    x.unwrap() // xlint: allow(panic-freedom) — invariant: caller checked is_some
}

pub fn allowed_line_above(x: Option<u8>) -> u8 {
    // xlint: allow(panic-freedom) — invariant: fixture demonstrates the hatch
    x.unwrap()
}

pub fn wrong_rule_named(x: Option<u8>) -> u8 {
    // xlint: allow(no-stray-io) — names a different rule, does not suppress
    x.unwrap() // live finding 1
}

pub fn missing_reason(x: Option<u8>) -> u8 {
    // xlint: allow(panic-freedom)
    x.unwrap() // live finding 2 (and the bare allow is finding 3)
}

pub fn plain(x: Option<u8>) -> u8 {
    x.unwrap() // live finding 4
}
