//! Fixture: panic sites hidden in (nested) comments must not count.
// a line comment with foo.unwrap() and panic!("x") in it
/* a block comment: bar.expect("nope") */
/* outer /* nested inner with baz.unwrap() */ still the outer comment,
   so this .expect( and this panic!() are dead text too */
/**/ /* tight empty comment, then /* deep /* deeper */ */ done */
pub fn real_site(x: Option<u32>) -> u32 {
    x.unwrap() // the only live finding in this file
}
