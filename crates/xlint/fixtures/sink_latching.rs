//! Fixture: sink-error-latching. Scanned as
//! `crates/standfile/src/fixture.rs`.

pub struct BadSink {
    err: Option<StandfileError>,
}

impl StandSink for BadSink {
    fn stand_tree(&mut self, tree: &Tree) {
        if let Err(e) = self.write(tree) {
            self.err = Some(e); // FINDING: finish() never reads it
        }
    }

    fn finish(self) -> Result<Summary, StandfileError> {
        Ok(Summary::default())
    }
}

pub struct GoodSink {
    err: Option<StandfileError>,
}

impl StandSink for GoodSink {
    fn stand_tree(&mut self, tree: &Tree) {
        if let Err(e) = self.write(tree) {
            self.err = Some(e); // ok: surfaced by the inherent finish()
        }
    }
}

impl GoodSink {
    pub fn finish(mut self) -> Result<Summary, StandfileError> {
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(Summary::default()),
        }
    }
}

pub struct NoFinish {
    err: Option<StandfileError>,
}

impl StandSink for NoFinish {
    fn stand_tree(&mut self, _tree: &Tree) {
        self.err = Some(StandfileError::Full); // FINDING: no finish() at all
    }
}
