//! Hostile-input properties for the lexer and item parser: arbitrary
//! concatenations of Rust-ish fragments — raw strings, byte strings, nested
//! block comments, unbalanced braces inside strings, unterminated
//! everything — must never panic anywhere in the analysis pipeline, and the
//! token stream must reconstruct the input byte-for-byte (token spans plus
//! whitespace-only gaps partition the file).

use proptest::collection::vec;
use proptest::prelude::*;
use xlint::analysis::FileAnalysis;

fn fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("fn f() { g(); }\n"),
        Just("r#\"raw \\ no escapes { \"#"),
        Just("b\"bytes \\x7f\" "),
        Just("br##\"{ unbalanced \"# still raw\"##"),
        Just("/* outer /* inner */ tail */"),
        Just("\"{ { {\""),
        Just("'}'"),
        Just("'\\u{7f}'"),
        Just("// ordering: Relaxed — comment\n"),
        Just("/* unterminated"),
        Just("\"unterminated str"),
        Just("r#\"unterminated raw"),
        Just("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n"),
        Just("impl StandSink for S { fn finish(self) {} }\n"),
        Just("let x = a.load(Ordering::SeqCst);\n"),
        Just("unsafe { *p }\n"),
        Just("} } {"),
        Just("<< + as u8 "),
        Just(" \t\n"),
        Just("λ≤ unicode idents 'λ' "),
        Just("let s: &'static str = \"s\";\n"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn analysis_never_panics_and_lexing_is_byte_lossless(
        parts in vec(fragment(), 0..12)
    ) {
        let src: String = parts.concat();
        // Totality: lex, test-marking, parse, comment index, all 9 rules.
        let fa = FileAnalysis::analyze("crates/parallel/src/fixture.rs", &src);
        let _ = xlint::check_analysis(&fa);
        // Losslessness: spans are ascending and non-overlapping, every gap
        // is pure whitespace, so `gaps + spans` reconstruct the input
        // byte-for-byte. Literal kinds store *content* in `text` (quotes,
        // prefixes and `#` fences live only in the span); for every other
        // kind the text is exactly the span.
        let bytes = src.as_bytes();
        let mut rebuilt = Vec::with_capacity(bytes.len());
        let mut pos = 0usize;
        for t in &fa.toks {
            prop_assert!(t.start >= pos, "overlap at byte {}", t.start);
            prop_assert!(t.start <= t.end && t.end <= bytes.len());
            prop_assert!(
                bytes[pos..t.start].iter().all(|b| b.is_ascii_whitespace()),
                "non-whitespace gap before byte {}",
                t.start
            );
            rebuilt.extend_from_slice(&bytes[pos..t.start]);
            rebuilt.extend_from_slice(&bytes[t.start..t.end]);
            use xlint::lexer::TokKind;
            if !matches!(t.kind, TokKind::Str | TokKind::Char | TokKind::Lifetime) {
                prop_assert_eq!(t.text.as_bytes(), &bytes[t.start..t.end]);
            }
            pos = t.end;
        }
        prop_assert!(bytes[pos..].iter().all(|b| b.is_ascii_whitespace()));
        rebuilt.extend_from_slice(&bytes[pos..]);
        prop_assert_eq!(rebuilt.as_slice(), bytes);
    }
}
