//! End-to-end checks of the `xlint` binary: the real workspace must be
//! clean at HEAD (this is the acceptance gate CI enforces), and injected
//! violations must flip the exit status.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xlint"))
        .args(args)
        .output()
        .expect("spawn xlint")
}

#[test]
fn workspace_at_head_is_clean() {
    let root = repo_root();
    let out = run(&["--root", root.to_str().expect("utf-8 path")]);
    assert!(
        out.status.success(),
        "xlint found violations at HEAD:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("xlint: clean"), "{text}");
}

#[test]
fn all_nine_rules_are_registered() {
    let names: Vec<&str> = xlint::RULES.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        [
            "sync-facade",
            "ordering-justification",
            "panic-freedom",
            "no-stray-io",
            "atomic-ordering",
            "lock-scope",
            "sink-error-latching",
            "unchecked-arithmetic",
            "unsafe-inventory",
        ]
    );
}

#[test]
fn atomics_json_emits_schema_versioned_inventory() {
    let root = repo_root();
    let out = run(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--atomics-json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains("\"schema\": \"xlint-inventory-v1\""),
        "{json}"
    );
    assert!(json.contains("\"atomics\""), "{json}");
    assert!(json.contains("\"unsafe\""), "{json}");
}

#[test]
fn timing_flag_reports_per_rule_wall_time() {
    let root = repo_root();
    let out = run(&["--root", root.to_str().expect("utf-8 path"), "--timing"]);
    assert!(out.status.success());
    let timing = String::from_utf8_lossy(&out.stderr);
    assert!(timing.contains("lex+parse"), "{timing}");
    for rule in xlint::RULES {
        assert!(
            timing.contains(rule.name),
            "missing {}: {timing}",
            rule.name
        );
    }
}

#[test]
fn injected_violation_fails_with_json_detail() {
    // Build a miniature workspace with one facade bypass.
    let dir = std::env::temp_dir().join(format!("xlint-e2e-{}", std::process::id()));
    let src_dir = dir.join("crates/parallel/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn bad() { std::thread::spawn(|| {}); }\n",
    )
    .expect("write fixture");

    let out = run(&[
        "--root",
        dir.to_str().expect("utf-8 path"),
        "--format",
        "json",
    ]);
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(out.status.code(), Some(1), "expected a lint failure");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\": \"sync-facade\""), "{json}");
    assert!(json.contains("crates/parallel/src/bad.rs"), "{json}");
}

#[test]
fn stale_baseline_entry_fails() {
    let dir = std::env::temp_dir().join(format!("xlint-stale-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("crates/core/src")).expect("mkdir");
    std::fs::write(dir.join("crates/core/src/ok.rs"), "pub fn ok() {}\n").expect("write");
    std::fs::write(
        dir.join("xlint.baseline"),
        "panic-freedom\tcrates/core/src/ok.rs\tgone.unwrap()\n",
    )
    .expect("write baseline");

    let out = run(&["--root", dir.to_str().expect("utf-8 path")]);
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stale baseline entry"), "{text}");
}

#[test]
fn write_baseline_then_clean() {
    let dir = std::env::temp_dir().join(format!("xlint-freeze-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("crates/phylo/src")).expect("mkdir");
    std::fs::write(
        dir.join("crates/phylo/src/debt.rs"),
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )
    .expect("write");
    let root = dir.to_str().expect("utf-8 path").to_string();

    // Dirty before freezing…
    assert_eq!(run(&["--root", &root]).status.code(), Some(1));
    // …freeze…
    assert!(run(&["--root", &root, "--write-baseline"]).status.success());
    // …clean after, and the baseline file documents the frozen entry.
    let out = run(&["--root", &root]);
    let baseline = std::fs::read_to_string(dir.join("xlint.baseline")).expect("baseline");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        baseline.contains("panic-freedom\tcrates/phylo/src/debt.rs"),
        "{baseline}"
    );
}
