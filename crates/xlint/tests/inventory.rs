//! The machine-readable invariant inventory (`xlint --atomics-json`):
//! byte-exact golden fixture, RFC 8259 validity (checked with the
//! workspace's own validator), and the schema pin.

use xlint::analysis::FileAnalysis;
use xlint::{build_inventory, render_inventory, INVENTORY_SCHEMA};

/// The inventory rendered over the two inventory-bearing fixtures — stable
/// input, so the output is pinned byte-for-byte in
/// `fixtures/inventory_golden.json`.
fn fixture_inventory() -> String {
    let analyses = vec![
        FileAnalysis::analyze(
            "crates/parallel/src/fixture.rs",
            include_str!("../fixtures/atomic_ordering.rs"),
        ),
        FileAnalysis::analyze(
            "crates/core/src/fixture.rs",
            include_str!("../fixtures/unsafe_inventory.rs"),
        ),
    ];
    render_inventory(&build_inventory(&analyses))
}

#[test]
fn inventory_matches_golden_fixture_byte_for_byte() {
    let actual = fixture_inventory();
    let golden = include_str!("../fixtures/inventory_golden.json");
    assert_eq!(
        actual, golden,
        "inventory drifted from fixtures/inventory_golden.json — \
         regenerate the golden if the schema change is deliberate"
    );
}

#[test]
fn inventory_is_rfc8259_valid_and_schema_pinned() {
    let actual = fixture_inventory();
    gentrius_parallel::obs::json::validate(&actual).expect("inventory JSON must be RFC 8259 valid");
    assert_eq!(INVENTORY_SCHEMA, "xlint-inventory-v1");
    assert!(actual.contains("\"schema\": \"xlint-inventory-v1\""));
}

#[test]
fn live_workspace_inventory_is_rfc8259_valid() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let scan = xlint::scan_workspace_full(&root).expect("scan workspace");
    let json = render_inventory(&scan.inventory);
    gentrius_parallel::obs::json::validate(&json)
        .expect("live inventory JSON must be RFC 8259 valid");
    // The Chase-Lev deque and the loom shim must be present: the atomics
    // table carries the deque's fields, the unsafe table the shim's cell
    // projections.
    assert!(json.contains("crates/parallel/src/deque.rs"));
    assert!(json.contains("shims/loom/src/sync/mod.rs"));
}
