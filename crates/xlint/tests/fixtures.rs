//! Exact-count checks of the lexer and rule engine against the hostile
//! fixtures in `crates/xlint/fixtures/` (which are plain text to the build:
//! never compiled, never scanned by the workspace walk).

use xlint::check_file;

fn count(findings: &[xlint::Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn nested_block_comments_hide_panics() {
    let src = include_str!("../fixtures/nested_comments.rs");
    // Scanned as if it were phylo library code (panic-freedom scope).
    let f = check_file("crates/phylo/src/fixture.rs", src);
    assert_eq!(count(&f, "panic-freedom"), 1, "findings: {f:#?}");
    assert_eq!(f.len(), 1);
    assert_eq!(
        f[0].snippet,
        "x.unwrap() // the only live finding in this file"
    );
}

#[test]
fn raw_strings_hide_panics() {
    let src = include_str!("../fixtures/raw_strings.rs");
    let f = check_file("crates/core/src/fixture.rs", src);
    assert_eq!(count(&f, "panic-freedom"), 1, "findings: {f:#?}");
    assert_eq!(f.len(), 1);
    assert!(f[0].snippet.contains(".expect(lifetime_ok)"));
}

#[test]
fn cfg_test_regions_are_exempt_but_not_test_is_not() {
    let src = include_str!("../fixtures/cfg_test_regions.rs");
    let f = check_file("crates/phylo/src/fixture.rs", src);
    assert_eq!(count(&f, "panic-freedom"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3);
    // The cfg(not(test)) site is one of them.
    assert!(f
        .iter()
        .any(|x| x.snippet.contains("cfg(not(test)) is production")));
}

#[test]
fn allow_escape_suppresses_named_rule_only() {
    let src = include_str!("../fixtures/allow_escape.rs");
    let f = check_file("crates/phylo/src/fixture.rs", src);
    assert_eq!(count(&f, "panic-freedom"), 3, "findings: {f:#?}");
    assert_eq!(count(&f, "allow-syntax"), 1, "findings: {f:#?}");
    assert_eq!(f.len(), 4);
}

#[test]
fn parallel_scope_rules_fire_exactly() {
    let src = include_str!("../fixtures/parallel_rules.rs");
    let f = check_file("crates/parallel/src/fixture.rs", src);
    assert_eq!(count(&f, "sync-facade"), 2, "findings: {f:#?}");
    assert_eq!(count(&f, "ordering-justification"), 1, "findings: {f:#?}");
    assert_eq!(count(&f, "no-stray-io"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 5);
}

#[test]
fn scoping_silences_out_of_scope_rules() {
    let src = include_str!("../fixtures/parallel_rules.rs");
    // Same content in the exempted facade file: sync-facade is silent,
    // the other two parallel-scope rules still apply.
    let f = check_file("crates/parallel/src/sync.rs", src);
    assert_eq!(count(&f, "sync-facade"), 0);
    assert_eq!(count(&f, "ordering-justification"), 1);
    // And in a crate no rule covers, nothing fires at all.
    let f = check_file("crates/bench/src/fixture.rs", src);
    assert!(f.is_empty(), "findings: {f:#?}");
}

#[test]
fn lexer_tokenizes_hostile_cases() {
    use xlint::lexer::{lex_marked, TokKind};
    let toks = lex_marked(
        "let a = r#\"not an // xlint: allow(x) comment\"#; // real /* still line */\n\
         /* nested /* twice */ once */ let b = 'x'; let l: &'static str = \"s\";",
    );
    let kinds: Vec<&TokKind> = toks.iter().map(|t| &t.kind).collect();
    // The raw string is one Str token, the trailing text one Comment.
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Str).count(),
        2,
        "{toks:#?}"
    );
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
        2,
        "{toks:#?}"
    );
    assert!(kinds.contains(&&TokKind::Char));
    assert!(kinds.contains(&&TokKind::Lifetime));
    // The allow-marker inside the raw string is literal content.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Str && t.text.contains("xlint: allow")));
}

#[test]
fn multiline_tokens_report_line_spans() {
    use xlint::lexer::{lex, TokKind};
    let toks = lex("/* one\ntwo\nthree */ fn x() {}\nlet s = \"a\nb\";\n");
    let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
    assert_eq!((c.line, c.end_line), (1, 3));
    let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
    assert_eq!((s.line, s.end_line), (4, 5));
    let f = toks.iter().find(|t| t.text == "fn").unwrap();
    assert_eq!(f.line, 3);
}

#[test]
fn atomic_ordering_mismatches_and_asymmetry_fire_exactly() {
    let src = include_str!("../fixtures/atomic_ordering.rs");
    let f = check_file("crates/parallel/src/fixture.rs", src);
    assert_eq!(count(&f, "atomic-ordering"), 2, "findings: {f:#?}");
    // The declared-vs-actual bugfix on SeqCst/Relaxed token sites stays
    // with ordering-justification (stable fingerprints).
    assert_eq!(count(&f, "ordering-justification"), 1, "findings: {f:#?}");
    assert_eq!(f.len(), 3);
    assert!(f
        .iter()
        .any(|x| x.message.contains("Relaxed load of `flag`")));
    assert!(f
        .iter()
        .any(|x| x.message.contains("`data.load` uses Acquire")));
    assert!(f.iter().any(|x| x
        .message
        .contains("`Ordering::SeqCst` but its `// ordering:` comment declares Acquire")));
}

#[test]
fn lock_scope_flags_park_wait_and_kernels() {
    let src = include_str!("../fixtures/lock_scope.rs");
    let f = check_file("crates/parallel/src/fixture.rs", src);
    assert_eq!(count(&f, "lock-scope"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3);
    assert!(f.iter().any(|x| x.message.contains("`park()`")));
    assert!(f
        .iter()
        .any(|x| x.message.contains("does not consume `MutexGuard` `ga`")));
    assert!(f
        .iter()
        .any(|x| x.message.contains("explore kernel `step`")));
}

#[test]
fn sink_error_latching_requires_finish_to_surface() {
    let src = include_str!("../fixtures/sink_latching.rs");
    let f = check_file("crates/standfile/src/fixture.rs", src);
    assert_eq!(count(&f, "sink-error-latching"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 2);
    assert!(f
        .iter()
        .any(|x| x.message.contains("`finish()` never reads `self.err`")));
    assert!(f.iter().any(|x| x.message.contains("no `finish()` body")));
}

#[test]
fn unchecked_arithmetic_fires_exactly_in_wire_scope() {
    let src = include_str!("../fixtures/unchecked_arith.rs");
    let f = check_file("crates/standfile/src/varint.rs", src);
    assert_eq!(count(&f, "unchecked-arithmetic"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3);
    assert!(f.iter().any(|x| x.message.contains("`as u32`")));
    assert!(f.iter().any(|x| x.message.contains("unchecked `+`")));
    assert!(f.iter().any(|x| x.message.contains("unchecked `<<`")));
    // The same content outside the wire-format scope is silent.
    let f = check_file("crates/standfile/src/other.rs", src);
    assert_eq!(count(&f, "unchecked-arithmetic"), 0, "findings: {f:#?}");
}

#[test]
fn unsafe_inventory_requires_safety_comments() {
    let src = include_str!("../fixtures/unsafe_inventory.rs");
    let f = check_file("crates/core/src/fixture.rs", src);
    assert_eq!(count(&f, "unsafe-inventory"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3);
    assert!(f.iter().any(|x| x.message.contains("`unsafe` block")));
    assert!(f.iter().any(|x| x.message.contains("`unsafe` impl")));
    assert!(f.iter().any(|x| x.message.contains("`unsafe` fn")));
}

#[test]
fn baseline_freezes_and_goes_stale() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let findings = check_file("crates/core/src/debt.rs", src);
    assert_eq!(findings.len(), 1);

    // Freezing the finding makes the report clean…
    let text = xlint::Baseline::render(&findings);
    let bl = xlint::Baseline::parse(&text);
    let report = bl.apply(findings.clone());
    assert!(report.clean());
    assert_eq!(report.baselined, 1);

    // …a *new* finding is live even with the baseline…
    let two = format!("{src}pub fn g(y: Option<u8>) -> u8 {{ y.expect(\"no\") }}\n");
    let report = bl.apply(check_file("crates/core/src/debt.rs", &two));
    assert_eq!(report.findings.len(), 1);
    assert!(!report.clean());

    // …and fixing the frozen debt turns the entry stale (also a failure).
    let report = bl.apply(Vec::new());
    assert_eq!(report.findings.len(), 0);
    assert_eq!(report.stale.len(), 1);
    assert!(!report.clean());
}

#[test]
fn json_rendering_is_wellformed_enough() {
    let src = "pub fn f() { panic!(\"with \\\"quotes\\\" and\\ttabs\") }\n";
    let findings = check_file("crates/phylo/src/fixture.rs", src);
    let report = xlint::Baseline::parse("").apply(findings);
    let json = xlint::render_json(&report);
    assert!(json.contains("\"rule\": \"panic-freedom\""));
    // The snippet's `\"` must arrive as escaped-backslash + escaped-quote.
    assert!(json.contains(r#"\\\"quotes\\\""#), "{json}");
    assert!(!json.contains('\t'), "tabs must be escaped: {json}");
}
