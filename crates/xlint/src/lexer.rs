//! A hand-written lexer for the subset of Rust that a source linter must
//! understand to avoid false positives: it tokenizes identifiers and
//! punctuation while correctly skipping over line comments, (nested) block
//! comments, string / char / byte / raw-string literals and lifetimes, and
//! it tracks which tokens live inside test code (`#[test]`, `#[cfg(test)]`
//! in any boolean combination except under `not(..)`, and `mod tests`-style
//! modules).
//!
//! The lexer is deliberately lossless about *position* (1-based start and
//! end lines per token) and about *comments* (they are emitted as tokens,
//! not discarded), because two of the rules read comment text: the
//! `// ordering:` justification window and the `// xlint: allow(..)`
//! escape hatch.

/// Token classification. Only the distinctions the rules need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident,
    /// A single punctuation byte (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// Line or block comment; `text` is the full comment including markers.
    Comment,
    /// String literal of any flavour (`"…"`, `b"…"`, `r#"…"#`, `c"…"`);
    /// `text` is the literal's inner content.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (digits plus alphanumeric suffix bytes; `1.5` lexes
    /// as two numbers around a `.` — irrelevant for linting).
    Num,
}

/// One token with its source span (line- and byte-granular) and
/// test-region flag.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is stored per kind).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// 1-based line the token ends on (differs from `line` only for
    /// multi-line comments and strings).
    pub end_line: usize,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte offset one past the token's last byte. Tokens cover exactly
    /// the bytes consumed for them, in order and without overlap, so the
    /// source reconstructs losslessly from spans plus whitespace gaps
    /// (the parser proptests pin this).
    pub end: usize,
    /// True when the token sits inside test-only code; filled by
    /// [`mark_test_regions`], `false` straight out of [`lex`].
    pub in_test: bool,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn starts_with(&self, pat: &[u8]) -> bool {
        self.src[self.pos..].starts_with(pat)
    }

    fn text(&self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from..self.pos]).into_owned()
    }

    fn tok(&self, kind: TokKind, text: String, line: usize) -> Tok {
        Tok {
            kind,
            text,
            line,
            end_line: self.line,
            // Byte spans are filled by the main `lex` loop, which knows the
            // dispatch position (every handler consumes contiguously).
            start: 0,
            end: 0,
            in_test: false,
        }
    }

    /// `//…` to end of line (the newline itself is left for the main loop).
    fn line_comment(&mut self) -> Tok {
        let start = self.pos;
        let line = self.line;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.pos += 1;
        }
        self.tok(TokKind::Comment, self.text(start), line)
    }

    /// `/* … */` with nesting, as Rust defines it.
    fn block_comment(&mut self) -> Tok {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.src.len() {
            if self.starts_with(b"/*") {
                depth += 1;
                self.pos += 2;
            } else if self.starts_with(b"*/") {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.peek(0) == Some(b'\n') {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        self.tok(TokKind::Comment, self.text(start), line)
    }

    /// `"…"` with backslash escapes (also used for `b"…"` / `c"…"` bodies).
    fn string(&mut self) -> Tok {
        let line = self.line;
        self.pos += 1; // opening quote
        let start = self.pos;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => self.pos += 2,
                Some(b'"') => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        let text = self.text(start);
        if self.peek(0) == Some(b'"') {
            self.pos += 1;
        }
        self.tok(TokKind::Str, text, line)
    }

    /// `r"…"` / `r#"…"#` / `br##"…"##` — the quote closes only when
    /// followed by the same number of `#`s that opened it.
    fn raw_string(&mut self) -> Tok {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote (caller verified it is there)
        let start = self.pos;
        let mut content_end = self.src.len();
        while self.pos < self.src.len() {
            if self.peek(0) == Some(b'\n') {
                self.line += 1;
            }
            if self.peek(0) == Some(b'"') {
                let closes = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closes {
                    content_end = self.pos;
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        let text =
            String::from_utf8_lossy(&self.src[start..content_end.min(self.pos)]).into_owned();
        self.tok(TokKind::Str, text, line)
    }

    /// Disambiguates `'a'` (char), `'\n'` (char), `'a` / `'_` (lifetime)
    /// and a stray `'`.
    fn char_or_lifetime(&mut self) -> Tok {
        let line = self.line;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: scan to the unescaped closing quote.
                let start = self.pos;
                self.pos += 2;
                loop {
                    match self.peek(0) {
                        None => break,
                        Some(b'\\') => self.pos += 2,
                        Some(b'\'') => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                    }
                }
                self.tok(TokKind::Char, self.text(start), line)
            }
            Some(c) if c != b'\'' && self.peek(1 + utf8_len(c)) == Some(b'\'') => {
                // 'x' — one char (possibly multi-byte) then a closing quote.
                let start = self.pos;
                self.pos += 2 + utf8_len(c);
                self.tok(TokKind::Char, self.text(start), line)
            }
            Some(c) if is_ident_start(c) => {
                self.pos += 1;
                let start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                self.tok(TokKind::Lifetime, self.text(start), line)
            }
            _ => {
                self.pos += 1;
                self.tok(TokKind::Punct('\''), "'".into(), line)
            }
        }
    }

    /// An identifier — or, when the identifier is a literal prefix
    /// (`r`, `b`, `br`, `c`, `cr`), the literal it prefixes.
    fn ident_or_prefixed_literal(&mut self) -> Tok {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        match word {
            b"r" | b"br" | b"cr" => {
                if self.peek(0) == Some(b'"') {
                    return self.raw_string();
                }
                if self.peek(0) == Some(b'#') {
                    // `r#"…"#` et al. — or the raw identifier `r#ident`.
                    let mut k = 0;
                    while self.peek(k) == Some(b'#') {
                        k += 1;
                    }
                    if self.peek(k) == Some(b'"') {
                        return self.raw_string();
                    }
                    if word == b"r" && k == 1 && self.peek(1).is_some_and(is_ident_start) {
                        self.pos += 1; // consume '#', token text is the bare name
                        let istart = self.pos;
                        while self.peek(0).is_some_and(is_ident_continue) {
                            self.pos += 1;
                        }
                        return self.tok(TokKind::Ident, self.text(istart), line);
                    }
                }
            }
            b"b" | b"c" => {
                if self.peek(0) == Some(b'"') {
                    return self.string();
                }
                if word == b"b" && self.peek(0) == Some(b'\'') {
                    return self.char_or_lifetime();
                }
            }
            _ => {}
        }
        self.tok(TokKind::Ident, self.text(start), line)
    }

    fn number(&mut self) -> Tok {
        let line = self.line;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        self.tok(TokKind::Num, self.text(start), line)
    }
}

/// Tokenizes `src`. Tokens come back in source order with `in_test` unset;
/// call [`mark_test_regions`] (or use [`lex_marked`]) to fill it.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = lx.peek(0) {
        // Every handler consumes contiguously from the dispatch position,
        // so the token's byte span is exactly [start, lx.pos) afterwards.
        let start = lx.pos;
        let mut t = match b {
            b'\n' => {
                lx.line += 1;
                lx.pos += 1;
                continue;
            }
            _ if b.is_ascii_whitespace() => {
                lx.pos += 1;
                continue;
            }
            b'/' if lx.peek(1) == Some(b'/') => lx.line_comment(),
            b'/' if lx.peek(1) == Some(b'*') => lx.block_comment(),
            b'"' => lx.string(),
            b'\'' => lx.char_or_lifetime(),
            _ if is_ident_start(b) => lx.ident_or_prefixed_literal(),
            _ if b.is_ascii_digit() => lx.number(),
            _ => {
                let line = lx.line;
                lx.pos += 1;
                lx.tok(TokKind::Punct(b as char), (b as char).to_string(), line)
            }
        };
        t.start = start;
        t.end = lx.pos;
        out.push(t);
    }
    out
}

/// Convenience: [`lex`] followed by [`mark_test_regions`].
pub fn lex_marked(src: &str) -> Vec<Tok> {
    let mut toks = lex(src);
    mark_test_regions(&mut toks);
    toks
}

/// Returns true when the attribute token group `[..]` (given without the
/// leading `#`) puts the following item under test compilation: it contains
/// the ident `test` anywhere except directly under `not(..)`. Covers
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, not(loom)))]`, … while
/// leaving `#[cfg(not(test))]` as production code.
fn attr_is_test(group: &[&Tok]) -> bool {
    for (k, t) in group.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "test" {
            let negated = k >= 2
                && group[k - 1].kind == TokKind::Punct('(')
                && group[k - 2].kind == TokKind::Ident
                && group[k - 2].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Fills [`Tok::in_test`]: a token is test code when it lies in the body of
/// an item annotated `#[test]` / `#[cfg(…test…)]`, inside a `mod tests`-like
/// module, or after an inner `#![cfg(…test…)]` attribute of its enclosing
/// block (whole-file for a crate-level one).
pub fn mark_test_regions(toks: &mut [Tok]) {
    let mut depth = 0usize;
    // Brace depths at which a test region opened; a region ends when `}`
    // returns the depth to the recorded value. `usize::MAX` = never.
    let mut regions: Vec<usize> = Vec::new();
    // A test attribute (or `mod tests` header) was seen; the next `{` opens
    // its body, a `;` at the same depth ends the (body-less) item.
    let mut armed = false;
    let mut armed_depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        let in_test = armed || !regions.is_empty();
        toks[i].in_test = in_test;
        match toks[i].kind.clone() {
            TokKind::Comment => {}
            TokKind::Punct('#') => {
                // Attribute? `#[..]` or inner `#![..]`.
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.kind == TokKind::Comment) {
                    j += 1;
                }
                let inner = toks.get(j).is_some_and(|t| t.kind == TokKind::Punct('!'));
                if inner {
                    j += 1;
                    while toks.get(j).is_some_and(|t| t.kind == TokKind::Comment) {
                        j += 1;
                    }
                }
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Punct('[')) {
                    // Collect the bracket group.
                    let mut bd = 0usize;
                    let mut k = j;
                    let mut group: Vec<usize> = Vec::new();
                    while k < toks.len() {
                        match toks[k].kind {
                            TokKind::Punct('[') => bd += 1,
                            TokKind::Punct(']') => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        group.push(k);
                        toks[k].in_test = in_test;
                        k += 1;
                    }
                    if k < toks.len() {
                        toks[k].in_test = in_test;
                    }
                    let refs: Vec<&Tok> = group.iter().map(|&g| &toks[g]).collect();
                    if attr_is_test(&refs) {
                        if inner {
                            // Test region = rest of the enclosing block.
                            regions.push(if depth == 0 { usize::MAX } else { depth - 1 });
                        } else {
                            armed = true;
                            armed_depth = depth;
                        }
                    }
                    i = k + 1;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                if armed {
                    regions.push(depth);
                    armed = false;
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while regions.last() == Some(&depth) {
                    regions.pop();
                }
            }
            TokKind::Punct(';') if armed && depth == armed_depth => {
                armed = false;
            }
            TokKind::Ident if toks[i].text == "mod" => {
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.kind == TokKind::Comment) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && (t.text == "tests" || t.text.starts_with("test_") || t.text == "test")
                }) {
                    armed = true;
                    armed_depth = depth;
                }
            }
            _ => {}
        }
        i += 1;
    }
}
