//! `xlint` — the workspace's in-repo invariant linter.
//!
//! A dependency-free static-analysis pass in the same spirit as
//! `shims/loom`: the project's unwritten rules (sync facade, memory-ordering
//! justification, panic-freedom of parse/driver paths, no stray I/O in
//! libraries) become machine-checked, with a `// xlint: allow(<rule>) —
//! <reason>` escape hatch for justified exceptions and a checked-in
//! baseline (`xlint.baseline`) that freezes — but never grows — legacy
//! debt. See DESIGN.md §"Static analysis" for the policy and `src/rules.rs`
//! for the rule definitions.
//!
//! Run it as `cargo run -p xlint` (human output) or
//! `cargo run -p xlint -- --format json` (machine-readable). Exit status is
//! non-zero when any non-baselined finding — or a stale baseline entry —
//! exists, which is what makes the CI job blocking.

pub mod analysis;
pub mod inventory;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use inventory::{build_inventory, render_inventory, Inventory, INVENTORY_SCHEMA};
pub use rules::{check_analysis, check_file, rule_covers, Finding, RULES};

use analysis::FileAnalysis;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Result of a workspace scan, after baseline application.
pub struct Report {
    /// Live findings: not allowed, not baselined. Non-empty ⇒ exit 1.
    pub findings: Vec<Finding>,
    /// Findings matched (and consumed) by baseline entries.
    pub baselined: usize,
    /// Baseline entries that matched nothing — the debt they froze is gone,
    /// so they must be deleted (stale entries also fail the run: the
    /// baseline may only shrink deliberately).
    pub stale: Vec<String>,
}

impl Report {
    /// True when the run should exit 0.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }
}

/// Collects every `.rs` file under any rule's scope, repo-relative with
/// `/` separators, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut set = std::collections::BTreeSet::new();
    for rule in RULES {
        for prefix in rule.scope {
            let dir = root.join(prefix);
            if dir.is_dir() {
                walk(&dir, root, &mut set)?;
            } else if dir.is_file() {
                if let Some(rel) = relpath(&dir, root) {
                    set.insert(rel);
                }
            }
        }
    }
    Ok(set.into_iter().collect())
}

fn relpath(p: &Path, root: &Path) -> Option<String> {
    let rel = p.strip_prefix(root).ok()?;
    let mut s = String::new();
    for c in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&c.as_os_str().to_string_lossy());
    }
    Some(s)
}

fn walk(dir: &Path, root: &Path, out: &mut std::collections::BTreeSet<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
        let hidden = name.as_deref().is_some_and(|n| n.starts_with('.'));
        if p.is_dir() {
            if !hidden && name.as_deref() != Some("target") {
                walk(&p, root, out)?;
            }
        } else if !hidden && p.extension().is_some_and(|e| e == "rs") {
            if let Some(rel) = relpath(&p, root) {
                out.insert(rel);
            }
        }
    }
    Ok(())
}

/// A full workspace scan: findings (allow escapes applied, baseline not
/// yet applied), per-phase wall time, and the invariant inventory.
pub struct ScanOutput {
    /// All findings, in (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// `("lex+parse", t)` followed by one `(rule name, t)` per rule —
    /// the `--timing` output. Lexing and parsing happen once per file and
    /// are shared by every rule, so they get their own phase entry.
    pub timings: Vec<(String, Duration)>,
    /// The atomic-site / unsafe inventory (`--atomics-json`).
    pub inventory: Inventory,
}

/// Scans the workspace under `root`: every file is lexed and parsed once,
/// then each rule runs over the shared analyses (timed per rule).
pub fn scan_workspace_full(root: &Path) -> io::Result<ScanOutput> {
    let t0 = Instant::now();
    let mut analyses = Vec::new();
    for rel in workspace_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        analyses.push(FileAnalysis::analyze(&rel, &src));
    }
    let mut timings = vec![("lex+parse".to_string(), t0.elapsed())];

    let mut per_file_raw: Vec<Vec<Finding>> = (0..analyses.len()).map(|_| Vec::new()).collect();
    for rule in RULES {
        let t = Instant::now();
        for (fi, fa) in analyses.iter().enumerate() {
            if rule_covers(rule, &fa.path) {
                (rule.check)(fa, &mut per_file_raw[fi]);
            }
        }
        timings.push((rule.name.to_string(), t.elapsed()));
    }

    let mut findings = Vec::new();
    for (fa, raw) in analyses.iter().zip(per_file_raw) {
        findings.extend(rules::finish_findings(fa, raw));
    }
    let inventory = build_inventory(&analyses);
    Ok(ScanOutput {
        findings,
        timings,
        inventory,
    })
}

/// Scans the workspace under `root` and returns all findings (allow
/// escapes applied, baseline not yet applied).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    scan_workspace_full(root).map(|s| s.findings)
}

/// Renders `--timing` output: one line per phase, microsecond precision.
pub fn render_timings(timings: &[(String, Duration)]) -> String {
    let mut s = String::from("xlint timing (lex+parse shared across all rules):\n");
    for (name, d) in timings {
        s.push_str(&format!(
            "  {:24} {:>9.3} ms\n",
            name,
            d.as_secs_f64() * 1e3
        ));
    }
    s
}

/// The frozen-debt baseline: tab-separated `rule<TAB>path<TAB>snippet`
/// lines (`#` comments and blank lines ignored). Matching is by trimmed
/// source line, not line number, so entries survive unrelated edits.
pub struct Baseline {
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    /// Loads `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        Ok(Self::parse(&text))
    }

    /// Parses baseline text (see type docs for the format).
    pub fn parse(text: &str) -> Baseline {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.splitn(3, '\t');
            if let (Some(r), Some(p), Some(s)) = (it.next(), it.next(), it.next()) {
                entries.push((r.to_string(), p.to_string(), s.to_string()));
            }
        }
        Baseline { entries }
    }

    /// Renders findings as baseline text (used by `--write-baseline`).
    pub fn render(findings: &[Finding]) -> String {
        let mut s = String::from(
            "# xlint frozen debt. One entry per tolerated finding:\n\
             # rule<TAB>path<TAB>trimmed source line.\n\
             # Entries may only be removed (by fixing the debt); xlint fails on\n\
             # stale entries and on findings not listed here.\n",
        );
        let mut rows: Vec<String> = findings
            .iter()
            .map(|f| format!("{}\t{}\t{}", f.rule, f.path, f.snippet))
            .collect();
        rows.sort();
        for r in rows {
            s.push_str(&r);
            s.push('\n');
        }
        s
    }

    /// Splits `findings` into live ones and baseline-consumed ones; each
    /// entry absorbs at most one finding, leftovers are reported stale.
    pub fn apply(&self, findings: Vec<Finding>) -> Report {
        let mut used = vec![false; self.entries.len()];
        let mut live = Vec::new();
        let mut baselined = 0usize;
        'next: for f in findings {
            for (k, (r, p, s)) in self.entries.iter().enumerate() {
                if !used[k] && *r == f.rule && *p == f.path && *s == f.snippet {
                    used[k] = true;
                    baselined += 1;
                    continue 'next;
                }
            }
            live.push(f);
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|((r, p, s), _)| format!("{r}\t{p}\t{s}"))
            .collect();
        Report {
            findings: live,
            baselined,
            stale,
        }
    }
}

/// Minimal JSON string escaping (the linter is dependency-free).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`Report`] as a single JSON object.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet)
        ));
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"baselined\": {},\n  \"stale_baseline\": [",
        report.baselined
    ));
    for (i, e) in report.stale.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\"", json_escape(e)));
    }
    if !report.stale.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Renders a [`Report`] for humans.
pub fn render_human(report: &Report) -> String {
    let mut s = String::new();
    for f in &report.findings {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.path, f.line, f.rule, f.message, f.snippet
        ));
    }
    for e in &report.stale {
        s.push_str(&format!(
            "stale baseline entry (debt was fixed — delete the line): {e}\n"
        ));
    }
    if report.clean() {
        s.push_str(&format!(
            "xlint: clean ({} baselined finding(s) tolerated)\n",
            report.baselined
        ));
    } else {
        s.push_str(&format!(
            "xlint: {} finding(s), {} stale baseline entr(y/ies), {} baselined\n",
            report.findings.len(),
            report.stale.len(),
            report.baselined
        ));
    }
    s
}
