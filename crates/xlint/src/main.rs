//! CLI entry point: `cargo run -p xlint [-- --format json] [--root DIR]`.
//!
//! Exit status: 0 when the workspace is clean (baselined debt tolerated),
//! 1 on any live finding or stale baseline entry, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::{render_inventory, render_timings, scan_workspace_full, Baseline};

const USAGE: &str = "\
xlint — workspace invariant linter

USAGE:
    cargo run -p xlint [-- OPTIONS]

OPTIONS:
    --format <human|json>   output format (default: human)
    --root <DIR>            workspace root (default: the repo this binary
                            was built from)
    --baseline <FILE>       frozen-debt file (default: <root>/xlint.baseline)
    --write-baseline        rewrite the baseline to freeze current findings
    --atomics-json          print the schema-versioned atomic-site / unsafe
                            inventory JSON and exit (does not lint)
    --timing                print per-rule wall time to stderr
    --list-rules            print the rules and exit
    --help                  this text
";

fn main() -> ExitCode {
    let mut format = String::from("human");
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut atomics_json = false;
    let mut timing = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" => format = f,
                _ => return usage_error("expected `--format human|json`"),
            },
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage_error("expected a directory after --root"),
            },
            "--baseline" => match args.next() {
                Some(b) => baseline_path = Some(PathBuf::from(b)),
                None => return usage_error("expected a file after --baseline"),
            },
            "--write-baseline" => write_baseline = true,
            "--atomics-json" => atomics_json = true,
            "--timing" => timing = true,
            "--list-rules" => {
                for r in xlint::RULES {
                    println!(
                        "{:24} {}",
                        r.name,
                        r.desc.split_whitespace().collect::<Vec<_>>().join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was compiled from — makes
    // `cargo run -p xlint` work from any cwd inside the repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("xlint.baseline"));

    let scan = match scan_workspace_full(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xlint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if timing {
        eprint!("{}", render_timings(&scan.timings));
    }

    if atomics_json {
        print!("{}", render_inventory(&scan.inventory));
        return ExitCode::SUCCESS;
    }

    let findings = scan.findings;
    if write_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("xlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "xlint: froze {} finding(s) into {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xlint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let report = baseline.apply(findings);
    match format.as_str() {
        "json" => print!("{}", xlint::render_json(&report)),
        _ => print!("{}", xlint::render_human(&report)),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("xlint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
