//! The machine-readable invariant inventory (`xlint --atomics-json`).
//!
//! Two tables, both derived from the same per-file analysis the rules run
//! on: every atomic op site in the scheduler grouped per field (with its
//! actual `Ordering` arguments, enclosing fn and justification status),
//! and every `unsafe` site in the workspace with its `// safety:` status.
//! Schema-versioned (`xlint-inventory-v1`) and byte-deterministic — sorted
//! by path, then field, then line — so CI can pin a golden fixture and
//! diff artifacts across runs.

use crate::analysis::{atomic_sites, unsafe_sites, AtomicSite, FileAnalysis, UnsafeSite};
use crate::json_escape;
use crate::rules::{rule_covers, RULES};

/// Schema tag emitted in the JSON (bump on any shape change).
pub const INVENTORY_SCHEMA: &str = "xlint-inventory-v1";

/// One per-field group of atomic sites.
pub struct AtomicFieldEntry {
    /// Repo-relative path of the file the sites live in.
    pub path: String,
    /// Receiver field (`"(fence)"` for fences, `"(expr)"` when the
    /// receiver is not a field chain).
    pub field: String,
    /// The field's sites in line order.
    pub sites: Vec<AtomicSite>,
}

/// One `unsafe` site with its file.
pub struct UnsafeEntry {
    /// Repo-relative path.
    pub path: String,
    /// The site.
    pub site: UnsafeSite,
}

/// The full inventory.
pub struct Inventory {
    /// Atomic sites per (path, field), sorted.
    pub atomics: Vec<AtomicFieldEntry>,
    /// Unsafe sites, sorted by (path, line).
    pub unsafes: Vec<UnsafeEntry>,
}

/// Builds the inventory from analyzed files. Atomic sites come from files
/// in the `atomic-ordering` scope, unsafe sites from the `unsafe-inventory`
/// scope, so the inventory and the rules always agree on coverage.
pub fn build_inventory(analyses: &[FileAnalysis]) -> Inventory {
    let atomic_rule = RULES.iter().find(|r| r.name == "atomic-ordering");
    let unsafe_rule = RULES.iter().find(|r| r.name == "unsafe-inventory");

    let mut atomics: Vec<AtomicFieldEntry> = Vec::new();
    let mut unsafes: Vec<UnsafeEntry> = Vec::new();
    for fa in analyses {
        if atomic_rule.is_some_and(|r| rule_covers(r, &fa.path)) {
            let mut by_field: Vec<AtomicFieldEntry> = Vec::new();
            for site in atomic_sites(fa) {
                match by_field.iter_mut().find(|e| e.field == site.field) {
                    Some(e) => e.sites.push(site),
                    None => by_field.push(AtomicFieldEntry {
                        path: fa.path.clone(),
                        field: site.field.clone(),
                        sites: vec![site],
                    }),
                }
            }
            by_field.sort_by(|a, b| a.field.cmp(&b.field));
            for e in &mut by_field {
                e.sites.sort_by_key(|s| s.line);
            }
            atomics.extend(by_field);
        }
        if unsafe_rule.is_some_and(|r| rule_covers(r, &fa.path)) {
            for site in unsafe_sites(fa) {
                unsafes.push(UnsafeEntry {
                    path: fa.path.clone(),
                    site,
                });
            }
        }
    }
    // Files arrive in sorted order from `workspace_files`, but sort again
    // so direct calls with unordered analyses stay deterministic.
    atomics.sort_by(|a, b| (&a.path, &a.field).cmp(&(&b.path, &b.field)));
    unsafes.sort_by(|a, b| (&a.path, a.site.line).cmp(&(&b.path, b.site.line)));
    Inventory { atomics, unsafes }
}

fn push_opt_str(s: &mut String, key: &str, v: &Option<String>) {
    match v {
        Some(x) => s.push_str(&format!("\"{}\": \"{}\"", key, json_escape(x))),
        None => s.push_str(&format!("\"{key}\": null")),
    }
}

/// Renders the inventory as schema-versioned JSON (RFC 8259; validated by
/// the test suite against the workspace's own validator).
pub fn render_inventory(inv: &Inventory) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{INVENTORY_SCHEMA}\",\n"));
    s.push_str("  \"atomics\": [");
    for (ei, e) in inv.atomics.iter().enumerate() {
        if ei > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"field\": \"{}\", \"sites\": [",
            json_escape(&e.path),
            json_escape(&e.field)
        ));
        for (si, site) in e.sites.iter().enumerate() {
            if si > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"line\": {}, \"op\": \"{}\", \"orderings\": [",
                site.line,
                json_escape(&site.op)
            ));
            for (oi, o) in site.orderings.iter().enumerate() {
                if oi > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\"", json_escape(o)));
            }
            s.push_str("], ");
            push_opt_str(&mut s, "fn", &site.func);
            s.push_str(&format!(
                ", \"justified\": {}}}",
                if site.comment.is_some() {
                    "true"
                } else {
                    "false"
                }
            ));
        }
        if !e.sites.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]}");
    }
    if !inv.atomics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"unsafe\": [");
    for (ui, u) in inv.unsafes.iter().enumerate() {
        if ui > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"kind\": \"{}\", ",
            json_escape(&u.path),
            u.site.line,
            u.site.kind
        ));
        push_opt_str(&mut s, "fn", &u.site.func);
        s.push_str(&format!(
            ", \"safety\": {}}}",
            if u.site.has_safety { "true" } else { "false" }
        ));
    }
    if !inv.unsafes.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}
