//! A lightweight item/brace-tree parser on top of the lossless lexer.
//!
//! This is deliberately **not** a Rust grammar: the semantic rules only
//! need to know (a) which item (`fn` / `mod` / `impl` / `trait`) encloses a
//! token, (b) where braced blocks open and close, and (c) where calls
//! happen — the callee name, the receiver chain of a method call, and the
//! token range of each argument. All three are recoverable from the token
//! stream with a brace/paren matcher and a few keyword look-aheads, which
//! keeps the linter dependency-free and immune to new syntax it does not
//! care about (unknown constructs simply parse as "tokens inside some
//! block").
//!
//! The parser is total: unbalanced input never panics, it just yields a
//! best-effort tree (missing closers are clamped to the end of the file).
//! The hostile-input proptests pin both totality and the lexer's
//! byte-lossless spans.

use crate::lexer::{Tok, TokKind};

/// What kind of item a node of the item tree is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` (inline only; `mod name;` has no body to index).
    Mod,
    /// `fn name(…) { … }` — free functions and methods alike.
    Fn,
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Impl {
        /// Trait path's last segment, when this is a trait impl.
        trait_name: Option<String>,
        /// Self-type path's last segment (`String` for `impl String`, …).
        type_name: String,
    },
    /// `trait Name { … }`.
    Trait,
}

/// One node of the item tree.
#[derive(Clone, Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Item name (`fn`/`mod`/`trait` name; the self-type for impls).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// Token index of the introducing keyword.
    pub kw_tok: usize,
    /// Token index of the body's `{` (== `body_close` when body-less).
    pub body_open: usize,
    /// Token index of the matching `}` (clamped to `toks.len()` when the
    /// file ends mid-item).
    pub body_close: usize,
    /// Nested items, in source order.
    pub children: Vec<Item>,
}

impl Item {
    /// True when token index `i` lies inside this item's body.
    pub fn contains(&self, i: usize) -> bool {
        self.body_open < i && i < self.body_close
    }
}

/// One call site: `name(args…)` or `recv.name(args…)`.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name (the identifier directly before the `(`).
    pub name: String,
    /// True for method calls (`recv.name(…)`).
    pub method: bool,
    /// For method calls: the last plain field identifier of the receiver
    /// chain, with trailing index groups stripped — `self.stats[w].steals`
    /// yields `steals`, `pool.done` yields `done`, `self.0` yields `0`.
    pub recv_field: Option<String>,
    /// Token index of the callee identifier.
    pub name_tok: usize,
    /// Token index of the opening `(`.
    pub open_paren: usize,
    /// Token index of the matching `)` (clamped like item bodies).
    pub close_paren: usize,
    /// Half-open token ranges of the top-level arguments, commas excluded.
    pub args: Vec<(usize, usize)>,
    /// 1-based line of the callee identifier.
    pub line: usize,
}

/// The parsed view of one file's tokens: item tree, brace matching, and
/// call sites. Built once per file and shared by every rule.
#[derive(Debug, Default)]
pub struct ParseTree {
    /// Top-level items (nesting in `Item::children`).
    pub items: Vec<Item>,
    /// For each token index holding `{`, the index of its matching `}`
    /// (`toks.len()` when unclosed).
    pub brace_match: Vec<(usize, usize)>,
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
}

impl ParseTree {
    /// Matching `}` for the `{` at token index `open` (clamped to the
    /// token count when the brace never closes).
    pub fn close_of(&self, open: usize, ntoks: usize) -> usize {
        self.brace_match
            .iter()
            .find(|&&(o, _)| o == open)
            .map(|&(_, c)| c)
            .unwrap_or(ntoks)
    }

    /// Innermost `fn` item containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&Item> {
        fn walk<'t>(items: &'t [Item], i: usize, best: &mut Option<&'t Item>) {
            for it in items {
                if it.contains(i) {
                    if it.kind == ItemKind::Fn {
                        *best = Some(it);
                    }
                    walk(&it.children, i, best);
                }
            }
        }
        let mut best = None;
        walk(&self.items, i, &mut best);
        best
    }

    /// Innermost item of any kind containing token index `i`.
    pub fn enclosing_item(&self, i: usize) -> Option<&Item> {
        fn walk<'t>(items: &'t [Item], i: usize, best: &mut Option<&'t Item>) {
            for it in items {
                if it.contains(i) {
                    *best = Some(it);
                    walk(&it.children, i, best);
                }
            }
        }
        let mut best = None;
        walk(&self.items, i, &mut best);
        best
    }
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Indices of non-comment tokens, with a map back to raw indices. Comments
/// are transparent to item and call structure.
fn code_indices(toks: &[Tok]) -> Vec<usize> {
    (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect()
}

/// Parses the token stream into a [`ParseTree`]. Total: never panics,
/// tolerates unbalanced and hostile input.
pub fn parse(toks: &[Tok]) -> ParseTree {
    let code = code_indices(toks);
    let brace_match = match_braces(toks, &code);
    let items = parse_items(toks, &code, &brace_match);
    let calls = extract_calls(toks, &code);
    ParseTree {
        items,
        brace_match,
        calls,
    }
}

/// Stack-matches `{`/`}` over the code tokens. Unmatched `{` map to
/// `toks.len()`; unmatched `}` are ignored.
fn match_braces(toks: &[Tok], code: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for &i in code {
        match toks[i].kind {
            TokKind::Punct('{') => stack.push(i),
            TokKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    out.push((open, i));
                }
            }
            _ => {}
        }
    }
    for open in stack {
        out.push((open, toks.len()));
    }
    out.sort_unstable();
    out
}

/// Matching `}` for `{` at raw index `open`, via a sorted match list.
fn close_for(brace_match: &[(usize, usize)], open: usize, ntoks: usize) -> usize {
    brace_match
        .binary_search_by_key(&open, |&(o, _)| o)
        .map(|k| brace_match[k].1)
        .unwrap_or(ntoks)
}

/// Recursive-descent over the code tokens: collect `fn`/`mod`/`impl`/
/// `trait` headers and recurse into their bodies.
fn parse_items(toks: &[Tok], code: &[usize], brace_match: &[(usize, usize)]) -> Vec<Item> {
    let mut items = Vec::new();
    parse_region(toks, code, brace_match, 0, code.len(), &mut items, 0);
    items
}

/// Parses code-token positions `[from, to)` (indices into `code`).
/// `depth` bounds recursion on pathological nesting.
fn parse_region(
    toks: &[Tok],
    code: &[usize],
    brace_match: &[(usize, usize)],
    from: usize,
    to: usize,
    out: &mut Vec<Item>,
    depth: usize,
) {
    if depth > 64 {
        return; // hostile nesting: stop indexing, never recurse forever
    }
    let mut k = from;
    while k < to {
        let i = code[k];
        let t = &toks[i];
        let header = if is_ident(t, "fn") {
            parse_fn_header(toks, code, k, to)
        } else if is_ident(t, "mod") {
            parse_named_header(toks, code, k, to, ItemKind::Mod)
        } else if is_ident(t, "trait") {
            parse_named_header(toks, code, k, to, ItemKind::Trait)
        } else if is_ident(t, "impl") {
            parse_impl_header(toks, code, k, to)
        } else {
            None
        };
        let Some((kind, name, open_k)) = header else {
            // Skip block bodies that aren't items (match arms, closures…):
            // recursion happens through items only; stray braces just pass.
            k += 1;
            continue;
        };
        let open_i = code[open_k];
        let close_i = close_for(brace_match, open_i, toks.len());
        // Children live strictly inside the body's code-token range.
        let body_end_k = code.partition_point(|&c| c < close_i);
        let mut children = Vec::new();
        parse_region(
            toks,
            code,
            brace_match,
            open_k + 1,
            body_end_k,
            &mut children,
            depth + 1,
        );
        out.push(Item {
            kind,
            name,
            line: t.line,
            kw_tok: i,
            body_open: open_i,
            body_close: close_i,
            children,
        });
        k = body_end_k.max(open_k + 1);
        if k < code.len() && code[k] == close_i {
            k += 1; // step past the `}` itself
        }
    }
}

/// `fn name …angle/paren soup… {` — finds the body `{` by skipping one
/// balanced `(…)` group (the params) and then scanning to the first `{`
/// at angle-free top level (the return type may mention braces only
/// inside `(…)`/`[…]` groups, which we skip too).
fn parse_fn_header(
    toks: &[Tok],
    code: &[usize],
    k: usize,
    to: usize,
) -> Option<(ItemKind, String, usize)> {
    let name_k = k + 1;
    if name_k >= to || toks[code[name_k]].kind != TokKind::Ident {
        return None;
    }
    let name = toks[code[name_k]].text.clone();
    let mut j = name_k + 1;
    let mut par = 0isize;
    let mut brk = 0isize;
    while j < to {
        match toks[code[j]].kind {
            TokKind::Punct('(') => par += 1,
            TokKind::Punct(')') => par -= 1,
            TokKind::Punct('[') => brk += 1,
            TokKind::Punct(']') => brk -= 1,
            TokKind::Punct('{') if par == 0 && brk == 0 => {
                return Some((ItemKind::Fn, name, j));
            }
            // `fn f();` — no body (trait method, extern): not indexed.
            TokKind::Punct(';') if par == 0 && brk == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// `mod name {` / `trait Name {` (body-less forms yield no item).
fn parse_named_header(
    toks: &[Tok],
    code: &[usize],
    k: usize,
    to: usize,
    kind: ItemKind,
) -> Option<(ItemKind, String, usize)> {
    let name_k = k + 1;
    if name_k >= to || toks[code[name_k]].kind != TokKind::Ident {
        return None;
    }
    let name = toks[code[name_k]].text.clone();
    let mut j = name_k + 1;
    while j < to {
        match toks[code[j]].kind {
            TokKind::Punct('{') => return Some((kind, name, j)),
            TokKind::Punct(';') => return None,
            _ => {
                j += 1;
            }
        }
    }
    None
}

/// `impl<…> Trait for Type {` / `impl<…> Type {`. Trait and type names are
/// the last path segment before `for` / `{`; generic arguments are skipped
/// by ignoring idents inside `<…>` nesting.
fn parse_impl_header(
    toks: &[Tok],
    code: &[usize],
    k: usize,
    to: usize,
) -> Option<(ItemKind, String, usize)> {
    let mut j = k + 1;
    let mut angle = 0isize;
    let mut before_for: Option<String> = None; // last top-level ident seen
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < to {
        let t = &toks[code[j]];
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('{') if angle <= 0 => {
                let (trait_name, type_name) = if saw_for {
                    (before_for, after_for?)
                } else {
                    (None, before_for?)
                };
                return Some((
                    ItemKind::Impl {
                        trait_name,
                        type_name: type_name.clone(),
                    },
                    type_name,
                    j,
                ));
            }
            TokKind::Punct(';') if angle <= 0 => return None,
            TokKind::Ident if angle == 0 => {
                if t.text == "for" {
                    saw_for = true;
                } else if t.text != "where" && t.text != "dyn" && t.text != "mut" {
                    if saw_for {
                        after_for = Some(t.text.clone());
                    } else {
                        before_for = Some(t.text.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scans for `ident (` and `. ident (` shapes and extracts callee, receiver
/// field and argument ranges. Keyword heads (`if (…)`, `while (…)`, …) are
/// excluded.
fn extract_calls(toks: &[Tok], code: &[usize]) -> Vec<CallSite> {
    const NOT_CALLEES: &[&str] = &[
        "if", "while", "for", "match", "return", "in", "as", "let", "fn", "move", "loop", "else",
        "unsafe", "ref", "mut", "box", "yield", "await",
    ];
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        if toks[i].kind != TokKind::Ident || NOT_CALLEES.contains(&toks[i].text.as_str()) {
            continue;
        }
        let Some(&open_i) = code.get(k + 1) else {
            continue;
        };
        if toks[open_i].kind != TokKind::Punct('(') {
            continue;
        }
        let method = k > 0 && toks[code[k - 1]].kind == TokKind::Punct('.');
        let recv_field = if method {
            receiver_field(toks, code, k - 1)
        } else {
            None
        };
        // Match the argument parens and split top-level commas.
        let mut depth = 0isize;
        let mut args: Vec<(usize, usize)> = Vec::new();
        let mut arg_start = open_i + 1;
        let mut close_i = toks.len();
        for &j in &code[k + 1..] {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close_i = j;
                        break;
                    }
                }
                TokKind::Punct(',') if depth == 1 => {
                    args.push((arg_start, j));
                    arg_start = j + 1;
                }
                _ => {}
            }
        }
        if close_i > arg_start || !args.is_empty() {
            args.push((arg_start, close_i.min(toks.len())));
        }
        // An empty-parens call still deserves a site (zero args).
        out.push(CallSite {
            name: toks[i].text.clone(),
            method,
            recv_field,
            name_tok: i,
            open_paren: open_i,
            close_paren: close_i,
            args: args.into_iter().filter(|&(a, b)| b > a).collect::<Vec<_>>(),
            line: toks[i].line,
        });
    }
    out
}

/// Walks the receiver chain backwards from the `.` at code position
/// `dot_k` and returns the last plain field identifier (index groups
/// stripped): `self.stats[w].steals.load(…)` → `steals`.
fn receiver_field(toks: &[Tok], code: &[usize], dot_k: usize) -> Option<String> {
    let mut k = dot_k; // points at the `.` before the callee
    let mut field: Option<String> = None;
    loop {
        if k == 0 {
            break;
        }
        k -= 1;
        let t = &toks[code[k]];
        match &t.kind {
            // Skip a balanced index/call group backwards.
            TokKind::Punct(']') | TokKind::Punct(')') => {
                let mut depth = 0isize;
                loop {
                    let t = &toks[code[k]];
                    match t.kind {
                        TokKind::Punct(']') | TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('[') | TokKind::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return field;
                    }
                    k -= 1;
                }
            }
            TokKind::Ident | TokKind::Num => {
                if field.is_none() && t.text != "self" {
                    field = Some(t.text.clone());
                }
                // A further `.`/`::` continues the chain; anything else
                // terminates it.
                if k == 0 {
                    break;
                }
                let prev = &toks[code[k - 1]];
                match prev.kind {
                    TokKind::Punct('.') | TokKind::Punct(':') => {
                        k -= 1; // consume the separator and continue
                    }
                    _ => break,
                }
            }
            TokKind::Punct('.') | TokKind::Punct(':') => {}
            _ => break,
        }
    }
    field
}
