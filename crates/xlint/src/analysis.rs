//! Per-file semantic analysis shared by every rule.
//!
//! [`FileAnalysis`] lexes, test-marks and parses a file exactly once; the
//! nine rules then run over the shared token stream, item tree and comment
//! index (before this layer, every rule re-lexed the file — 4× per file
//! then, 9× now — which `--timing` made visible and this refactor fixed).
//!
//! The comment index generalizes the `// ordering:` window of the original
//! linter into *marker runs*: consecutive-line comment runs carrying a
//! marker (`ordering:`, `arith:`, `safety:`) justify code within
//! [`JUSTIFY_WINDOW`] lines below the run, and rules can read the run's
//! *text* — which is what lets the flow-aware rules check that a declared
//! ordering actually matches the code.

use crate::lexer::{lex_marked, Tok, TokKind};
use crate::parser::{parse, ParseTree};

/// How many lines above a use a marker comment may sit and still justify
/// it (same line always counts). Shared by `ordering:`, `arith:` and
/// `safety:` markers.
pub const JUSTIFY_WINDOW: usize = 4;

/// The five memory orderings, as they appear in source and comments.
pub const ORDERING_NAMES: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];

/// One run of consecutive single-line comments (or one block comment),
/// with the concatenated text rules match markers against.
#[derive(Clone, Debug)]
pub struct CommentRun {
    /// 1-based first line of the run.
    pub first_line: usize,
    /// 1-based last line of the run.
    pub last_line: usize,
    /// Concatenated comment text (comment markers included).
    pub text: String,
}

impl CommentRun {
    /// True when this run justifies code on `line`: the run carries the
    /// marker and ends within [`JUSTIFY_WINDOW`] lines above (the marker
    /// line itself may sit higher — multi-line justifications count from
    /// their marker through their last line).
    fn covers(&self, marker_line: usize, line: usize) -> bool {
        let lo = line.saturating_sub(JUSTIFY_WINDOW);
        // Any covered line of the run within the window.
        marker_line <= line
            && self.last_line >= lo
            && marker_line.max(lo) <= self.last_line.min(line)
    }
}

/// An `xlint: allow(rule)` escape comment, attached to the lines it covers.
pub struct Allow {
    /// Rule the escape names.
    pub rule: String,
    /// The comment's last line; it suppresses findings there and one below.
    pub end_line: usize,
}

/// Comment-derived context for one file: marker runs (`ordering:`,
/// `arith:`, `safety:`), allow escapes, and malformed escapes.
pub struct CommentIndex {
    runs: Vec<CommentRun>,
    /// `(run index, marker line)` per marker kind.
    ordering_runs: Vec<(usize, usize)>,
    arith_runs: Vec<(usize, usize)>,
    safety_runs: Vec<(usize, usize)>,
    /// Valid allow escapes.
    pub allows: Vec<Allow>,
    /// Lines of malformed allow escapes (missing rule or reason).
    pub bad_allow_lines: Vec<usize>,
}

fn marker_line_of(toks: &[&Tok], marker: &str, lower: bool) -> Option<usize> {
    toks.iter()
        .find(|c| {
            if lower {
                c.text.to_ascii_lowercase().contains(marker)
            } else {
                c.text.contains(marker)
            }
        })
        .map(|c| c.line)
}

impl CommentIndex {
    /// Builds the index from the file's tokens.
    pub fn build(toks: &[Tok]) -> Self {
        let comments: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        let mut runs = Vec::new();
        let mut ordering_runs = Vec::new();
        let mut arith_runs = Vec::new();
        let mut safety_runs = Vec::new();
        // A `//` block is one comment per line to the lexer; merge
        // consecutive-line comments into runs so a multi-line
        // justification covers through its last line.
        let mut i = 0;
        while i < comments.len() {
            let mut j = i;
            while j + 1 < comments.len() && comments[j + 1].line == comments[j].end_line + 1 {
                j += 1;
            }
            let group = &comments[i..=j];
            let mut text = String::new();
            for c in group {
                if !text.is_empty() {
                    text.push('\n');
                }
                text.push_str(&c.text);
            }
            let run = CommentRun {
                first_line: group[0].line,
                last_line: group[j - i].end_line,
                text,
            };
            let rid = runs.len();
            if let Some(l) = marker_line_of(group, "ordering:", false) {
                ordering_runs.push((rid, l));
            }
            if let Some(l) = marker_line_of(group, "arith:", false) {
                arith_runs.push((rid, l));
            }
            if let Some(l) = marker_line_of(group, "safety:", true) {
                safety_runs.push((rid, l));
            }
            runs.push(run);
            i = j + 1;
        }

        let mut allows = Vec::new();
        let mut bad_allow_lines = Vec::new();
        for t in &comments {
            let mut rest = t.text.as_str();
            while let Some(at) = rest.find("xlint: allow(") {
                let after = &rest[at + "xlint: allow(".len()..];
                let Some(close) = after.find(')') else {
                    break;
                };
                let rule = after[..close].trim().to_string();
                let reason = after[close + 1..]
                    .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
                    .trim();
                if rule.is_empty() || reason.is_empty() {
                    bad_allow_lines.push(t.line);
                } else {
                    allows.push(Allow {
                        rule,
                        end_line: t.end_line,
                    });
                }
                rest = &after[close + 1..];
            }
        }
        CommentIndex {
            runs,
            ordering_runs,
            arith_runs,
            safety_runs,
            allows,
            bad_allow_lines,
        }
    }

    fn lookup(&self, which: &[(usize, usize)], line: usize) -> Option<&CommentRun> {
        which
            .iter()
            .map(|&(rid, ml)| (&self.runs[rid], ml))
            .filter(|(r, ml)| r.covers(*ml, line))
            .max_by_key(|(r, _)| r.last_line)
            .map(|(r, _)| r)
    }

    /// The concatenated text of every `// ordering:` run justifying `line`
    /// (`None` when no run covers it). Dense atomic code legitimately has
    /// several justification runs inside one window — a site is judged
    /// against all of them, so a comment about a neighbouring site cannot
    /// turn a correctly-documented one into a mismatch.
    pub fn ordering_text(&self, line: usize) -> Option<String> {
        let texts: Vec<&str> = self
            .ordering_runs
            .iter()
            .map(|&(rid, ml)| (&self.runs[rid], ml))
            .filter(|(r, ml)| r.covers(*ml, line))
            .map(|(r, _)| r.text.as_str())
            .collect();
        if texts.is_empty() {
            None
        } else {
            Some(texts.join("\n"))
        }
    }

    /// The `// arith:` run justifying `line`, if any.
    pub fn arith_run(&self, line: usize) -> Option<&CommentRun> {
        self.lookup(&self.arith_runs, line)
    }

    /// The `// safety:` run justifying `line`, if any.
    pub fn safety_run(&self, line: usize) -> Option<&CommentRun> {
        self.lookup(&self.safety_runs, line)
    }

    /// True when a matching allow escape covers (`rule`, `line`).
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.end_line == line || a.end_line + 1 == line))
    }
}

/// Memory orderings a comment run names, in [`ORDERING_NAMES`] order.
pub fn named_orderings(text: &str) -> Vec<&'static str> {
    ORDERING_NAMES
        .iter()
        .copied()
        .filter(|n| text.contains(n))
        .collect()
}

/// The fully analyzed file every rule runs against: source, tokens (with
/// byte spans and test-region marks), item/call tree, and comment index.
/// Built exactly once per file per scan.
pub struct FileAnalysis {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// The file's source text.
    pub src: String,
    /// Lossless token stream (`in_test` filled).
    pub toks: Vec<Tok>,
    /// Item tree, brace matching, call sites.
    pub tree: ParseTree,
    /// Marker runs and allow escapes.
    pub comments: CommentIndex,
    /// Indices into `toks` of code tokens: not comments, not test code.
    pub code: Vec<usize>,
    /// Byte span of each 1-based line (index 0 unused).
    line_spans: Vec<(usize, usize)>,
}

impl FileAnalysis {
    /// Lexes, marks and parses `src` once.
    pub fn analyze(path: &str, src: &str) -> FileAnalysis {
        let toks = lex_marked(src);
        let tree = parse(&toks);
        let comments = CommentIndex::build(&toks);
        let code = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment && !toks[i].in_test)
            .collect();
        let mut line_spans = vec![(0, 0)];
        let mut start = 0;
        for (off, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_spans.push((start, off));
                start = off + 1;
            }
        }
        line_spans.push((start, src.len()));
        FileAnalysis {
            path: path.to_string(),
            src: src.to_string(),
            toks,
            tree,
            comments,
            code,
            line_spans,
        }
    }

    /// The trimmed text of 1-based `line` (empty when out of range).
    pub fn snippet(&self, line: usize) -> String {
        self.line_spans
            .get(line)
            .map(|&(a, b)| self.src[a..b].trim().to_string())
            .unwrap_or_default()
    }

    /// True when any line in the justify window above `line` (inclusive)
    /// contains one of `needles` — used for `checked_*`/`debug_assert!`
    /// guard detection by the unchecked-arithmetic rule.
    pub fn window_contains(&self, line: usize, needles: &[&str]) -> bool {
        let lo = line.saturating_sub(JUSTIFY_WINDOW).max(1);
        (lo..=line).any(|l| {
            self.line_spans
                .get(l)
                .is_some_and(|&(a, b)| needles.iter().any(|n| self.src[a..b].contains(n)))
        })
    }

    /// Token at code position `k` (the comment-and-test-free view).
    pub fn ct(&self, k: usize) -> &Tok {
        &self.toks[self.code[k]]
    }
}

// ---------------------------------------------------------------------------
// Site extraction: atomics and unsafe. Shared by the rules and the
// machine-readable inventory (`xlint --atomics-json`).
// ---------------------------------------------------------------------------

/// Atomic method names that take an `Ordering` argument.
pub const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Ops whose success effect is a write (for release-side asymmetry).
pub const WRITE_OPS: &[&str] = &[
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// One extracted atomic operation site.
#[derive(Clone, Debug)]
pub struct AtomicSite {
    /// 1-based line of the call.
    pub line: usize,
    /// Receiver field the atomic lives in (`"(fence)"` for fences).
    pub field: String,
    /// Operation (`load`, `store`, `compare_exchange`, …, `fence`).
    pub op: String,
    /// `Ordering` arguments, in argument order; CAS orderings carry their
    /// role (`"success:SeqCst"`, `"failure:Relaxed"`), plain ops are bare.
    pub orderings: Vec<String>,
    /// Enclosing function, when the item parser found one.
    pub func: Option<String>,
    /// Text of the justifying `// ordering:` run, when present.
    pub comment: Option<String>,
}

impl AtomicSite {
    /// Bare ordering names (roles stripped), for checks.
    pub fn ordering_names(&self) -> Vec<&str> {
        self.orderings
            .iter()
            .map(|o| o.rsplit(':').next().unwrap_or(o))
            .collect()
    }
}

/// Orderings mentioned in a token range, as `Ordering::X` path tokens.
fn orderings_in_range(fa: &FileAnalysis, range: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    let toks = &fa.toks;
    let mut i = range.0;
    while i + 3 <= range.1.min(toks.len()) {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "Ordering"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Punct(':'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Punct(':'))
            && toks.get(i + 3).is_some_and(|t| {
                t.kind == TokKind::Ident && ORDERING_NAMES.contains(&t.text.as_str())
            })
        {
            out.push(toks[i + 3].text.clone());
            i += 4;
        } else {
            i += 1;
        }
    }
    out
}

/// Extracts every atomic op site (method calls with an `Ordering` argument
/// plus `fence(…)` calls) outside test code.
pub fn atomic_sites(fa: &FileAnalysis) -> Vec<AtomicSite> {
    let mut out = Vec::new();
    for call in &fa.tree.calls {
        if fa.toks[call.name_tok].in_test {
            continue;
        }
        let is_fence = !call.method && call.name == "fence";
        let is_atomic = call.method && ATOMIC_OPS.contains(&call.name.as_str());
        if !is_fence && !is_atomic {
            continue;
        }
        let per_arg: Vec<Vec<String>> = call
            .args
            .iter()
            .map(|&r| orderings_in_range(fa, r))
            .collect();
        let found: usize = per_arg.iter().map(|v| v.len()).sum();
        if found == 0 {
            continue; // e.g. an unrelated `load(…)` method
        }
        let cas = call.name.starts_with("compare_exchange");
        let mut orderings = Vec::new();
        for (ai, args) in per_arg.iter().enumerate() {
            for o in args {
                if cas && per_arg.len() >= 4 {
                    // compare_exchange(current, new, success, failure)
                    let role = match ai {
                        2 => "success:",
                        3 => "failure:",
                        _ => "",
                    };
                    orderings.push(format!("{role}{o}"));
                } else if call.name == "fetch_update" && per_arg.len() >= 3 {
                    let role = match ai {
                        0 => "set:",
                        1 => "fetch:",
                        _ => "",
                    };
                    orderings.push(format!("{role}{o}"));
                } else {
                    orderings.push(o.clone());
                }
            }
        }
        out.push(AtomicSite {
            line: call.line,
            field: if is_fence {
                "(fence)".to_string()
            } else {
                call.recv_field.clone().unwrap_or_else(|| "(expr)".into())
            },
            op: if is_fence {
                "fence".into()
            } else {
                call.name.clone()
            },
            orderings,
            func: fa.tree.enclosing_fn(call.name_tok).map(|f| f.name.clone()),
            comment: fa.comments.ordering_text(call.line),
        });
    }
    out
}

/// One `unsafe` site.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// `block`, `fn`, `impl`, or `other`.
    pub kind: &'static str,
    /// Enclosing function, when inside one.
    pub func: Option<String>,
    /// True when a `// safety:` run justifies the site.
    pub has_safety: bool,
}

/// Extracts every `unsafe` keyword site outside test code.
pub fn unsafe_sites(fa: &FileAnalysis) -> Vec<UnsafeSite> {
    let mut out = Vec::new();
    for k in 0..fa.code.len() {
        let t = fa.ct(k);
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let kind = match fa.code.get(k + 1).map(|&i| &fa.toks[i]) {
            Some(n) if n.kind == TokKind::Punct('{') => "block",
            Some(n) if n.kind == TokKind::Ident && n.text == "fn" => "fn",
            Some(n) if n.kind == TokKind::Ident && n.text == "impl" => "impl",
            Some(n) if n.kind == TokKind::Ident && n.text == "trait" => "trait",
            _ => "other",
        };
        out.push(UnsafeSite {
            line: t.line,
            kind,
            func: fa.tree.enclosing_fn(fa.code[k]).map(|f| f.name.clone()),
            has_safety: fa.comments.safety_run(t.line).is_some(),
        });
    }
    out
}
