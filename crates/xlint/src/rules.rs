//! The rule engine: nine workspace invariants, the
//! `// xlint: allow(<rule>) — <reason>` escape hatch, and the per-file
//! check driver.
//!
//! | rule                     | invariant                                            |
//! |--------------------------|------------------------------------------------------|
//! | `sync-facade`            | no `std::sync`/`std::thread::spawn` in `crates/parallel` outside `sync.rs` |
//! | `ordering-justification` | every `Ordering::SeqCst`/`Relaxed` carries `// ordering:` nearby, and the comment must not declare a different ordering |
//! | `panic-freedom`          | no `.unwrap()` / `.expect(` / `panic!` in `phylo`/`core` library code |
//! | `no-stray-io`            | no `println!`/`eprintln!` in library crates          |
//! | `atomic-ordering`        | atomic-site dataflow: comment/code ordering agreement on Acquire/Release sites, no Release-class write read by an unjustified `Relaxed` load |
//! | `lock-scope`             | no `MutexGuard` held across `park()`, a foreign `Condvar::wait`, or a call into the explore kernels |
//! | `sink-error-latching`    | a `StandSink` impl that latches an error must surface it from `finish()` |
//! | `unchecked-arithmetic`   | wire-format arithmetic (varint, phylo2vec) must be guarded or justified |
//! | `unsafe-inventory`       | every `unsafe` carries a `// safety:` comment         |
//!
//! All rules ignore test code (see `lexer::mark_test_regions`), comments
//! and string literals, and share one lex+parse per file (`FileAnalysis`).
//! Scopes are path prefixes (or single files) relative to the repo root
//! with `/` separators.
//!
//! Division of labour between the two atomic rules: `ordering-justification`
//! owns `Ordering::SeqCst`/`Relaxed` *token sites* — presence of a nearby
//! `// ordering:` comment plus the declared-vs-actual mismatch check — while
//! `atomic-ordering` reasons about *call sites* (which field, which op,
//! which orderings travel together) and so owns the Acquire/Release-family
//! mismatches and the per-field release/relaxed asymmetry analysis. A
//! comment that names no ordering at all stays presence-justified: prose
//! like "monotonic diagnostic counter" is a valid justification.

use crate::analysis::{atomic_sites, named_orderings, unsafe_sites, AtomicSite, FileAnalysis};
use crate::lexer::{Tok, TokKind};
use crate::parser::{Item, ItemKind};

/// One rule violation (or escape-hatch misuse) at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`sync-facade`, …, or `allow-syntax` for a malformed
    /// escape comment).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The trimmed source line (doubles as the baseline fingerprint, so
    /// entries survive unrelated line-number drift).
    pub snippet: String,
}

/// A rule's check pass over one analyzed file. Pushes raw findings; the
/// driver applies scope, allow escapes and the baseline.
pub type RuleCheck = fn(&FileAnalysis, &mut Vec<Finding>);

/// A lint rule: name, what it protects, where it applies, and its check.
pub struct Rule {
    /// Stable rule name used in findings, allow-comments and the baseline.
    pub name: &'static str,
    /// One-line description (shown by `--list-rules` and in DESIGN.md).
    pub desc: &'static str,
    /// Path prefixes (or single files) the rule applies to.
    pub scope: &'static [&'static str],
    /// Path prefixes exempt from the rule (checked after `scope`).
    pub exempt: &'static [&'static str],
    /// The check itself.
    pub check: RuleCheck,
}

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "sync-facade",
        desc: "scheduler code must import sync primitives through parallel::sync \
               (std::sync / std::thread::spawn bypass the loom model)",
        scope: &["crates/parallel/src"],
        exempt: &["crates/parallel/src/sync.rs"],
        check: check_sync_facade,
    },
    Rule {
        name: "ordering-justification",
        desc: "every Ordering::SeqCst / Ordering::Relaxed site needs a nearby \
               `// ordering:` comment explaining why — and a comment that \
               names orderings must name the one the code uses",
        scope: &["crates/parallel/src"],
        exempt: &[],
        check: check_ordering_justification,
    },
    Rule {
        name: "panic-freedom",
        desc: "no .unwrap() / .expect( / panic! in phylo/core library code \
               (parse, I/O and driver paths return typed errors)",
        scope: &["crates/phylo/src", "crates/core/src"],
        exempt: &[],
        check: check_panic_freedom,
    },
    Rule {
        name: "no-stray-io",
        desc: "library crates must not println!/eprintln! (results go through \
               sink / EngineReport; binaries and the bench harness may print)",
        scope: &[
            "src",
            "crates/phylo/src",
            "crates/core/src",
            "crates/standfile/src",
            "crates/parallel/src",
            "crates/sim/src",
            "crates/datagen/src",
            "crates/superb/src",
            "crates/msa/src",
            "crates/cli/src",
        ],
        exempt: &["crates/datagen/src/bin", "crates/cli/src/main.rs"],
        check: check_no_stray_io,
    },
    Rule {
        name: "atomic-ordering",
        desc: "atomic call-site dataflow: `// ordering:` comments must agree \
               with the Ordering arguments on Acquire/Release-family sites, \
               and a field written with Release/AcqRel/SeqCst must not be \
               read by a Relaxed load unless the comment invokes a fence, \
               exclusive/owner access, or an advisory/stale-tolerant read",
        scope: &["crates/parallel/src"],
        exempt: &[],
        check: check_atomic_ordering,
    },
    Rule {
        name: "lock-scope",
        desc: "no MutexGuard held across park(), a Condvar wait that does not \
               consume the guard, or a call into the explore kernels \
               (begin_task/resume_task/step/…) — lock-ordering deadlock bait",
        scope: &["crates/parallel/src"],
        exempt: &[],
        check: check_lock_scope,
    },
    Rule {
        name: "sink-error-latching",
        desc: "a StandSink impl that latches an error (`self.field = Some(..)`) \
               must surface that field from finish() — the silent-truncation \
               bug class",
        scope: &[
            "src",
            "crates/core/src",
            "crates/standfile/src",
            "crates/parallel/src",
            "crates/phylo/src",
            "crates/cli/src",
        ],
        exempt: &[],
        check: check_sink_error_latching,
    },
    Rule {
        name: "unchecked-arithmetic",
        desc: "wire-format arithmetic must not silently truncate or wrap: \
               narrowing `as` casts and bare `+`/`<<` need a checked_*/\
               debug_assert!/mask guard or an `// arith:` justification",
        scope: &[
            "crates/standfile/src/varint.rs",
            "crates/phylo/src/phylo2vec.rs",
        ],
        exempt: &[],
        check: check_unchecked_arithmetic,
    },
    Rule {
        name: "unsafe-inventory",
        desc: "every `unsafe` block/fn/impl carries a `// safety:` comment \
               stating the invariant it relies on (and lands in the \
               machine-readable inventory, `xlint --atomics-json`)",
        scope: &[
            "src",
            "crates/phylo/src",
            "crates/core/src",
            "crates/standfile/src",
            "crates/parallel/src",
            "crates/sim/src",
            "crates/datagen/src",
            "crates/superb/src",
            "crates/msa/src",
            "crates/cli/src",
            "shims/loom/src",
        ],
        exempt: &[],
        check: check_unsafe_inventory,
    },
];

fn path_applies(path: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| path == *p || path.starts_with(&format!("{p}/")))
}

/// True when `rule` covers `path`.
pub fn rule_covers(rule: &Rule, path: &str) -> bool {
    path_applies(path, rule.scope) && !path_applies(path, rule.exempt)
}

/// True when code tokens starting at `i` spell the `::`-separated path
/// `segs` (comments between segments are tolerated by pre-filtering).
fn path_seq(toks: &[&Tok], i: usize, segs: &[&str]) -> bool {
    let mut k = i;
    for (si, seg) in segs.iter().enumerate() {
        if si > 0 {
            if !(toks.get(k).is_some_and(|t| t.kind == TokKind::Punct(':'))
                && toks
                    .get(k + 1)
                    .is_some_and(|t| t.kind == TokKind::Punct(':')))
            {
                return false;
            }
            k += 2;
        }
        if !toks
            .get(k)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == *seg)
        {
            return false;
        }
        k += 1;
    }
    true
}

/// The comment-and-test-free token view rules scan linearly.
fn code_view(fa: &FileAnalysis) -> Vec<&Tok> {
    fa.code.iter().map(|&i| &fa.toks[i]).collect()
}

fn push(
    fa: &FileAnalysis,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: usize,
    message: String,
) {
    out.push(Finding {
        rule,
        path: fa.path.clone(),
        line,
        message,
        snippet: fa.snippet(line),
    });
}

// ---------------------------------------------------------------------------
// L1–L4: the token-level rules (ported onto the shared analysis).
// ---------------------------------------------------------------------------

fn check_sync_facade(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let code = code_view(fa);
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "std" {
            continue;
        }
        if path_seq(&code, i, &["std", "sync"]) {
            push(
                fa,
                out,
                "sync-facade",
                t.line,
                "`std::sync` bypasses the `parallel::sync` facade (invisible to loom)".to_string(),
            );
        } else if path_seq(&code, i, &["std", "thread", "spawn"]) {
            push(
                fa,
                out,
                "sync-facade",
                t.line,
                "`std::thread::spawn` bypasses the `parallel::sync` facade".to_string(),
            );
        }
    }
}

fn check_ordering_justification(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let code = code_view(fa);
    for (i, t) in code.iter().enumerate() {
        // `Ordering::SeqCst` / `Ordering::Relaxed` need justification;
        // Acquire/Release pairs document themselves by pairing.
        if t.kind != TokKind::Ident || t.text != "Ordering" {
            continue;
        }
        if !(path_seq(&code, i, &["Ordering", "SeqCst"])
            || path_seq(&code, i, &["Ordering", "Relaxed"]))
        {
            continue;
        }
        let which = &code[i + 3].text;
        match fa.comments.ordering_text(t.line) {
            None => push(
                fa,
                out,
                "ordering-justification",
                t.line,
                format!("`Ordering::{which}` without a nearby `// ordering:` comment"),
            ),
            Some(text) => {
                // Bugfix (PR 8): a justification that *names* orderings must
                // name the one the code uses — "Relaxed is enough" above a
                // SeqCst site is a stale or wrong justification. Comments
                // naming no ordering stay presence-justified.
                let named = named_orderings(&text);
                if !named.is_empty() && !named.contains(&which.as_str()) {
                    push(
                        fa,
                        out,
                        "ordering-justification",
                        t.line,
                        format!(
                            "`Ordering::{which}` but its `// ordering:` comment declares {} — \
                             fix the comment or the code",
                            named.join("/")
                        ),
                    );
                }
            }
        }
    }
}

fn check_panic_freedom(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let code = code_view(fa);
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |k: char| code.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct(k));
        let prev_is = |k: char| i > 0 && code[i - 1].kind == TokKind::Punct(k);
        match t.text.as_str() {
            "unwrap" if prev_is('.') && next_is('(') => push(
                fa,
                out,
                "panic-freedom",
                t.line,
                "`.unwrap()` in library code — return a typed error instead".to_string(),
            ),
            "expect" if prev_is('.') && next_is('(') => push(
                fa,
                out,
                "panic-freedom",
                t.line,
                "`.expect(..)` in library code — return a typed error instead".to_string(),
            ),
            "panic" if next_is('!') => push(
                fa,
                out,
                "panic-freedom",
                t.line,
                "`panic!` in library code — return a typed error instead".to_string(),
            ),
            _ => {}
        }
    }
}

fn check_no_stray_io(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let code = code_view(fa);
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "println" || t.text == "eprintln")
            && code
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct('!'))
        {
            push(
                fa,
                out,
                "no-stray-io",
                t.line,
                format!(
                    "`{}!` in a library crate — route output through a sink/report",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L5: atomic-ordering dataflow.
// ---------------------------------------------------------------------------

/// Orderings whose write side publishes (release class).
const RELEASE_CLASS: &[&str] = &["Release", "AcqRel", "SeqCst"];

/// Justification mechanisms that make a Relaxed read of a released field
/// sound (or deliberately tolerant): an explicit fence pairing, exclusive /
/// owner access (`&mut`), or an advisory read that tolerates staleness.
const ASYMMETRY_KEYWORDS: &[&str] = &["fence", "own", "&mut", "exclusive", "advisory", "stale"];

fn site_is_release_write(s: &AtomicSite) -> bool {
    crate::analysis::WRITE_OPS.contains(&s.op.as_str())
        && s.ordering_names().iter().any(|o| RELEASE_CLASS.contains(o))
}

fn site_is_relaxed_load(s: &AtomicSite) -> bool {
    s.op == "load" && s.ordering_names() == ["Relaxed"]
}

fn check_atomic_ordering(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let sites = atomic_sites(fa);

    // (a) Declared-vs-actual mismatch on Acquire/Release-family call sites.
    // SeqCst/Relaxed *token* sites are owned by `ordering-justification`
    // (see the module docs); a site is in this rule's mismatch domain when
    // any of its orderings is Acquire/Release/AcqRel.
    for s in &sites {
        let used = s.ordering_names();
        let acqrel_family = used
            .iter()
            .any(|o| matches!(*o, "Acquire" | "Release" | "AcqRel"));
        if !acqrel_family {
            continue;
        }
        if let Some(comment) = &s.comment {
            let named = named_orderings(comment);
            if !named.is_empty() && !used.iter().any(|u| named.contains(u)) {
                push(
                    fa,
                    out,
                    "atomic-ordering",
                    s.line,
                    format!(
                        "`{}.{}` uses {} but its `// ordering:` comment declares {} — \
                         fix the comment or the code",
                        s.field,
                        s.op,
                        used.join("/"),
                        named.join("/")
                    ),
                );
            }
        }
    }

    // (b) Per-field asymmetry: a release-class write paired with a Relaxed
    // load of the same field is a lost-publication bug unless the load's
    // justification names a sanctioned mechanism.
    for load in sites.iter().filter(|s| site_is_relaxed_load(s)) {
        if load.field.starts_with('(') {
            continue; // fences / unresolvable receivers have no field pair
        }
        let Some(writer) = sites
            .iter()
            .find(|w| w.field == load.field && site_is_release_write(w))
        else {
            continue;
        };
        let sanctioned = load.comment.as_deref().is_some_and(|c| {
            let lc = c.to_ascii_lowercase();
            ASYMMETRY_KEYWORDS.iter().any(|k| lc.contains(k))
        });
        if !sanctioned {
            push(
                fa,
                out,
                "atomic-ordering",
                load.line,
                format!(
                    "Relaxed load of `{}`, which is published by a {}-class `{}` \
                     (line {}) — use Acquire, or justify the asymmetry in the \
                     `// ordering:` comment (fence pairing, exclusive/owner \
                     access, or an advisory/stale-tolerant read)",
                    load.field,
                    writer
                        .ordering_names()
                        .iter()
                        .find(|o| RELEASE_CLASS.contains(*o))
                        .copied()
                        .unwrap_or("Release"),
                    writer.op,
                    writer.line
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L6: lock-scope discipline.
// ---------------------------------------------------------------------------

/// The explore kernels: entry points into `core::explore` that can run for
/// an unbounded number of search steps. A held `MutexGuard` across any of
/// these serializes the scheduler (and is deadlock bait against the pool's
/// own park lock).
const EXPLORE_KERNELS: &[&str] = &[
    "begin_task",
    "resume_task",
    "end_task",
    "step",
    "split_top",
    "abort_frames",
    "new_root",
    "new_idle",
];

/// `let [mut] NAME = … .lock() … ;` — returns the guard's binding name.
/// Walks back from the `lock` callee to the statement start and accepts
/// plain bindings plus `let Ok(g)` / `let Some(g)` unwraps; anything more
/// exotic (tuple patterns, temporaries) yields `None` — a temporary guard
/// dies at the end of its statement and cannot span a park.
fn guard_binding(fa: &FileAnalysis, name_pos: usize) -> Option<String> {
    // Find the statement start: the token after the previous `;`/`{`/`}`.
    let mut k = name_pos;
    while k > 0 {
        match fa.ct(k - 1).kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            _ => k -= 1,
        }
    }
    let t = |off: usize| fa.code.get(k + off).map(|&i| &fa.toks[i]);
    let ident = |off: usize| {
        t(off)
            .filter(|x| x.kind == TokKind::Ident)
            .map(|x| x.text.clone())
    };
    if ident(0).as_deref() != Some("let") {
        return None;
    }
    let mut off = 1;
    if ident(off).as_deref() == Some("mut") {
        off += 1;
    }
    let head = ident(off)?;
    if head == "Ok" || head == "Some" {
        if t(off + 1).map(|x| x.kind.clone()) != Some(TokKind::Punct('(')) {
            return None;
        }
        off += 2;
        if ident(off).as_deref() == Some("mut") {
            off += 1;
        }
        return ident(off);
    }
    // Plain binding must be followed by `=` (or `:` type ascription).
    match t(off + 1).map(|x| x.kind.clone()) {
        Some(TokKind::Punct('=')) | Some(TokKind::Punct(':')) => Some(head),
        _ => None,
    }
}

fn check_lock_scope(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    for call in &fa.tree.calls {
        if !(call.method && call.name == "lock") || fa.toks[call.name_tok].in_test {
            continue;
        }
        // Code position of the callee token.
        let Ok(name_pos) = fa.code.binary_search(&call.name_tok) else {
            continue; // lock in test code was filtered out of `code`
        };
        let Some(guard) = guard_binding(fa, name_pos) else {
            continue;
        };
        // Statement end: the `;` after the call at group depth 0.
        let mut depth = 0isize;
        let mut stmt_end = None;
        for p in name_pos..fa.code.len() {
            match fa.ct(p).kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth <= 0 => {
                    stmt_end = Some(p);
                    break;
                }
                TokKind::Punct('{') | TokKind::Punct('}') if depth <= 0 => break,
                _ => {}
            }
        }
        let Some(stmt_end) = stmt_end else { continue };
        // Guard scope: innermost brace block containing the binding.
        let let_i = fa.code[name_pos];
        let scope_close = fa
            .tree
            .brace_match
            .iter()
            .filter(|&&(o, c)| o < let_i && let_i < c)
            .map(|&(_, c)| c)
            .min()
            .unwrap_or(fa.toks.len());
        // Walk the live range: statement end → scope close or drop(guard).
        for c2 in &fa.tree.calls {
            if c2.name_tok <= fa.code[stmt_end] || c2.name_tok >= scope_close {
                continue;
            }
            if fa.toks[c2.name_tok].in_test {
                continue;
            }
            // `drop(guard)` ends the live range early.
            if !c2.method && c2.name == "drop" && arg_is_ident(fa, c2.args.first(), &guard) {
                // Only calls before the drop count; model by truncating.
                // (calls are in source order, so break works.)
                break;
            }
            let flagged = if c2.name == "park" {
                Some(format!(
                    "`park()` while `MutexGuard` `{guard}` (locked line {}) is live — \
                     a waker blocking on the same lock deadlocks",
                    call.line
                ))
            } else if matches!(c2.name.as_str(), "wait" | "wait_timeout" | "wait_while")
                && !call_consumes_ident(fa, c2, &guard)
            {
                Some(format!(
                    "`{}` that does not consume `MutexGuard` `{guard}` (locked line {}) — \
                     waiting on a different condvar while holding the lock",
                    c2.name, call.line
                ))
            } else if c2.method && EXPLORE_KERNELS.contains(&c2.name.as_str()) {
                Some(format!(
                    "call into explore kernel `{}` while `MutexGuard` `{guard}` \
                     (locked line {}) is live — unbounded work under a lock",
                    c2.name, call.line
                ))
            } else {
                None
            };
            if let Some(message) = flagged {
                push(fa, out, "lock-scope", c2.line, message);
            }
        }
    }
}

/// True when the call's argument list mentions the identifier `name`
/// (the `cv.wait(guard)` consume-and-reborn pattern).
fn call_consumes_ident(fa: &FileAnalysis, call: &crate::parser::CallSite, name: &str) -> bool {
    call.args.iter().any(|&(a, b)| {
        fa.toks[a.min(fa.toks.len())..b.min(fa.toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == name)
    })
}

/// True when the (single) argument range is exactly the identifier `name`.
fn arg_is_ident(fa: &FileAnalysis, arg: Option<&(usize, usize)>, name: &str) -> bool {
    let Some(&(a, b)) = arg else { return false };
    let toks: Vec<&Tok> = fa.toks[a.min(fa.toks.len())..b.min(fa.toks.len())]
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    toks.len() == 1 && toks[0].kind == TokKind::Ident && toks[0].text == name
}

// ---------------------------------------------------------------------------
// L7: sink-error-latching.
// ---------------------------------------------------------------------------

fn check_sink_error_latching(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    fn walk<'t>(items: &'t [Item], impls: &mut Vec<&'t Item>, sinks: &mut Vec<&'t Item>) {
        for it in items {
            if let ItemKind::Impl { trait_name, .. } = &it.kind {
                impls.push(it);
                if trait_name.as_deref() == Some("StandSink") {
                    sinks.push(it);
                }
            }
            walk(&it.children, impls, sinks);
        }
    }
    let mut impls = Vec::new();
    let mut sinks = Vec::new();
    walk(&fa.tree.items, &mut impls, &mut sinks);
    for s in sinks {
        check_sink_impl(fa, s, &impls, out);
    }
}

/// Latch sites inside one `impl StandSink for T`: every `self.F = Some(…)`
/// field must be read back in a `finish()` of the same type — on the trait
/// impl or an inherent impl of `T` in the same file (the usual place, since
/// `finish` consumes `self`).
fn check_sink_impl(fa: &FileAnalysis, imp: &Item, impls: &[&Item], out: &mut Vec<Finding>) {
    let lo = fa.code.partition_point(|&i| i <= imp.body_open);
    let hi = fa.code.partition_point(|&i| i < imp.body_close);
    let mut latches: Vec<(String, usize)> = Vec::new(); // (field, line)
    for p in lo..hi.saturating_sub(5) {
        let seq = |off: usize| fa.ct(p + off);
        if seq(0).kind == TokKind::Ident
            && seq(0).text == "self"
            && seq(1).kind == TokKind::Punct('.')
            && seq(2).kind == TokKind::Ident
            && seq(3).kind == TokKind::Punct('=')
            && seq(4).kind == TokKind::Ident
            && seq(4).text == "Some"
            && seq(5).kind == TokKind::Punct('(')
        {
            latches.push((seq(2).text.clone(), seq(0).line));
        }
    }
    if latches.is_empty() {
        return;
    }
    let ItemKind::Impl { type_name, .. } = &imp.kind else {
        return;
    };
    let finish = impls
        .iter()
        .filter(|i| matches!(&i.kind, ItemKind::Impl { type_name: tn, .. } if tn == type_name))
        .flat_map(|i| i.children.iter())
        .find(|c| c.kind == ItemKind::Fn && c.name == "finish");
    for (field, line) in latches {
        let surfaced = finish.is_some_and(|f| {
            let flo = fa.code.partition_point(|&i| i <= f.body_open);
            let fhi = fa.code.partition_point(|&i| i < f.body_close);
            (flo..fhi).any(|p| {
                let t = fa.ct(p);
                t.kind == TokKind::Ident && t.text == field
            })
        });
        if !surfaced {
            let missing = if finish.is_some() {
                format!("`finish()` never reads `self.{field}`")
            } else {
                "the impl has no `finish()` body to surface it from".to_string()
            };
            push(
                fa,
                out,
                "sink-error-latching",
                line,
                format!(
                    "StandSink impl latches an error into `self.{field}` but {missing} — \
                     latched errors must surface from finish() (silent-truncation bug class)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L8: unchecked-arithmetic (wire-format scopes only).
// ---------------------------------------------------------------------------

/// Guard spellings that make nearby arithmetic checked.
const ARITH_GUARDS: &[&str] = &[
    "checked_",
    "debug_assert",
    "saturating_",
    "wrapping_",
    "try_from",
    "try_into",
];

/// Integer types an `as` cast can narrow into. `usize`/`isize` are not
/// listed: every wire-format value in scope is at most `u32` wide and the
/// workspace only supports 64-bit targets, so pointer-width casts widen.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn arith_justified(fa: &FileAnalysis, line: usize) -> bool {
    fa.comments.arith_run(line).is_some() || fa.window_contains(line, ARITH_GUARDS)
}

/// True when the expression cast by `as` at code position `p` ends in a
/// literal mask group — `(v & 0x7f) as u8` is value-range-safe by
/// construction.
fn masked_cast(fa: &FileAnalysis, p: usize) -> bool {
    if p == 0 || fa.ct(p - 1).kind != TokKind::Punct(')') {
        return false;
    }
    let mut depth = 0isize;
    let mut saw_and = false;
    let mut saw_lit = false;
    let mut k = p - 1;
    loop {
        match fa.ct(k).kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct('&') => saw_and = true,
            TokKind::Num => saw_lit = true,
            _ => {}
        }
        if k == 0 {
            break;
        }
        k -= 1;
    }
    saw_and && saw_lit
}

fn check_unchecked_arithmetic(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let n = fa.code.len();
    for p in 0..n {
        let t = fa.ct(p);
        match &t.kind {
            TokKind::Ident if t.text == "as" => {
                let Some(ty) = fa.code.get(p + 1).map(|&i| &fa.toks[i]) else {
                    continue;
                };
                if ty.kind != TokKind::Ident || !NARROW_TYPES.contains(&ty.text.as_str()) {
                    continue;
                }
                if masked_cast(fa, p) || arith_justified(fa, t.line) {
                    continue;
                }
                push(
                    fa,
                    out,
                    "unchecked-arithmetic",
                    t.line,
                    format!(
                        "bare `as {}` truncation in wire-format code — use try_from, \
                         mask the value range, or justify with `// arith:`",
                        ty.text
                    ),
                );
            }
            TokKind::Punct('+') => {
                // `+=` lexes as '+' '='; both are unchecked adds. (No unary
                // or trait-bound `+` exists in the two scoped files.)
                if arith_justified(fa, t.line) {
                    continue;
                }
                push(
                    fa,
                    out,
                    "unchecked-arithmetic",
                    t.line,
                    "unchecked `+` in wire-format code — use checked_add/\
                     debug_assert! or justify with `// arith:`"
                        .to_string(),
                );
            }
            TokKind::Punct('<') => {
                // `<<` = two byte-adjacent '<' tokens.
                let adjacent_shl = fa
                    .code
                    .get(p + 1)
                    .map(|&i| &fa.toks[i])
                    .is_some_and(|nx| nx.kind == TokKind::Punct('<') && nx.start == t.end);
                if !adjacent_shl || arith_justified(fa, t.line) {
                    continue;
                }
                push(
                    fa,
                    out,
                    "unchecked-arithmetic",
                    t.line,
                    "unchecked `<<` in wire-format code — guard the shift amount \
                     (checked_shl/debug_assert!) or justify with `// arith:`"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    // Skip the '<' we already consumed? Not needed: the second '<' of a
    // `<<` does not match the adjacency test against its successor.
}

// ---------------------------------------------------------------------------
// L9: unsafe-inventory.
// ---------------------------------------------------------------------------

fn check_unsafe_inventory(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    for s in unsafe_sites(fa) {
        if s.has_safety {
            continue;
        }
        push(
            fa,
            out,
            "unsafe-inventory",
            s.line,
            format!(
                "`unsafe` {} without a `// safety:` comment stating the invariant \
                 it relies on",
                s.kind
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// Runs every applicable rule over one analyzed file, applies the allow
/// escape hatch, and reports malformed escapes. The baseline is applied by
/// the caller.
pub fn check_analysis(fa: &FileAnalysis) -> Vec<Finding> {
    let mut raw = Vec::new();
    for rule in RULES {
        if rule_covers(rule, &fa.path) {
            (rule.check)(fa, &mut raw);
        }
    }
    finish_findings(fa, raw)
}

/// Allow-escape filtering + malformed-escape findings + deterministic order.
pub fn finish_findings(fa: &FileAnalysis, raw: Vec<Finding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !fa.comments.allowed(f.rule, f.line))
        .collect();
    for &line in &fa.comments.bad_allow_lines {
        out.push(Finding {
            rule: "allow-syntax",
            path: fa.path.clone(),
            line,
            message: "escape hatch must name a rule and give a reason: \
                      `// xlint: allow(<rule>) — <reason>`"
                .to_string(),
            snippet: fa.snippet(line),
        });
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Runs every applicable rule over one file (lexes and parses it once).
/// `path` must be repo-relative with `/` separators.
pub fn check_file(path: &str, src: &str) -> Vec<Finding> {
    check_analysis(&FileAnalysis::analyze(path, src))
}
