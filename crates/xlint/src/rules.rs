//! The rule engine: four workspace invariants (L1–L4), the
//! `// xlint: allow(<rule>) — <reason>` escape hatch, and the per-file
//! check driver.
//!
//! | rule                     | invariant                                            |
//! |--------------------------|------------------------------------------------------|
//! | `sync-facade`            | no `std::sync`/`std::thread::spawn` in `crates/parallel` outside `sync.rs` |
//! | `ordering-justification` | every `Ordering::SeqCst`/`Relaxed` carries `// ordering:` nearby |
//! | `panic-freedom`          | no `.unwrap()` / `.expect(` / `panic!` in `phylo`/`core` library code |
//! | `no-stray-io`            | no `println!`/`eprintln!` in library crates          |
//!
//! All rules ignore test code (see `lexer::mark_test_regions`), comments
//! and string literals. Scopes are path prefixes relative to the repo root
//! with `/` separators.

use crate::lexer::{lex_marked, Tok, TokKind};
use std::collections::HashSet;

/// How many lines above a use an `// ordering:` comment may sit and still
/// justify it (same line always counts).
const ORDERING_WINDOW: usize = 4;

/// One rule violation (or escape-hatch misuse) at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`sync-facade`, …, or `allow-syntax` for a malformed
    /// escape comment).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The trimmed source line (doubles as the baseline fingerprint, so
    /// entries survive unrelated line-number drift).
    pub snippet: String,
}

/// A lint rule: name, what it protects, and where it applies.
pub struct Rule {
    /// Stable rule name used in findings, allow-comments and the baseline.
    pub name: &'static str,
    /// One-line description (shown by `--help` and in DESIGN.md).
    pub desc: &'static str,
    /// Path prefixes the rule applies to.
    pub scope: &'static [&'static str],
    /// Path prefixes exempt from the rule (checked after `scope`).
    pub exempt: &'static [&'static str],
}

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "sync-facade",
        desc: "scheduler code must import sync primitives through parallel::sync \
               (std::sync / std::thread::spawn bypass the loom model)",
        scope: &["crates/parallel/src"],
        exempt: &["crates/parallel/src/sync.rs"],
    },
    Rule {
        name: "ordering-justification",
        desc: "every Ordering::SeqCst / Ordering::Relaxed site needs a nearby \
               `// ordering:` comment explaining why",
        scope: &["crates/parallel/src"],
        exempt: &[],
    },
    Rule {
        name: "panic-freedom",
        desc: "no .unwrap() / .expect( / panic! in phylo/core library code \
               (parse, I/O and driver paths return typed errors)",
        scope: &["crates/phylo/src", "crates/core/src"],
        exempt: &[],
    },
    Rule {
        name: "no-stray-io",
        desc: "library crates must not println!/eprintln! (results go through \
               sink / EngineReport; binaries and the bench harness may print)",
        scope: &[
            "src",
            "crates/phylo/src",
            "crates/core/src",
            "crates/standfile/src",
            "crates/parallel/src",
            "crates/sim/src",
            "crates/datagen/src",
            "crates/superb/src",
            "crates/msa/src",
            "crates/cli/src",
        ],
        exempt: &["crates/datagen/src/bin", "crates/cli/src/main.rs"],
    },
];

fn path_applies(path: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| path == *p || path.starts_with(&format!("{p}/")))
}

/// True when `rule` covers `path`.
pub fn rule_covers(rule: &Rule, path: &str) -> bool {
    path_applies(path, rule.scope) && !path_applies(path, rule.exempt)
}

/// An `xlint: allow(rule)` escape comment, attached to the lines it covers.
struct Allow {
    rule: String,
    /// The comment's last line; it suppresses findings there and one below.
    end_line: usize,
    used: std::cell::Cell<bool>,
}

/// Comment-derived context for one file: ordering-justified lines and
/// allow escapes.
struct CommentIndex {
    ordering_lines: HashSet<usize>,
    allows: Vec<Allow>,
    bad_allows: Vec<Finding>,
}

impl CommentIndex {
    fn build(path: &str, toks: &[Tok], lines: &[&str]) -> Self {
        let mut ordering_lines = HashSet::new();
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        // A `//` block is one comment per line to the lexer; merge
        // consecutive-line comments into runs so a multi-line
        // `// ordering:` justification covers through its last line.
        let comments: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        let mut i = 0;
        while i < comments.len() {
            let mut j = i;
            while j + 1 < comments.len() && comments[j + 1].line == comments[j].end_line + 1 {
                j += 1;
            }
            if let Some(marker) = comments[i..=j]
                .iter()
                .find(|c| c.text.contains("ordering:"))
            {
                for l in marker.line..=comments[j].end_line {
                    ordering_lines.insert(l);
                }
            }
            i = j + 1;
        }
        for t in toks {
            if t.kind != TokKind::Comment {
                continue;
            }
            let mut rest = t.text.as_str();
            while let Some(at) = rest.find("xlint: allow(") {
                let after = &rest[at + "xlint: allow(".len()..];
                let Some(close) = after.find(')') else {
                    break;
                };
                let rule = after[..close].trim().to_string();
                let reason = after[close + 1..]
                    .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
                    .trim();
                if rule.is_empty() || reason.is_empty() {
                    bad_allows.push(Finding {
                        rule: "allow-syntax",
                        path: path.to_string(),
                        line: t.line,
                        message: "escape hatch must name a rule and give a reason: \
                                  `// xlint: allow(<rule>) — <reason>`"
                            .to_string(),
                        snippet: snippet_at(lines, t.line),
                    });
                } else {
                    allows.push(Allow {
                        rule,
                        end_line: t.end_line,
                        used: std::cell::Cell::new(false),
                    });
                }
                rest = &after[close + 1..];
            }
        }
        CommentIndex {
            ordering_lines,
            allows,
            bad_allows,
        }
    }

    fn ordering_justified(&self, line: usize) -> bool {
        (line.saturating_sub(ORDERING_WINDOW)..=line).any(|l| self.ordering_lines.contains(&l))
    }

    /// Consumes a matching allow for (`rule`, `line`) if one exists.
    fn allowed(&self, rule: &str, line: usize) -> bool {
        for a in &self.allows {
            if a.rule == rule && (a.end_line == line || a.end_line + 1 == line) {
                a.used.set(true);
                return true;
            }
        }
        false
    }
}

fn snippet_at(lines: &[&str], line: usize) -> String {
    lines
        .get(line - 1)
        .map(|l| l.trim())
        .unwrap_or("")
        .to_string()
}

/// True when code tokens starting at `i` spell the `::`-separated path
/// `segs` (comments between segments are tolerated by pre-filtering).
fn path_seq(toks: &[&Tok], i: usize, segs: &[&str]) -> bool {
    let mut k = i;
    for (si, seg) in segs.iter().enumerate() {
        if si > 0 {
            if !(toks.get(k).is_some_and(|t| t.kind == TokKind::Punct(':'))
                && toks
                    .get(k + 1)
                    .is_some_and(|t| t.kind == TokKind::Punct(':')))
            {
                return false;
            }
            k += 2;
        }
        if !toks
            .get(k)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == *seg)
        {
            return false;
        }
        k += 1;
    }
    true
}

/// Runs every applicable rule over one file. `path` must be repo-relative
/// with `/` separators; scoping and the escape hatch are applied here, the
/// baseline is applied by the caller.
pub fn check_file(path: &str, src: &str) -> Vec<Finding> {
    let toks = lex_marked(src);
    let lines: Vec<&str> = src.lines().collect();
    let idx = CommentIndex::build(path, &toks, &lines);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind != TokKind::Comment && !t.in_test)
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, line: usize, message: String| {
        raw.push(Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            snippet: snippet_at(&lines, line),
        });
    };

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |k: char| code.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct(k));
        let prev_is = |k: char| i > 0 && code[i - 1].kind == TokKind::Punct(k);
        match t.text.as_str() {
            "std" => {
                if path_seq(&code, i, &["std", "sync"]) {
                    push(
                        "sync-facade",
                        t.line,
                        "`std::sync` bypasses the `parallel::sync` facade (invisible to loom)"
                            .to_string(),
                    );
                } else if path_seq(&code, i, &["std", "thread", "spawn"]) {
                    push(
                        "sync-facade",
                        t.line,
                        "`std::thread::spawn` bypasses the `parallel::sync` facade".to_string(),
                    );
                }
            }
            // `Ordering::SeqCst` / `Ordering::Relaxed` need justification;
            // Acquire/Release pairs document themselves by pairing.
            "Ordering"
                if (path_seq(&code, i, &["Ordering", "SeqCst"])
                    || path_seq(&code, i, &["Ordering", "Relaxed"]))
                    && !idx.ordering_justified(t.line) =>
            {
                let which = &code[i + 3].text;
                push(
                    "ordering-justification",
                    t.line,
                    format!("`Ordering::{which}` without a nearby `// ordering:` comment"),
                );
            }
            "unwrap" if prev_is('.') && next_is('(') => {
                push(
                    "panic-freedom",
                    t.line,
                    "`.unwrap()` in library code — return a typed error instead".to_string(),
                );
            }
            "expect" if prev_is('.') && next_is('(') => {
                push(
                    "panic-freedom",
                    t.line,
                    "`.expect(..)` in library code — return a typed error instead".to_string(),
                );
            }
            "panic" if next_is('!') => {
                push(
                    "panic-freedom",
                    t.line,
                    "`panic!` in library code — return a typed error instead".to_string(),
                );
            }
            "println" | "eprintln" if next_is('!') => {
                push(
                    "no-stray-io",
                    t.line,
                    format!(
                        "`{}!` in a library crate — route output through a sink/report",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }

    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            RULES
                .iter()
                .find(|r| r.name == f.rule)
                .is_some_and(|r| rule_covers(r, path))
        })
        .filter(|f| !idx.allowed(f.rule, f.line))
        .collect();
    out.extend(idx.bad_allows);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
