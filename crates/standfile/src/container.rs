//! The `.stand` container: append-only blocks of prefix-delta-coded tree
//! vectors with a random-access footer index.
//!
//! ## Layout (version 1)
//!
//! ```text
//! [0..8)  magic "GSTANDF1"
//! header  varint version (= 1)
//!         varint n                      — taxon count
//!         n x { varint len, utf8 }      — taxon names in TaxonId order
//!         varint block capacity         — max trees per block
//! blocks  varint payload length, then payload:
//!           varint k                    — trees in this block
//!           k x { varint shared, varint tail, tail x varint entry }
//!             — phylo2vec code, delta vs the previous tree of the SAME
//!               block (`shared` leading entries reused); the first tree
//!               of every block is stored in full, so blocks are
//!               self-contained and can be copied between containers
//! footer  varint B                      — block count
//!         B x { varint offset, varint trees }
//!         varint total trees
//!         u64-le footer offset
//!         magic "GSTANDIX"
//! ```
//!
//! Every multi-byte integer is LEB128 except the fixed-width footer offset,
//! which lets a reader find the index from the last 16 bytes alone. Offsets
//! in the index are absolute file positions of block length prefixes, so a
//! mapped or seeked reader can jump to any block; trees inside a block are
//! decoded sequentially (the delta chain resets at block boundaries).

use crate::varint::{read_u64, write_u64};
use crate::StandfileError;
use phylo::phylo2vec;
use phylo::taxa::{TaxonId, TaxonSet};
use phylo::tree::Tree;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Leading file magic (version byte folded into the name).
pub const MAGIC: &[u8; 8] = b"GSTANDF1";
/// Trailing file magic.
pub const END_MAGIC: &[u8; 8] = b"GSTANDIX";
/// Format version written into the header.
pub const VERSION: u64 = 1;
/// Default number of trees per block: large enough to amortize the length
/// prefix and delta reset, small enough that random access decodes little.
pub const DEFAULT_BLOCK_CAPACITY: usize = 1024;

fn format_err(offset: u64, msg: impl Into<String>) -> StandfileError {
    StandfileError::Format {
        offset,
        msg: msg.into(),
    }
}

/// One entry of the footer index.
#[derive(Clone, Copy, Debug)]
struct BlockEntry {
    /// Absolute file offset of the block's length prefix.
    offset: u64,
    /// Index of the block's first tree.
    first: u64,
    /// Trees stored in the block.
    trees: u64,
}

/// Totals reported when a writer finishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainerSummary {
    /// Trees written.
    pub trees: u64,
    /// Blocks written.
    pub blocks: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming append-only writer. Trees go to disk block by block as they
/// are pushed; nothing is buffered beyond one partial block.
pub struct ContainerWriter {
    out: BufWriter<File>,
    path: PathBuf,
    /// Entries per tree code (`taxon count - 2`, saturating).
    code_len: usize,
    /// Header taxon names, kept for merge compatibility checks.
    names: Vec<String>,
    capacity: usize,
    /// Bytes written so far (= next block's offset).
    offset: u64,
    blocks: Vec<BlockEntry>,
    /// Encoded tree bodies of the current partial block.
    body: Vec<u8>,
    /// Trees in the current partial block.
    pending: u64,
    /// Previous code in the current block (delta reference).
    prev: Vec<u32>,
    total: u64,
    scratch: Vec<u8>,
}

impl ContainerWriter {
    /// Creates `path` and writes the header for `taxa` with the default
    /// block capacity.
    pub fn create(path: &Path, taxa: &TaxonSet) -> Result<ContainerWriter, StandfileError> {
        ContainerWriter::with_capacity(path, taxa, DEFAULT_BLOCK_CAPACITY)
    }

    /// [`ContainerWriter::create`] with an explicit trees-per-block cap
    /// (small capacities are useful in tests to force block boundaries).
    pub fn with_capacity(
        path: &Path,
        taxa: &TaxonSet,
        capacity: usize,
    ) -> Result<ContainerWriter, StandfileError> {
        let capacity = capacity.max(1);
        let file = File::create(path)?;
        let mut header = Vec::with_capacity(64);
        header.extend_from_slice(MAGIC);
        write_u64(&mut header, VERSION);
        write_u64(&mut header, taxa.len() as u64);
        for (_, name) in taxa.iter() {
            write_u64(&mut header, name.len() as u64);
            header.extend_from_slice(name.as_bytes());
        }
        write_u64(&mut header, capacity as u64);
        let mut out = BufWriter::new(file);
        out.write_all(&header)?;
        Ok(ContainerWriter {
            out,
            path: path.to_path_buf(),
            code_len: taxa.len().saturating_sub(2),
            names: taxa.iter().map(|(_, n)| n.to_string()).collect(),
            capacity,
            offset: header.len() as u64,
            blocks: Vec::new(),
            body: Vec::new(),
            pending: 0,
            prev: Vec::new(),
            total: 0,
            scratch: Vec::new(),
        })
    }

    /// The path this writer is producing.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Trees pushed so far.
    pub fn trees(&self) -> u64 {
        self.total + self.pending
    }

    /// Appends one tree code (must have exactly `taxon count - 2` entries,
    /// i.e. the tree must span the full header taxon set).
    pub fn push_code(&mut self, code: &[u32]) -> Result<(), StandfileError> {
        if code.len() != self.code_len {
            return Err(StandfileError::TaxaMismatch(format!(
                "tree code has {} entries, container needs {} (incomplete tree?)",
                code.len(),
                self.code_len
            )));
        }
        let shared = if self.pending == 0 {
            0
        } else {
            self.prev
                .iter()
                .zip(code.iter())
                .take_while(|(a, b)| a == b)
                .count()
        };
        write_u64(&mut self.body, shared as u64);
        write_u64(&mut self.body, (code.len() - shared) as u64);
        for &c in &code[shared..] {
            write_u64(&mut self.body, u64::from(c));
        }
        self.prev.clear();
        self.prev.extend_from_slice(code);
        self.pending += 1;
        if self.pending as usize >= self.capacity {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), StandfileError> {
        if self.pending == 0 {
            return Ok(());
        }
        self.scratch.clear();
        write_u64(&mut self.scratch, self.pending);
        let payload_len = self.scratch.len() + self.body.len();
        let mut frame = Vec::with_capacity(10);
        write_u64(&mut frame, payload_len as u64);
        self.out.write_all(&frame)?;
        self.out.write_all(&self.scratch)?;
        self.out.write_all(&self.body)?;
        self.blocks.push(BlockEntry {
            offset: self.offset,
            first: self.total,
            trees: self.pending,
        });
        self.offset += (frame.len() + payload_len) as u64;
        self.total += self.pending;
        self.pending = 0;
        self.body.clear();
        Ok(())
    }

    /// Copies every block of `src` into this container verbatim (blocks are
    /// self-contained, so no re-encoding happens). The taxon sets must be
    /// identical. Used to merge per-worker segments after a parallel run.
    pub fn append_container(&mut self, src: &mut Container) -> Result<(), StandfileError> {
        if src.taxa_names() != self.names {
            return Err(StandfileError::TaxaMismatch(
                "cannot merge containers over different taxon sets".to_string(),
            ));
        }
        // Close the current partial block first so tree order is preserved.
        self.flush_block()?;
        for i in 0..src.block_count() {
            let raw = src.raw_block(i)?;
            self.out.write_all(&raw.bytes)?;
            self.blocks.push(BlockEntry {
                offset: self.offset,
                first: self.total,
                trees: raw.trees,
            });
            self.offset += raw.bytes.len() as u64;
            self.total += raw.trees;
        }
        Ok(())
    }

    /// Flushes the last partial block, writes the footer index, and
    /// returns the totals.
    pub fn finish(mut self) -> Result<ContainerSummary, StandfileError> {
        self.flush_block()?;
        let footer_start = self.offset;
        let mut footer = Vec::new();
        write_u64(&mut footer, self.blocks.len() as u64);
        for b in &self.blocks {
            write_u64(&mut footer, b.offset);
            write_u64(&mut footer, b.trees);
        }
        write_u64(&mut footer, self.total);
        footer.extend_from_slice(&footer_start.to_le_bytes());
        footer.extend_from_slice(END_MAGIC);
        self.out.write_all(&footer)?;
        self.out.flush()?;
        Ok(ContainerSummary {
            trees: self.total,
            blocks: self.blocks.len() as u64,
        })
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A raw framed block (length prefix + payload) plus its tree count.
struct RawBlock {
    bytes: Vec<u8>,
    trees: u64,
}

/// Random-access reader over a finished `.stand` file.
///
/// The footer index is loaded eagerly (16 bytes + ~10 bytes per block);
/// tree blocks are read and delta-decoded on demand, with the most recent
/// block cached so sequential scans decode each block once.
pub struct Container {
    file: File,
    taxa: TaxonSet,
    code_len: usize,
    index: Vec<BlockEntry>,
    total: u64,
    /// `(block index, decoded codes)` of the last block touched.
    cache: Option<(usize, Vec<Vec<u32>>)>,
}

impl Container {
    /// Opens and validates `path` (magic, version, footer index).
    pub fn open(path: &Path) -> Result<Container, StandfileError> {
        let mut file = File::open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(format_err(0, "not a gentrius stand container (bad magic)"));
        }
        // Header: read a bounded chunk and parse varints out of it. Headers
        // are small (names only); 1 MiB of labels is far beyond any input.
        let mut head = vec![0u8; 1 << 20];
        let got = read_up_to(&mut file, &mut head)?;
        head.truncate(got);
        let mut pos = 0usize;
        let version =
            read_u64(&head, &mut pos).ok_or_else(|| format_err(8, "truncated header (version)"))?;
        if version != VERSION {
            return Err(format_err(
                8,
                format!("unsupported container version {version} (reader supports {VERSION})"),
            ));
        }
        let n = read_u64(&head, &mut pos)
            .ok_or_else(|| format_err(8 + pos as u64, "truncated header (taxon count)"))?;
        let mut taxa = TaxonSet::new();
        for i in 0..n {
            let len = read_u64(&head, &mut pos).ok_or_else(|| {
                format_err(
                    8 + pos as u64,
                    format!("truncated header (name {i} length)"),
                )
            })? as usize;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= head.len())
                .ok_or_else(|| format_err(8 + pos as u64, "truncated header (name bytes)"))?;
            let name = std::str::from_utf8(&head[pos..end])
                .map_err(|_| format_err(8 + pos as u64, "taxon name is not UTF-8"))?;
            let id = taxa.intern(name);
            if id.index() as u64 != i {
                return Err(format_err(
                    8 + pos as u64,
                    format!("duplicate taxon name '{name}' in header"),
                ));
            }
            pos = end;
        }
        read_u64(&head, &mut pos)
            .ok_or_else(|| format_err(8 + pos as u64, "truncated header (block capacity)"))?;

        // Footer: fixed 16-byte trailer points at the index.
        let file_len = file.seek(SeekFrom::End(0))?;
        if file_len < 16 {
            return Err(format_err(file_len, "file too short for a footer"));
        }
        file.seek(SeekFrom::End(-16))?;
        let mut trailer = [0u8; 16];
        file.read_exact(&mut trailer)?;
        if &trailer[8..16] != END_MAGIC {
            return Err(format_err(
                file_len - 8,
                "missing end magic (truncated or unfinished container)",
            ));
        }
        let mut off8 = [0u8; 8];
        off8.copy_from_slice(&trailer[0..8]);
        let footer_start = u64::from_le_bytes(off8);
        if footer_start >= file_len {
            return Err(format_err(file_len - 16, "footer offset beyond file end"));
        }
        file.seek(SeekFrom::Start(footer_start))?;
        let mut footer = vec![0u8; (file_len - footer_start) as usize];
        file.read_exact(&mut footer)?;
        let mut pos = 0usize;
        let blocks = read_u64(&footer, &mut pos)
            .ok_or_else(|| format_err(footer_start, "truncated footer (block count)"))?;
        let mut index = Vec::with_capacity(blocks as usize);
        let mut first = 0u64;
        for b in 0..blocks {
            let offset = read_u64(&footer, &mut pos).ok_or_else(|| {
                format_err(footer_start, format!("truncated footer (block {b} offset)"))
            })?;
            let trees = read_u64(&footer, &mut pos).ok_or_else(|| {
                format_err(footer_start, format!("truncated footer (block {b} count)"))
            })?;
            index.push(BlockEntry {
                offset,
                first,
                trees,
            });
            first += trees;
        }
        let total = read_u64(&footer, &mut pos)
            .ok_or_else(|| format_err(footer_start, "truncated footer (total)"))?;
        if total != first {
            return Err(format_err(
                footer_start,
                format!("footer total {total} disagrees with block sum {first}"),
            ));
        }
        Ok(Container {
            file,
            taxa,
            code_len: (n as usize).saturating_sub(2),
            index,
            total,
            cache: None,
        })
    }

    /// Number of trees stored.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if the container holds no trees.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of blocks stored.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// The taxon set the trees span (reconstructed from the header).
    pub fn taxa(&self) -> &TaxonSet {
        &self.taxa
    }

    /// Entries per tree code.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Header taxon names in id order (for merge compatibility checks).
    pub fn taxa_names(&self) -> Vec<String> {
        self.taxa.iter().map(|(_, n)| n.to_string()).collect()
    }

    fn read_framed_block(&mut self, offset: u64) -> Result<RawBlock, StandfileError> {
        self.file.seek(SeekFrom::Start(offset))?;
        // The length prefix is at most 10 bytes; read a small window first.
        let mut prefix = [0u8; 10];
        let got = read_up_to(&mut self.file, &mut prefix)?;
        let mut pos = 0usize;
        let payload_len = read_u64(&prefix[..got], &mut pos)
            .ok_or_else(|| format_err(offset, "truncated block length"))?
            as usize;
        let mut bytes = Vec::with_capacity(pos + payload_len);
        bytes.extend_from_slice(&prefix[..pos]);
        bytes.resize(pos + payload_len, 0);
        let already = got.saturating_sub(pos).min(payload_len);
        bytes[pos..pos + already].copy_from_slice(&prefix[pos..pos + already]);
        if already < payload_len {
            self.file
                .seek(SeekFrom::Start(offset + (pos + already) as u64))?;
            self.file.read_exact(&mut bytes[pos + already..])?;
        }
        let mut p = pos;
        let trees = read_u64(&bytes, &mut p)
            .ok_or_else(|| format_err(offset, "truncated block tree count"))?;
        Ok(RawBlock { bytes, trees })
    }

    /// The framed bytes of block `i`, verbatim (for merge copies).
    fn raw_block(&mut self, i: usize) -> Result<RawBlock, StandfileError> {
        let entry = *self
            .index
            .get(i)
            .ok_or_else(|| format_err(0, format!("block {i} out of range")))?;
        let raw = self.read_framed_block(entry.offset)?;
        if raw.trees != entry.trees {
            return Err(format_err(
                entry.offset,
                format!(
                    "block {i} holds {} trees but the index says {}",
                    raw.trees, entry.trees
                ),
            ));
        }
        Ok(raw)
    }

    /// Decodes block `i` into full (un-deltaed) codes, via the cache.
    fn block_codes(&mut self, i: usize) -> Result<&[Vec<u32>], StandfileError> {
        if self.cache.as_ref().map(|(b, _)| *b) != Some(i) {
            let entry = *self
                .index
                .get(i)
                .ok_or_else(|| format_err(0, format!("block {i} out of range")))?;
            let raw = self.read_framed_block(entry.offset)?;
            let data = &raw.bytes;
            let mut pos = 0usize;
            // Skip the frame length and the tree count (already known).
            read_u64(data, &mut pos)
                .ok_or_else(|| format_err(entry.offset, "truncated block length"))?;
            let count = read_u64(data, &mut pos)
                .ok_or_else(|| format_err(entry.offset, "truncated block tree count"))?;
            let mut codes: Vec<Vec<u32>> = Vec::with_capacity(count as usize);
            let mut prev: Vec<u32> = Vec::new();
            for t in 0..count {
                let shared = read_u64(data, &mut pos).ok_or_else(|| {
                    format_err(entry.offset, format!("truncated tree {t} (shared)"))
                })? as usize;
                let tail = read_u64(data, &mut pos)
                    .ok_or_else(|| format_err(entry.offset, format!("truncated tree {t} (tail)")))?
                    as usize;
                if shared > prev.len() || shared + tail != self.code_len {
                    return Err(format_err(
                        entry.offset,
                        format!(
                            "tree {t} delta (shared {shared} + tail {tail}) does not \
                             rebuild a {}-entry code",
                            self.code_len
                        ),
                    ));
                }
                let mut code = Vec::with_capacity(self.code_len);
                code.extend_from_slice(&prev[..shared]);
                for e in 0..tail {
                    let v = read_u64(data, &mut pos).ok_or_else(|| {
                        format_err(entry.offset, format!("truncated tree {t} entry {e}"))
                    })?;
                    let v = u32::try_from(v).map_err(|_| {
                        format_err(entry.offset, format!("tree {t} entry {e} exceeds u32"))
                    })?;
                    code.push(v);
                }
                prev.clear();
                prev.extend_from_slice(&code);
                codes.push(code);
            }
            self.cache = Some((i, codes));
        }
        match &self.cache {
            Some((_, codes)) => Ok(codes),
            None => Err(format_err(0, "block cache lost (internal)")),
        }
    }

    fn locate(&self, tree: u64) -> Result<(usize, usize), StandfileError> {
        if tree >= self.total {
            return Err(StandfileError::OutOfBounds {
                index: tree,
                len: self.total,
            });
        }
        // `tree < total` and an honest footer guarantee a covering block,
        // so running off the index means the footer's block ranges do not
        // cover the advertised tree count: a corrupt file, not a caller
        // error — surface it as such instead of clamping to the last block
        // and silently serving the wrong tree.
        let block = self.index.partition_point(|b| b.first + b.trees <= tree);
        if block >= self.index.len() {
            return Err(format_err(
                0,
                format!("tree {tree} not covered by the block index (corrupt footer?)"),
            ));
        }
        let within = (tree - self.index[block].first) as usize;
        Ok((block, within))
    }

    /// The phylo2vec code of tree `i`.
    pub fn code(&mut self, i: u64) -> Result<Vec<u32>, StandfileError> {
        let (block, within) = self.locate(i)?;
        let codes = self.block_codes(block)?;
        codes
            .get(within)
            .cloned()
            .ok_or_else(|| format_err(0, format!("tree {i} missing from its block")))
    }

    /// Tree `i`, rebuilt over the header taxon set.
    pub fn tree(&mut self, i: u64) -> Result<Tree, StandfileError> {
        let code = self.code(i)?;
        let ids: Vec<TaxonId> = (0..self.taxa.len() as u32).map(TaxonId).collect();
        Ok(phylo2vec::decode(self.taxa.len(), &ids, &code)?)
    }

    /// Tree `i` as canonical Newick.
    pub fn newick(&mut self, i: u64) -> Result<String, StandfileError> {
        let tree = self.tree(i)?;
        Ok(phylo::newick::to_newick(&tree, &self.taxa))
    }

    /// Streams the trees in `[start, end)` (clamped to the container) as
    /// canonical Newick, calling `f(index, newick)` for each. Blocks are
    /// decoded once; memory stays bounded by one block.
    pub fn for_each_newick<F>(
        &mut self,
        start: u64,
        end: u64,
        mut f: F,
    ) -> Result<(), StandfileError>
    where
        F: FnMut(u64, &str) -> Result<(), StandfileError>,
    {
        let end = end.min(self.total);
        if start >= end {
            return Ok(());
        }
        let ids: Vec<TaxonId> = (0..self.taxa.len() as u32).map(TaxonId).collect();
        let universe = self.taxa.len();
        let mut i = start;
        while i < end {
            let (block, mut within) = self.locate(i)?;
            let codes: Vec<Vec<u32>> = self.block_codes(block)?.to_vec();
            while within < codes.len() && i < end {
                let tree = phylo2vec::decode(universe, &ids, &codes[within])?;
                let nwk = phylo::newick::to_newick(&tree, &self.taxa);
                f(i, &nwk)?;
                i += 1;
                within += 1;
            }
        }
        Ok(())
    }
}

/// Reads as many bytes as the reader will give (for bounded-window parses
/// where EOF before the buffer fills is expected).
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Merges per-worker segment containers into one container at `dest`, in
/// segment order, deleting each segment after it is copied. Missing segment
/// paths are skipped (a worker that never emitted creates no file).
pub fn merge_segments(
    dest: &Path,
    taxa: &TaxonSet,
    segments: &[PathBuf],
) -> Result<ContainerSummary, StandfileError> {
    let mut writer = ContainerWriter::create(dest, taxa)?;
    for seg in segments {
        if !seg.exists() {
            continue;
        }
        let mut src = Container::open(seg)?;
        writer.append_container(&mut src)?;
        drop(src);
        std::fs::remove_file(seg)?;
    }
    writer.finish()
}
