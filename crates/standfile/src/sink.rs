//! [`ContainerSink`]: a [`StandSink`] that streams stand trees straight to
//! a `.stand` container instead of collecting Newick strings in RAM.

use crate::container::{ContainerSummary, ContainerWriter, DEFAULT_BLOCK_CAPACITY};
use crate::StandfileError;
use gentrius_core::StandSink;
use phylo::phylo2vec::Encoder;
use phylo::taxa::TaxonSet;
use phylo::tree::Tree;
use std::path::Path;

/// Streams each stand tree through a phylo2vec [`Encoder`] into a
/// [`ContainerWriter`]. Memory stays bounded by one partial block no matter
/// how many trees the stand holds.
///
/// The constructor is infallible because the parallel engine builds sinks
/// through an infallible `Fn(usize) -> S` factory: creation and encoding
/// errors are captured internally, further trees are dropped once an error
/// is latched, and the first error is surfaced by [`ContainerSink::finish`].
/// Wrap in `BatchingSink` on the parallel path so encoding happens off the
/// per-state hot loop.
pub struct ContainerSink {
    writer: Option<ContainerWriter>,
    encoder: Encoder,
    err: Option<StandfileError>,
    pushed: u64,
}

impl ContainerSink {
    /// Opens a container at `path` over `taxa` with the default block
    /// capacity. Creation failure is latched, not returned (see type docs).
    pub fn create(path: &Path, taxa: &TaxonSet) -> ContainerSink {
        ContainerSink::with_capacity(path, taxa, DEFAULT_BLOCK_CAPACITY)
    }

    /// [`ContainerSink::create`] with an explicit trees-per-block cap.
    pub fn with_capacity(path: &Path, taxa: &TaxonSet, capacity: usize) -> ContainerSink {
        let (writer, err) = match ContainerWriter::with_capacity(path, taxa, capacity) {
            Ok(w) => (Some(w), None),
            Err(e) => (None, Some(e)),
        };
        ContainerSink {
            writer,
            encoder: Encoder::new(),
            err,
            pushed: 0,
        }
    }

    /// Trees successfully encoded and pushed so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// True once an error has been latched (later trees are dropped).
    pub fn failed(&self) -> bool {
        self.err.is_some()
    }

    /// Flushes the final block, writes the footer, and returns the totals —
    /// or the first error encountered anywhere in the stream.
    pub fn finish(mut self) -> Result<ContainerSummary, StandfileError> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        match self.writer.take() {
            Some(w) => w.finish(),
            None => Err(StandfileError::Format {
                offset: 0,
                msg: "container sink already finished".to_string(),
            }),
        }
    }
}

impl StandSink for ContainerSink {
    fn stand_tree(&mut self, tree: &Tree) {
        if self.err.is_some() {
            return;
        }
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let result = self
            .encoder
            .encode(tree)
            .map_err(StandfileError::from)
            .and_then(|tv| writer.push_code(&tv.code));
        match result {
            Ok(()) => self.pushed += 1,
            Err(e) => self.err = Some(e),
        }
    }
}
