//! `.standckpt` checkpoint sidecars — a durable image of the engine
//! frontier.
//!
//! A paused (or time-limited, or killed-and-restarted) parallel run is
//! resumable exactly when three things survive: the **problem** (taxa +
//! constraint trees), the **frontier** (every pending task's state
//! snapshot and branch subset), and the **progress so far** (cumulative
//! counters plus the finalized `.stand` segment files already written).
//! This module serializes all three into one self-contained sidecar file
//! next to the output container, reusing the container's wire conventions
//! (8-byte magic, LEB128 varints, end magic — see [`crate::container`]):
//!
//! ```text
//! "GSTANDC1"
//! varint version (= 1)
//! varint problem_hash           FNV-1a 64 over taxa + constraint newicks
//! varint mapping                0 recompute · 1 incremental · 2 edge-indexed
//! varint order_code             StateSnapshot::order_code
//! varint threads                worker count of the checkpointed run
//! varint initial_tree           constraint index of the initial agile tree
//! 3 × option<varint>            stopping rules (max_time in milliseconds)
//! 3 × varint                    cumulative stand trees / states / dead ends
//! varint generation             next epoch number (segment namespace)
//! string output                 the target .stand container path
//! vec<string> taxa              universe labels, id order
//! vec<string> constraints       constraint trees as Newick
//! vec<string> segments          finalized segment files written so far
//! vec<task>   frontier          pending task descriptors (see below)
//! u64-le checksum               FNV-1a 64 of every preceding byte
//! "GSTANDCX"
//! ```
//!
//! where `string` is `varint len + bytes`, `vec<x>` is `varint count + x*`,
//! `option<varint>` is a presence byte followed by the value, and a task is
//!
//! ```text
//! varint taxon · vec<varint> branches · varint depth
//! vec<varint> remaining · arena dump (see ArenaDump)
//! ```
//!
//! The arena dump serializes the agile tree *slot-for-slot* (live and dead
//! nodes/edges plus both free lists): branch ids in task descriptors are
//! arena edge indices, so a Newick round-trip — which renumbers the arena —
//! would corrupt them. Mapping-engine internals are deliberately **not**
//! serialized: the projection engines are deterministic functions of
//! `(problem, agile tree)` and are rebuilt from scratch on resume.
//!
//! Checkpoint files cross process boundaries (and crashes), so
//! [`Checkpoint::decode`] treats its input as hostile: truncation, a bad
//! magic, a corrupted byte (checksum), or a problem hash that does not
//! match the stored problem all surface as typed
//! [`StandfileError::Format`] values — never a panic.
//!
//! Durability ordering: the engine finalizes every segment container (its
//! footer makes it self-validating) *before* [`Checkpoint::write_atomic`]
//! publishes the checkpoint that references it via tmp-file + rename. A
//! crash between the two leaves unreferenced partial segments on disk,
//! which resume deletes before re-entering the engine.

use crate::varint::{read_u64, write_u64};
use crate::StandfileError;
use gentrius_core::config::{MappingMode, StoppingRules};
use gentrius_core::stats::RunStats;
use phylo::tree::{ArenaDump, DumpEdge, DumpNode};
use std::path::Path;
use std::time::Duration;

/// Leading magic of a `.standckpt` file.
pub const CKPT_MAGIC: &[u8; 8] = b"GSTANDC1";
/// Trailing magic (truncation guard).
pub const CKPT_END_MAGIC: &[u8; 8] = b"GSTANDCX";
const CKPT_VERSION: u64 = 1;

/// One pending task of the checkpointed frontier. `taxon`, `branches` and
/// `remaining` are raw wire ids (`TaxonId::0` / `EdgeId::0` values); the
/// resume side rebuilds typed values and validates them against the
/// reconstructed problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptTask {
    /// The taxon to insert at the task's state.
    pub taxon: u32,
    /// The pending admissible branches (arena edge ids).
    pub branches: Vec<u32>,
    /// Search depth of the descriptor (scheduler heuristics only).
    pub depth: u64,
    /// Taxa not yet inserted, in selection order.
    pub remaining: Vec<u32>,
    /// Faithful arena image of the task's agile tree.
    pub tree: ArenaDump,
}

/// A decoded (or to-be-encoded) checkpoint: run header, problem, progress
/// and frontier. See the module docs for the wire layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// FNV-1a 64 hash of `taxa` + `constraints`; [`Checkpoint::decode`]
    /// recomputes and rejects on mismatch.
    pub problem_hash: u64,
    /// The mapping-maintenance engine of the run.
    pub mapping: MappingMode,
    /// Order-engine wire code (`StateSnapshot::order_code`).
    pub order_code: u8,
    /// Worker count of the checkpointed run (overridable on resume).
    pub threads: usize,
    /// Constraint index the initial agile tree was copied from.
    pub initial_tree: usize,
    /// The run's stopping rules.
    pub stopping: StoppingRules,
    /// Cumulative counters over all completed epochs.
    pub stats: RunStats,
    /// Next epoch number — resumed segment files are namespaced under it
    /// so they can never collide with segments the checkpoint references.
    pub generation: u64,
    /// The target `.stand` container path.
    pub output: String,
    /// Taxon labels in id order.
    pub taxa: Vec<String>,
    /// Constraint trees as Newick over `taxa`.
    pub constraints: Vec<String>,
    /// Finalized segment containers holding the stand trees emitted so far.
    pub segments: Vec<String>,
    /// The pending frontier.
    pub tasks: Vec<CkptTask>,
}

/// FNV-1a 64 of `bytes` folded into `h` (offset-basis seeded by callers).
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The problem hash stored in (and verified against) a checkpoint: FNV-1a
/// 64 over the taxon labels and constraint Newick strings, each terminated
/// by a NUL so label boundaries cannot alias.
pub fn problem_hash(taxa: &[String], constraints: &[String]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in taxa.iter().chain(constraints.iter()) {
        h = fnv1a(h, s.as_bytes());
        h = fnv1a(h, &[0]);
    }
    h
}

fn write_opt(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            write_u64(buf, x);
        }
    }
}

fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn write_strs(buf: &mut Vec<u8>, v: &[String]) {
    write_u64(buf, v.len() as u64);
    for s in v {
        write_str(buf, s);
    }
}

fn write_ids(buf: &mut Vec<u8>, v: &[u32]) {
    write_u64(buf, v.len() as u64);
    for &x in v {
        write_u64(buf, u64::from(x));
    }
}

fn write_dump(buf: &mut Vec<u8>, d: &ArenaDump) {
    write_u64(buf, d.universe as u64);
    write_u64(buf, d.nodes.len() as u64);
    for n in &d.nodes {
        let flags = u8::from(n.alive) | (u8::from(n.taxon.is_some()) << 1);
        buf.push(flags);
        if let Some(t) = n.taxon {
            write_u64(buf, u64::from(t));
        }
        write_ids(buf, &n.adj);
    }
    write_u64(buf, d.edges.len() as u64);
    for e in &d.edges {
        buf.push(u8::from(e.alive));
        write_u64(buf, u64::from(e.a));
        write_u64(buf, u64::from(e.b));
    }
    write_ids(buf, &d.free_nodes);
    write_ids(buf, &d.free_edges);
}

/// Bounded cursor over checkpoint bytes; every read is offset-tracked so
/// malformed input reports where it went wrong.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: &str) -> StandfileError {
        StandfileError::Format {
            offset: self.pos as u64,
            msg: msg.to_string(),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, StandfileError> {
        read_u64(self.data, &mut self.pos).ok_or_else(|| StandfileError::Format {
            offset: self.pos as u64,
            msg: format!("truncated or overlong varint ({what})"),
        })
    }

    fn usize(&mut self, what: &str) -> Result<usize, StandfileError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| self.err(&format!("{what} value {v} exceeds usize")))
    }

    fn u32(&mut self, what: &str) -> Result<u32, StandfileError> {
        let v = self.u64(what)?;
        u32::try_from(v).map_err(|_| self.err(&format!("{what} value {v} exceeds u32")))
    }

    fn byte(&mut self, what: &str) -> Result<u8, StandfileError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.err(&format!("truncated at {what}")))?;
        self.pos += 1;
        Ok(b)
    }

    fn opt(&mut self, what: &str) -> Result<Option<u64>, StandfileError> {
        match self.byte(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            b => Err(self.err(&format!("bad presence byte {b} for {what}"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, StandfileError> {
        let len = self.usize(what)?;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| self.err(&format!("string ({what}) runs past the end")))?;
        let s = std::str::from_utf8(&self.data[self.pos..end])
            .map_err(|_| self.err(&format!("string ({what}) is not UTF-8")))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    /// Reads a `vec<x>` count, bounding it by the bytes actually left so a
    /// hostile length cannot drive allocation (each element is ≥ 1 byte).
    fn count(&mut self, what: &str) -> Result<usize, StandfileError> {
        let n = self.usize(what)?;
        if n > self.data.len().saturating_sub(self.pos) {
            return Err(self.err(&format!("{what} count {n} exceeds the remaining bytes")));
        }
        Ok(n)
    }

    fn strings(&mut self, what: &str) -> Result<Vec<String>, StandfileError> {
        let n = self.count(what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.string(what)?);
        }
        Ok(out)
    }

    fn ids(&mut self, what: &str) -> Result<Vec<u32>, StandfileError> {
        let n = self.count(what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }

    fn dump(&mut self) -> Result<ArenaDump, StandfileError> {
        let universe = self.usize("arena universe")?;
        let n_nodes = self.count("arena nodes")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let flags = self.byte("node flags")?;
            if flags > 3 {
                return Err(self.err(&format!("bad node flags {flags}")));
            }
            let taxon = if flags & 2 != 0 {
                Some(self.u32("node taxon")?)
            } else {
                None
            };
            nodes.push(DumpNode {
                alive: flags & 1 != 0,
                taxon,
                adj: self.ids("node adjacency")?,
            });
        }
        let n_edges = self.count("arena edges")?;
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let alive = match self.byte("edge alive")? {
                0 => false,
                1 => true,
                b => return Err(self.err(&format!("bad edge-alive byte {b}"))),
            };
            edges.push(DumpEdge {
                alive,
                a: self.u32("edge endpoint a")?,
                b: self.u32("edge endpoint b")?,
            });
        }
        Ok(ArenaDump {
            universe,
            nodes,
            edges,
            free_nodes: self.ids("free nodes")?,
            free_edges: self.ids("free edges")?,
        })
    }
}

impl Checkpoint {
    /// Serializes the checkpoint to its wire form (including checksum and
    /// end magic).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(CKPT_MAGIC);
        write_u64(&mut buf, CKPT_VERSION);
        write_u64(&mut buf, self.problem_hash);
        let mode = match self.mapping {
            MappingMode::Recompute => 0u64,
            MappingMode::Incremental => 1,
            MappingMode::EdgeIndexed => 2,
        };
        write_u64(&mut buf, mode);
        write_u64(&mut buf, u64::from(self.order_code));
        write_u64(&mut buf, self.threads as u64);
        write_u64(&mut buf, self.initial_tree as u64);
        write_opt(&mut buf, self.stopping.max_stand_trees);
        write_opt(&mut buf, self.stopping.max_intermediate_states);
        write_opt(
            &mut buf,
            self.stopping
                .max_time
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        );
        write_u64(&mut buf, self.stats.stand_trees);
        write_u64(&mut buf, self.stats.intermediate_states);
        write_u64(&mut buf, self.stats.dead_ends);
        write_u64(&mut buf, self.generation);
        write_str(&mut buf, &self.output);
        write_strs(&mut buf, &self.taxa);
        write_strs(&mut buf, &self.constraints);
        write_strs(&mut buf, &self.segments);
        write_u64(&mut buf, self.tasks.len() as u64);
        for t in &self.tasks {
            write_u64(&mut buf, u64::from(t.taxon));
            write_ids(&mut buf, &t.branches);
            write_u64(&mut buf, t.depth);
            write_ids(&mut buf, &t.remaining);
            write_dump(&mut buf, &t.tree);
        }
        let checksum = fnv1a(FNV_OFFSET, &buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf.extend_from_slice(CKPT_END_MAGIC);
        buf
    }

    /// Parses and validates checkpoint bytes. Rejects (with a typed
    /// [`StandfileError::Format`], never a panic): a wrong or truncated
    /// magic, an unsupported version, a missing or mismatching trailing
    /// checksum/end magic, any truncated field, and a stored problem hash
    /// that does not match the stored taxa + constraints.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, StandfileError> {
        let fail = |offset: usize, msg: &str| StandfileError::Format {
            offset: offset as u64,
            msg: msg.to_string(),
        };
        if data.len() < CKPT_MAGIC.len() + 16 + CKPT_END_MAGIC.len() {
            return Err(fail(data.len(), "file too short for a checkpoint"));
        }
        if &data[..8] != CKPT_MAGIC {
            return Err(fail(0, "bad checkpoint magic"));
        }
        if &data[data.len() - 8..] != CKPT_END_MAGIC {
            return Err(fail(data.len() - 8, "missing end magic (truncated file?)"));
        }
        let body_end = data.len() - 16;
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&data[body_end..body_end + 8]);
        let stored_sum = u64::from_le_bytes(sum);
        if fnv1a(FNV_OFFSET, &data[..body_end]) != stored_sum {
            return Err(fail(body_end, "checksum mismatch (corrupted checkpoint)"));
        }
        let mut r = Reader {
            data: &data[..body_end],
            pos: 8,
        };
        let version = r.u64("version")?;
        if version != CKPT_VERSION {
            return Err(fail(
                8,
                &format!("unsupported checkpoint version {version}"),
            ));
        }
        let stored_hash = r.u64("problem hash")?;
        let mapping = match r.u64("mapping mode")? {
            0 => MappingMode::Recompute,
            1 => MappingMode::Incremental,
            2 => MappingMode::EdgeIndexed,
            m => return Err(r.err(&format!("unknown mapping mode {m}"))),
        };
        let order_code = r.u64("order code")?;
        let order_code =
            u8::try_from(order_code).map_err(|_| r.err("order code exceeds one byte"))?;
        let threads = r.usize("threads")?;
        let initial_tree = r.usize("initial tree")?;
        let stopping = StoppingRules {
            max_stand_trees: r.opt("max stand trees")?,
            max_intermediate_states: r.opt("max intermediate states")?,
            max_time: r.opt("max time")?.map(Duration::from_millis),
        };
        let stats = RunStats {
            stand_trees: r.u64("stand trees")?,
            intermediate_states: r.u64("intermediate states")?,
            dead_ends: r.u64("dead ends")?,
        };
        let generation = r.u64("generation")?;
        let output = r.string("output path")?;
        let taxa = r.strings("taxa")?;
        let constraints = r.strings("constraints")?;
        let segments = r.strings("segments")?;
        if problem_hash(&taxa, &constraints) != stored_hash {
            return Err(fail(
                8,
                "problem hash does not match the stored taxa and constraints",
            ));
        }
        let n_tasks = r.count("tasks")?;
        let mut tasks = Vec::with_capacity(n_tasks);
        for _ in 0..n_tasks {
            tasks.push(CkptTask {
                taxon: r.u32("task taxon")?,
                branches: r.ids("task branches")?,
                depth: r.u64("task depth")?,
                remaining: r.ids("task remaining")?,
                tree: r.dump()?,
            });
        }
        if r.pos != body_end {
            return Err(fail(r.pos, "trailing garbage after the last task"));
        }
        Ok(Checkpoint {
            problem_hash: stored_hash,
            mapping,
            order_code,
            threads,
            initial_tree,
            stopping,
            stats,
            generation,
            output,
            taxa,
            constraints,
            segments,
            tasks,
        })
    }

    /// Writes the checkpoint durably: encode into `path` + `".tmp"`, then
    /// rename over `path`. Readers therefore only ever observe either the
    /// previous complete checkpoint or the new one — never a torn write.
    pub fn write_atomic(&self, path: &Path) -> Result<(), StandfileError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes a checkpoint file.
    pub fn read(path: &Path) -> Result<Checkpoint, StandfileError> {
        let data = std::fs::read(path)?;
        Checkpoint::decode(&data)
    }
}
