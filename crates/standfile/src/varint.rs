//! LEB128 variable-length integers — the container's only wire primitive.
//!
//! Stand codes are dominated by small edge indices (`code[i] < 2i + 1`), so
//! LEB128 stores the common case in one byte while still addressing 64-bit
//! offsets and tree counts in the footer.

/// Appends `v` to `buf` as LEB128 (1–10 bytes).
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 integer from `data` at `*pos`, advancing it. Returns
/// `None` on truncation or a value wider than 64 bits.
pub fn read_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        // arith: `*pos` was a valid index just above, so the increment
        // cannot overflow `usize`.
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && low > 1) {
            return None;
        }
        // arith: in range by the rejection above — `shift <= 56` when a
        // full 7 bits remain, and at `shift == 63` only `low <= 1` passes.
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        // arith: bounded — the guard above rejects at 64 before `shift`
        // can grow past 70, far below any wrap.
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edges() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_fail() {
        let mut pos = 0;
        assert_eq!(read_u64(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(read_u64(&[], &mut pos), None);
        // 11 continuation bytes exceed 64 bits.
        let overlong = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&overlong, &mut pos), None);
    }
}
