//! # gentrius-standfile — on-disk stand containers
//!
//! Stands are often too large to hold in RAM (§II: the number of trees
//! displaying a set of constraints can blow up exponentially), so this
//! crate stores them on disk in an append-only, block-compressed container
//! with random access by tree index:
//!
//! - each tree is reduced to its **phylo2vec code** (`n - 2` small
//!   integers, [`phylo::phylo2vec`]) instead of a Newick string;
//! - codes are packed into blocks of [`DEFAULT_BLOCK_CAPACITY`] trees,
//!   **prefix-delta** coded against the previous tree of the block (the
//!   enumeration emits long runs of near-identical codes, so most trees
//!   shrink to a few bytes) and LEB128 varint encoded;
//! - a footer index maps block → file offset, so `stand cat` can page any
//!   index range without scanning the file;
//! - blocks are self-contained (the delta chain resets at every block), so
//!   per-worker segment files from a parallel run merge by raw byte copy.
//!
//! The full wire format is specified in [`container`]. Producers stream
//! through [`ContainerSink`] (a `gentrius_core::StandSink`); consumers use
//! [`Container`] for random access or `for_each_newick` for bounded-memory
//! scans.

#![warn(missing_docs)]

pub mod ckpt;
pub mod container;
pub mod sink;
mod varint;

pub use ckpt::{Checkpoint, CkptTask};
pub use container::{
    merge_segments, Container, ContainerSummary, ContainerWriter, DEFAULT_BLOCK_CAPACITY,
};
pub use sink::ContainerSink;

use phylo::phylo2vec::P2vError;
use std::fmt;

/// Errors from writing, reading, or merging `.stand` containers.
#[derive(Debug)]
pub enum StandfileError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file bytes do not form a valid container.
    Format {
        /// Approximate file offset of the problem.
        offset: u64,
        /// What was wrong.
        msg: String,
    },
    /// A tree could not be encoded to / decoded from its phylo2vec code.
    Encode(P2vError),
    /// A tree or a merged segment spans a different taxon set than the
    /// container header.
    TaxaMismatch(String),
    /// A tree index past the end of the container was requested.
    OutOfBounds {
        /// The requested tree index.
        index: u64,
        /// The number of trees stored.
        len: u64,
    },
}

impl fmt::Display for StandfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StandfileError::Io(e) => write!(f, "stand container I/O error: {e}"),
            StandfileError::Format { offset, msg } => {
                write!(f, "malformed stand container at byte {offset}: {msg}")
            }
            StandfileError::Encode(e) => write!(f, "stand tree codec error: {e}"),
            StandfileError::TaxaMismatch(msg) => write!(f, "taxon set mismatch: {msg}"),
            StandfileError::OutOfBounds { index, len } => {
                write!(
                    f,
                    "tree index {index} out of bounds (container holds {len})"
                )
            }
        }
    }
}

impl std::error::Error for StandfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StandfileError::Io(e) => Some(e),
            StandfileError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StandfileError {
    fn from(e: std::io::Error) -> Self {
        StandfileError::Io(e)
    }
}

impl From<P2vError> for StandfileError {
    fn from(e: P2vError) -> Self {
        StandfileError::Encode(e)
    }
}
