//! `.standckpt` wire-format tests: property-based encode/decode
//! round-trips plus a rejection table of truncated, corrupted and
//! mismatched inputs. Decode treats checkpoint files as hostile input —
//! every rejection must be a typed [`StandfileError`], never a panic.

use gentrius_core::config::{MappingMode, StoppingRules};
use gentrius_core::stats::RunStats;
use gentrius_standfile::ckpt::{problem_hash, CKPT_MAGIC};
use gentrius_standfile::{Checkpoint, CkptTask, StandfileError};
use phylo::tree::{ArenaDump, DumpEdge, DumpNode};
use proptest::prelude::*;
use std::time::Duration;

/// `Option<u64>` over the full wire range of the stopping-rule fields.
fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..u64::MAX / 2_000).prop_map(Some)]
}

fn dump_strategy() -> impl Strategy<Value = ArenaDump> {
    // Structural plausibility is not required for serde round-trips: the
    // wire layer ships slots verbatim and only `Tree::from_arena_dump`
    // validates graph invariants. Flags and ids just have to fit the wire.
    let taxon = prop_oneof![Just(None), (0u32..64).prop_map(Some)];
    let node = (
        proptest::bool::ANY,
        taxon,
        proptest::collection::vec(0u32..64, 0..4),
    )
        .prop_map(|(alive, taxon, adj)| DumpNode { alive, taxon, adj });
    let edge = (proptest::bool::ANY, 0u32..64, 0u32..64).prop_map(|(alive, a, b)| DumpEdge {
        alive,
        a,
        b,
    });
    (
        0usize..32,
        proptest::collection::vec(node, 0..8),
        proptest::collection::vec(edge, 0..8),
        (
            proptest::collection::vec(0u32..8, 0..4),
            proptest::collection::vec(0u32..8, 0..4),
        ),
    )
        .prop_map(
            |(universe, nodes, edges, (free_nodes, free_edges))| ArenaDump {
                universe,
                nodes,
                edges,
                free_nodes,
                free_edges,
            },
        )
}

fn task_strategy() -> impl Strategy<Value = CkptTask> {
    (
        (0u32..1000, proptest::collection::vec(0u32..u32::MAX, 0..6)),
        (
            0u64..u64::MAX,
            proptest::collection::vec(0u32..u32::MAX, 0..6),
        ),
        dump_strategy(),
    )
        .prop_map(|((taxon, branches), (depth, remaining), tree)| CkptTask {
            taxon,
            branches,
            depth,
            remaining,
            tree,
        })
}

fn ckpt_strategy() -> impl Strategy<Value = Checkpoint> {
    let mapping = prop_oneof![
        Just(MappingMode::Recompute),
        Just(MappingMode::Incremental),
        Just(MappingMode::EdgeIndexed),
    ];
    // Labels may be empty and may collide across the vectors: the hash
    // NUL-terminates each one precisely so boundary games cannot alias
    // two distinct problems, and round-trips must not care either way.
    let name = "[a-zA-Z0-9_.-]{0,10}";
    let header = (mapping, 0u8..3, 0usize..64, 0usize..8);
    let rules = (opt_u64(), opt_u64(), opt_u64());
    let counters = (
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
    );
    let strings = (
        name,
        proptest::collection::vec(name, 0..6),
        proptest::collection::vec(name, 0..4),
        proptest::collection::vec(name, 0..4),
    );
    (
        (header, rules),
        (counters, strings),
        proptest::collection::vec(task_strategy(), 0..4),
    )
        .prop_map(
            |(
                ((mapping, order_code, threads, initial_tree), (max_trees, max_states, max_ms)),
                (
                    (stand_trees, intermediate_states, dead_ends, generation),
                    (output, taxa, constraints, segments),
                ),
                tasks,
            )| {
                Checkpoint {
                    problem_hash: problem_hash(&taxa, &constraints),
                    mapping,
                    order_code,
                    threads,
                    initial_tree,
                    stopping: StoppingRules {
                        max_stand_trees: max_trees,
                        max_intermediate_states: max_states,
                        max_time: max_ms.map(Duration::from_millis),
                    },
                    stats: RunStats {
                        stand_trees,
                        intermediate_states,
                        dead_ends,
                    },
                    generation,
                    output,
                    taxa,
                    constraints,
                    segments,
                    tasks,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_identity(ck in ckpt_strategy()) {
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("decode of own encoding");
        prop_assert_eq!(back, ck);
    }

    /// Every truncation of a valid checkpoint is rejected with a typed
    /// error — the end magic + checksum make partial writes detectable.
    #[test]
    fn every_truncation_is_rejected(ck in ckpt_strategy(), sel in 0usize..1_000_000) {
        let bytes = ck.encode();
        let cut = sel % bytes.len();
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }

    /// Any single flipped bit is rejected: the trailing FNV checksum
    /// covers every byte before it, and a flip inside the checksum or end
    /// magic no longer matches the body.
    #[test]
    fn any_single_bit_flip_is_rejected(ck in ckpt_strategy(), sel in 0usize..1_000_000, bit in 0u8..8) {
        let mut bytes = ck.encode();
        let i = sel % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }
}

fn sample() -> Checkpoint {
    Checkpoint {
        problem_hash: problem_hash(
            &["A".into(), "B".into(), "C".into(), "D".into()],
            &["((A,B),(C,D));".into()],
        ),
        mapping: MappingMode::EdgeIndexed,
        order_code: 1,
        threads: 4,
        initial_tree: 0,
        stopping: StoppingRules::unlimited(),
        stats: RunStats {
            stand_trees: 42,
            intermediate_states: 99,
            dead_ends: 7,
        },
        generation: 3,
        output: "out.stand".into(),
        taxa: vec!["A".into(), "B".into(), "C".into(), "D".into()],
        constraints: vec!["((A,B),(C,D));".into()],
        segments: vec!["out.stand.g0.seg1".into()],
        tasks: Vec::new(),
    }
}

/// Recomputes and patches the trailing checksum so a deliberate body
/// mutation survives the integrity check and reaches the semantic
/// validators behind it.
fn fix_checksum(bytes: &mut [u8]) {
    let body_end = bytes.len() - 16;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &bytes[..body_end] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    bytes[body_end..body_end + 8].copy_from_slice(&h.to_le_bytes());
}

#[test]
fn rejection_table() {
    let good = sample().encode();
    assert!(Checkpoint::decode(&good).is_ok());

    // Empty and sub-minimal inputs.
    assert!(Checkpoint::decode(&[]).is_err());
    assert!(Checkpoint::decode(b"GSTANDC1").is_err());

    // Bad leading magic (a .stand container is not a checkpoint).
    let mut bad_magic = good.clone();
    bad_magic[..8].copy_from_slice(b"GSTANDF1");
    assert!(Checkpoint::decode(&bad_magic).is_err());

    // Bad end magic / short footer.
    let mut bad_end = good.clone();
    let n = bad_end.len();
    bad_end[n - 1] = b'?';
    assert!(Checkpoint::decode(&bad_end).is_err());
    assert!(Checkpoint::decode(&good[..n - 3]).is_err());

    // Unsupported version (patch the varint after the magic + checksum).
    let mut bad_version = good.clone();
    assert_eq!(bad_version[8], 1, "version varint moved?");
    bad_version[8] = 2;
    fix_checksum(&mut bad_version);
    let err = Checkpoint::decode(&bad_version).unwrap_err();
    assert!(
        matches!(&err, StandfileError::Format { msg, .. } if msg.contains("version")),
        "{err}"
    );

    // Wrong problem hash: flip a taxon label byte and repair the
    // checksum — the stored hash no longer matches the stored problem.
    // The taxa vec serializes "A","B" as `01 'A' 01 'B'`, a sequence that
    // appears nowhere earlier in this sample's encoding.
    let mut wrong_problem = good.clone();
    let pos = wrong_problem
        .windows(4)
        .position(|w| w == [1, b'A', 1, b'B'])
        .expect("taxon label bytes")
        + 1;
    wrong_problem[pos] = b'Z';
    fix_checksum(&mut wrong_problem);
    let err = Checkpoint::decode(&wrong_problem).unwrap_err();
    assert!(
        matches!(&err, StandfileError::Format { msg, .. } if msg.contains("hash")),
        "{err}"
    );

    // Trailing garbage between the body and the footer.
    let mut padded = sample();
    padded.segments.clear();
    let mut bytes = padded.encode();
    let split = bytes.len() - 16;
    bytes.splice(split..split, [0u8; 4]);
    fix_checksum(&mut bytes);
    assert!(Checkpoint::decode(&bytes).is_err());

    // Hostile varints after a valid magic reject without panicking (and
    // without honoring claimed element counts: decode bounds every count
    // by the remaining byte budget before reserving a Vec).
    let mut huge = Vec::new();
    huge.extend_from_slice(CKPT_MAGIC);
    huge.push(1); // version
    huge.extend_from_slice(&[0xff; 64]);
    assert!(Checkpoint::decode(&huge).is_err());
}

#[test]
fn read_reports_missing_file() {
    let p = std::env::temp_dir().join("standfile-tests-no-such.standckpt");
    let _ = std::fs::remove_file(&p);
    assert!(Checkpoint::read(&p).is_err());
}

#[test]
fn write_atomic_then_read_roundtrips() {
    let dir = std::env::temp_dir().join("standfile-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{}-atomic.standckpt", std::process::id()));
    let ck = sample();
    ck.write_atomic(&p).unwrap();
    // The tmp staging file must not survive a successful publish.
    assert!(!p.with_extension("standckpt.tmp").exists());
    let back = Checkpoint::read(&p).unwrap();
    assert_eq!(back, ck);
    let _ = std::fs::remove_file(&p);
}
