//! Container write/read round-trips, random access across block
//! boundaries, segment merging, and hostile-label headers.

use gentrius_core::StandSink;
use gentrius_standfile::{
    merge_segments, Container, ContainerSink, ContainerWriter, StandfileError,
};
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::newick::to_newick;
use phylo::phylo2vec;
use phylo::taxa::TaxonSet;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("standfile-tests");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

/// `count` random trees on `n` taxa plus their canonical Newick strings.
fn random_trees(n: usize, count: usize, seed: u64) -> (TaxonSet, Vec<phylo::Tree>, Vec<String>) {
    let taxa = TaxonSet::with_synthetic(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let trees: Vec<phylo::Tree> = (0..count)
        .map(|i| {
            let model = if i % 2 == 0 {
                ShapeModel::Uniform
            } else {
                ShapeModel::Yule
            };
            random_tree_on_n(n, model, &mut rng)
        })
        .collect();
    let newicks = trees.iter().map(|t| to_newick(t, &taxa)).collect();
    (taxa, trees, newicks)
}

#[test]
fn roundtrip_across_block_boundaries() {
    // Block capacity 7 with 100 trees forces 15 blocks, the last partial.
    let (taxa, trees, newicks) = random_trees(12, 100, 41);
    let path = tmp("roundtrip.stand");
    let mut w = ContainerWriter::with_capacity(&path, &taxa, 7).expect("create");
    for t in &trees {
        let tv = phylo2vec::encode(t).expect("encode");
        w.push_code(&tv.code).expect("push");
    }
    let summary = w.finish().expect("finish");
    assert_eq!(summary.trees, 100);
    assert_eq!(summary.blocks, 15);

    let mut c = Container::open(&path).expect("open");
    assert_eq!(c.len(), 100);
    assert_eq!(c.block_count(), 15);
    assert_eq!(c.taxa().len(), 12);

    // Sequential scan reproduces the exact Newick sequence.
    let mut seen = Vec::new();
    c.for_each_newick(0, u64::MAX, |i, nwk| {
        assert_eq!(i as usize, seen.len());
        seen.push(nwk.to_string());
        Ok(())
    })
    .expect("scan");
    assert_eq!(seen, newicks);

    // Random access, deliberately hopping across blocks and backwards.
    for &i in &[99u64, 0, 55, 7, 6, 13, 14, 98, 42] {
        assert_eq!(
            c.newick(i).expect("newick"),
            newicks[i as usize],
            "tree {i}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sink_streams_and_reader_pages_ranges() {
    let (taxa, trees, newicks) = random_trees(9, 50, 77);
    let path = tmp("sink.stand");
    let mut sink = ContainerSink::with_capacity(&path, &taxa, 8);
    for t in &trees {
        sink.stand_tree(t);
    }
    assert!(!sink.failed());
    assert_eq!(sink.pushed(), 50);
    let summary = sink.finish().expect("finish");
    assert_eq!(summary.trees, 50);

    let mut c = Container::open(&path).expect("open");
    // Paged reads: [10, 20) and a clamped over-long tail.
    let mut page = Vec::new();
    c.for_each_newick(10, 20, |_, nwk| {
        page.push(nwk.to_string());
        Ok(())
    })
    .expect("page");
    assert_eq!(page, newicks[10..20]);
    let mut tail = Vec::new();
    c.for_each_newick(45, 10_000, |i, nwk| {
        tail.push((i, nwk.to_string()));
        Ok(())
    })
    .expect("tail");
    assert_eq!(tail.len(), 5);
    assert_eq!(tail[0].0, 45);
    assert_eq!(tail[4].1, newicks[49]);
    std::fs::remove_file(&path).ok();
}

#[test]
fn merge_concatenates_segments_in_order_and_deletes_them() {
    let (taxa, trees, newicks) = random_trees(10, 60, 5);
    let seg_paths: Vec<PathBuf> = (0..4).map(|i| tmp(&format!("merge.seg{i}"))).collect();
    // Segment 2 stays empty-but-present, segment 3 is never created
    // (worker that produced nothing) — both must be handled.
    for (s, chunk) in trees.chunks(30).enumerate() {
        let mut sink = ContainerSink::with_capacity(&seg_paths[s], &taxa, 9);
        for t in chunk {
            sink.stand_tree(t);
        }
        sink.finish().expect("segment finish");
    }
    ContainerSink::with_capacity(&seg_paths[2], &taxa, 9)
        .finish()
        .expect("empty segment finish");

    let dest = tmp("merge.stand");
    let summary = merge_segments(&dest, &taxa, &seg_paths).expect("merge");
    assert_eq!(summary.trees, 60);
    for p in &seg_paths[..3] {
        assert!(!p.exists(), "segment {} should be deleted", p.display());
    }

    let mut c = Container::open(&dest).expect("open merged");
    assert_eq!(c.len(), 60);
    let mut seen = Vec::new();
    c.for_each_newick(0, u64::MAX, |_, nwk| {
        seen.push(nwk.to_string());
        Ok(())
    })
    .expect("scan merged");
    assert_eq!(seen, newicks, "merge preserves segment order");
    std::fs::remove_file(&dest).ok();
}

#[test]
fn merge_rejects_mismatched_taxa() {
    let (taxa_a, trees, _) = random_trees(8, 3, 1);
    let taxa_b = TaxonSet::with_synthetic(9);
    let seg = tmp("mismatch.seg0");
    let mut sink = ContainerSink::create(&seg, &taxa_a);
    for t in &trees {
        sink.stand_tree(t);
    }
    sink.finish().expect("segment finish");
    let dest = tmp("mismatch.stand");
    let err = merge_segments(&dest, &taxa_b, std::slice::from_ref(&seg));
    assert!(
        matches!(err, Err(StandfileError::TaxaMismatch(_))),
        "got {err:?}"
    );
    std::fs::remove_file(&seg).ok();
    std::fs::remove_file(&dest).ok();
}

#[test]
fn hostile_labels_survive_the_header() {
    let mut taxa = TaxonSet::new();
    for name in [
        "plain",
        "with space",
        "quo'te",
        "par(en),comma;colon:",
        "uni-τάξον-🌲",
        "_under_",
        "7",
    ] {
        taxa.intern(name);
    }
    let (_, trees, _) = {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let trees: Vec<phylo::Tree> = (0..10)
            .map(|_| random_tree_on_n(7, ShapeModel::Uniform, &mut rng))
            .collect();
        (0, trees, 0)
    };
    let newicks: Vec<String> = trees.iter().map(|t| to_newick(t, &taxa)).collect();
    let path = tmp("hostile.stand");
    let mut sink = ContainerSink::with_capacity(&path, &taxa, 3);
    for t in &trees {
        sink.stand_tree(t);
    }
    sink.finish().expect("finish");

    let mut c = Container::open(&path).expect("open");
    assert_eq!(
        c.taxa_names(),
        taxa.iter().map(|(_, n)| n.to_string()).collect::<Vec<_>>()
    );
    for (i, expect) in newicks.iter().enumerate() {
        assert_eq!(&c.newick(i as u64).expect("newick"), expect);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_rejects_garbage_and_truncation() {
    let path = tmp("garbage.stand");
    std::fs::write(&path, b"definitely not a container").expect("write");
    assert!(matches!(
        Container::open(&path),
        Err(StandfileError::Format { .. })
    ));

    // A valid container with the footer chopped off must be rejected, not
    // misread.
    let (taxa, trees, _) = random_trees(8, 20, 123);
    let mut sink = ContainerSink::with_capacity(&path, &taxa, 4);
    for t in &trees {
        sink.stand_tree(t);
    }
    sink.finish().expect("finish");
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
    assert!(matches!(
        Container::open(&path),
        Err(StandfileError::Format { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn out_of_bounds_and_wrong_universe_are_typed_errors() {
    let (taxa, trees, _) = random_trees(6, 5, 9);
    let path = tmp("bounds.stand");
    let mut sink = ContainerSink::create(&path, &taxa);
    for t in &trees {
        sink.stand_tree(t);
    }
    sink.finish().expect("finish");
    let mut c = Container::open(&path).expect("open");
    assert!(matches!(
        c.newick(5),
        Err(StandfileError::OutOfBounds { index: 5, len: 5 })
    ));

    // A sink over a 10-taxon universe fed 6-taxon trees latches an error
    // instead of writing a corrupt file.
    let big = TaxonSet::with_synthetic(10);
    let path2 = tmp("universe.stand");
    let mut sink = ContainerSink::create(&path2, &big);
    sink.stand_tree(&trees[0]);
    assert!(sink.failed());
    assert!(matches!(
        sink.finish(),
        Err(StandfileError::TaxaMismatch(_))
    ));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}

#[test]
fn prefix_delta_compresses_sibling_runs() {
    // Enumeration-order trees share long code prefixes; verify the format
    // actually exploits that: a run of trees differing only in the last
    // code entry must stay well under one byte per code entry.
    let taxa = TaxonSet::with_synthetic(32);
    let universe = taxa.len();
    let ids: Vec<phylo::TaxonId> = (0..universe as u32).map(phylo::TaxonId).collect();
    let base: Vec<u32> = (0..30u32).map(|j| (2 * j) % (2 * j + 1)).collect();
    let path = tmp("delta.stand");
    let mut w = ContainerWriter::with_capacity(&path, &taxa, 1024).expect("create");
    let mut count = 0u64;
    for last in 0..500u32 {
        let mut code = base.clone();
        code[29] = last % 59; // bound for j = 29 is 2*29+1 = 59
                              // Sanity: the codes must decode (i.e. be valid trees).
        phylo2vec::decode(universe, &ids, &code).expect("valid code");
        w.push_code(&code).expect("push");
        count += 1;
    }
    let summary = w.finish().expect("finish");
    assert_eq!(summary.trees, count);
    let size = std::fs::metadata(&path).expect("meta").len();
    let naive = count * 30; // one byte per entry, ignoring framing
    assert!(
        size < naive / 4,
        "delta coding should beat naive packing 4x on sibling runs: {size} vs {naive}"
    );
    std::fs::remove_file(&path).ok();
}
