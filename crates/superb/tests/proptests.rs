//! Property tests of the SUPERB baseline against Gentrius and its own
//! enumeration, on randomized comprehensive-taxon instances.

use gentrius_core::{CountOnly, GentriusConfig, StandProblem, StoppingRules};
use gentrius_superb::{enumerate_rooted, root_at, superb_count, RootedNode};
use phylo::bitset::BitSet;
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::ops::restrict;
use phylo::taxa::TaxonId;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random problem where taxon 0 is comprehensive (in every constraint).
fn comprehensive_problem(seed: u64) -> Option<StandProblem> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(7..=11);
    let source = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
    let m = rng.gen_range(2..=4);
    let mut covered = BitSet::new(n);
    covered.insert(0);
    let mut cols = Vec::new();
    for _ in 0..m {
        let k = rng.gen_range(4..=n.min(7));
        let mut s = BitSet::new(n);
        s.insert(0); // comprehensive taxon
        while s.count() < k {
            s.insert(rng.gen_range(0..n));
        }
        covered.union_with(&s);
        cols.push(s);
    }
    if covered.count() != n {
        return None;
    }
    let constraints: Vec<_> = cols.iter().map(|c| restrict(&source, c)).collect();
    StandProblem::from_constraints(constraints).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn count_always_matches_gentrius(seed in 0u64..100_000) {
        let Some(p) = comprehensive_problem(seed) else { return Ok(()) };
        let cfg = GentriusConfig {
            stopping: StoppingRules::counts(200_000, 1_000_000),
            ..GentriusConfig::default()
        };
        let g = gentrius_core::run_serial(&p, &cfg, &mut CountOnly).expect("run");
        prop_assume!(g.complete());
        let s = superb_count(&p).expect("comprehensive by construction");
        prop_assert_eq!(s, g.stats.stand_trees as u128);
    }

    #[test]
    fn enumeration_length_matches_count(seed in 0u64..100_000) {
        let Some(p) = comprehensive_problem(seed) else { return Ok(()) };
        let count = superb_count(&p).expect("comprehensive");
        prop_assume!(count > 0 && count <= 5_000);
        let r = TaxonId(0);
        let rooted: Vec<RootedNode> = p
            .constraints()
            .iter()
            .filter_map(|t| root_at(t, r))
            .collect();
        let mut leaves = p.all_taxa().clone();
        leaves.remove(0);
        let refs: Vec<&RootedNode> = rooted.iter().collect();
        let all = enumerate_rooted(&leaves, &refs, 10_000).expect("within cap");
        prop_assert_eq!(all.len() as u128, count);
    }

    #[test]
    fn rooted_count_of_free_leafsets(k in 1usize..10) {
        let leaves = BitSet::from_iter(16, 0..k);
        let n = gentrius_superb::count_rooted(&leaves, &[]).expect("no overflow");
        prop_assert_eq!(n, gentrius_superb::num_rooted_topologies(k).unwrap());
    }
}
