//! The SUPERB counting recursion.
//!
//! `count(L, active)` = number of rooted binary trees on leaf set `L`
//! displaying every active rooted constraint. At each level:
//!
//! 1. Constraints covering ≤ 2 of `L`'s taxa are vacuous and dropped.
//! 2. The two root clusters of every active constraint must each end up
//!    wholly on one side of the root bipartition, so the *blocks* —
//!    connected components of the leaves under "appears in a common
//!    cluster" — are the atomic units.
//! 3. A single block means no valid bipartition exists → 0 trees.
//!    Otherwise every unordered bipartition of the blocks is valid;
//!    summing `count(A)·count(B)` over them (with constraints pushed to
//!    the side containing them, descending into a root child when the
//!    bipartition realizes the constraint's own root split) gives the
//!    total.
//! 4. With no active constraints the answer is the closed form
//!    `(2k-3)!!` rooted binary topologies on `k` leaves.
//!
//! Counts use checked `u128` arithmetic — terraces are often astronomically
//! large, and a saturated count would silently corrupt cross-validation.

use crate::cluster::RootedNode;
use phylo::bitset::BitSet;
use std::collections::HashMap;

/// Errors of the SUPERB counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuperbError {
    /// The count exceeds `u128`.
    Overflow,
    /// A level of the recursion has more blocks than the enumeration cap
    /// (the sum ranges over `2^(blocks-1) - 1` bipartitions).
    TooManyBlocks(usize),
}

impl std::fmt::Display for SuperbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuperbError::Overflow => write!(f, "terrace size exceeds u128"),
            SuperbError::TooManyBlocks(b) => {
                write!(f, "{b} blocks at one level exceed the enumeration cap")
            }
        }
    }
}

impl std::error::Error for SuperbError {}

/// Maximum blocks per level; above this the `2^(p-1)` bipartition sum is
/// infeasible (and the count would overflow anyway in practice).
pub const MAX_BLOCKS: usize = 24;

/// `(2k-3)!!` — rooted binary topologies on `k ≥ 1` leaves.
pub fn num_rooted_topologies(k: usize) -> Result<u128, SuperbError> {
    let mut acc: u128 = 1;
    for i in 3..=k as u128 {
        acc = acc.checked_mul(2 * i - 3).ok_or(SuperbError::Overflow)?;
    }
    Ok(acc)
}

/// Counts rooted binary trees on `leaves` displaying all `constraints`
/// (rooted cluster hierarchies whose leaf sets are subsets of `leaves`).
pub fn count_rooted(leaves: &BitSet, constraints: &[&RootedNode]) -> Result<u128, SuperbError> {
    let mut memo: HashMap<BitSet, u128> = HashMap::new();
    count_rec(leaves, constraints, &mut memo)
}

fn count_rec(
    leaves: &BitSet,
    constraints: &[&RootedNode],
    memo: &mut HashMap<BitSet, u128>,
) -> Result<u128, SuperbError> {
    let k = leaves.count();
    if k <= 2 {
        return Ok(1);
    }
    // Active constraints: at least 3 of our leaves (2-leaf constraints are
    // vacuous — every restriction to two taxa is the unique cherry).
    let active: Vec<&RootedNode> = constraints
        .iter()
        .copied()
        .filter(|c| c.leaves.intersection_count(leaves) >= 3)
        .collect();
    debug_assert!(
        active.iter().all(|c| c.leaves.is_subset(leaves)),
        "invariant: active constraint leaf sets nest in L"
    );
    if active.is_empty() {
        return num_rooted_topologies(k);
    }
    if let Some(&hit) = memo.get(leaves) {
        return Ok(hit);
    }

    // Blocks: union-find over leaves, uniting within each root cluster of
    // each active constraint.
    let mut parent: HashMap<usize, usize> = leaves.iter().map(|t| (t, t)).collect();
    fn find(parent: &mut HashMap<usize, usize>, x: usize) -> usize {
        let p = parent[&x];
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    for c in &active {
        for child in &c.children {
            let mut members = child.leaves.iter();
            if let Some(first) = members.next() {
                let fr = find(&mut parent, first);
                for m in members {
                    let mr = find(&mut parent, m);
                    parent.insert(mr, fr);
                }
            }
        }
    }
    let mut block_of: HashMap<usize, usize> = HashMap::new();
    let mut blocks: Vec<BitSet> = Vec::new();
    for t in leaves.iter() {
        let r = find(&mut parent, t);
        let idx = *block_of.entry(r).or_insert_with(|| {
            blocks.push(BitSet::new(leaves.universe()));
            blocks.len() - 1
        });
        blocks[idx].insert(t);
    }
    let p = blocks.len();
    if p == 1 {
        memo.insert(leaves.clone(), 0);
        return Ok(0);
    }
    if p > MAX_BLOCKS {
        return Err(SuperbError::TooManyBlocks(p));
    }

    // Sum over unordered bipartitions: block 0 is pinned to side A.
    let mut total: u128 = 0;
    for mask in 0..(1u64 << (p - 1)) {
        let mut side_a = blocks[0].clone();
        let mut side_b = BitSet::new(leaves.universe());
        for (j, block) in blocks.iter().enumerate().skip(1) {
            if mask >> (j - 1) & 1 == 1 {
                side_a.union_with(block);
            } else {
                side_b.union_with(block);
            }
        }
        if side_b.is_empty() {
            continue;
        }
        let ca = count_side(&side_a, &active, memo)?;
        if ca == 0 {
            continue;
        }
        let cb = count_side(&side_b, &active, memo)?;
        total = total
            .checked_add(ca.checked_mul(cb).ok_or(SuperbError::Overflow)?)
            .ok_or(SuperbError::Overflow)?;
    }
    memo.insert(leaves.clone(), total);
    Ok(total)
}

/// Recurses into one side of a bipartition: constraints fully inside pass
/// through; constraints whose root split is realized descend into the
/// child on this side; the rest (on the other side or vacuous) drop.
fn count_side(
    side: &BitSet,
    active: &[&RootedNode],
    memo: &mut HashMap<BitSet, u128>,
) -> Result<u128, SuperbError> {
    let mut passed: Vec<&RootedNode> = Vec::new();
    for c in active {
        if c.leaves.is_subset(side) {
            passed.push(c);
            continue;
        }
        for child in &c.children {
            if child.leaves.is_subset(side) {
                passed.push(child);
            }
            // Block validity guarantees the remaining case is full
            // disjointness — nothing to do.
        }
    }
    count_rec(side, &passed, memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::root_at;
    use phylo::newick::parse_forest;

    #[test]
    fn rooted_topology_counts() {
        assert_eq!(num_rooted_topologies(1).unwrap(), 1);
        assert_eq!(num_rooted_topologies(2).unwrap(), 1);
        assert_eq!(num_rooted_topologies(3).unwrap(), 3);
        assert_eq!(num_rooted_topologies(4).unwrap(), 15);
        assert_eq!(num_rooted_topologies(5).unwrap(), 105);
    }

    #[test]
    fn unconstrained_count_is_double_factorial() {
        let leaves = BitSet::from_iter(8, 0..5);
        assert_eq!(count_rooted(&leaves, &[]).unwrap(), 105);
    }

    #[test]
    fn single_full_constraint_counts_one() {
        let (taxa, trees) = parse_forest(["((R,A),((B,C),D));"]).unwrap();
        let rooted = root_at(&trees[0], taxa.get("R").unwrap()).unwrap();
        let c = count_rooted(&rooted.leaves, &[&rooted]).unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn conflicting_constraints_count_zero() {
        // (A,(B,C)) vs (B,(A,C)) rooted — incompatible root structures.
        let (taxa, trees) = parse_forest(["(R,(A,(B,C)));", "(R,(B,(A,C)));"]).unwrap();
        let r = taxa.get("R").unwrap();
        let c1 = root_at(&trees[0], r).unwrap();
        let c2 = root_at(&trees[1], r).unwrap();
        let leaves = c1.leaves.clone();
        assert_eq!(count_rooted(&leaves, &[&c1, &c2]).unwrap(), 0);
    }

    #[test]
    fn partial_constraint_leaves_freedom() {
        // Constraint pins (A,B) vs (C); taxa D free → count by hand:
        // rooted trees on {A,B,C,D} displaying ((A,B),C) rooted.
        let (taxa, trees) = parse_forest(["(R,((A,B),C));"]).unwrap();
        let rooted = root_at(&trees[0], taxa.get("R").unwrap()).unwrap();
        let mut leaves = rooted.leaves.clone();
        // Taxon universe is 4 (R,A,B,C) — extend universe by rebuilding:
        // simpler: new universe with D as id 4 is not available here, so
        // instead verify the 3-leaf constrained count directly.
        assert_eq!(count_rooted(&leaves, &[&rooted]).unwrap(), 1);
        leaves.remove(taxa.get("C").unwrap().index());
        assert_eq!(count_rooted(&leaves, &[&rooted]).unwrap(), 1); // vacuous
    }
}
