//! Rooted cluster trees: the constraint representation SUPERB works on.
//!
//! SUPERB operates on *rooted* trees. An unrooted constraint tree that
//! contains the comprehensive taxon `r` is rooted by deleting the `r` leaf
//! and taking its attachment vertex as the root (a degree-2 vertex, i.e. a
//! proper binary root). The resulting hierarchy is stored as nested
//! clusters (leaf bitsets), which is all the counting recursion needs.

use phylo::bitset::BitSet;
use phylo::taxa::TaxonId;
use phylo::tree::{NodeId, Tree};

/// A node of a rooted constraint tree: its leaf cluster and children.
/// Leaves have an empty `children` vector and a singleton cluster.
#[derive(Clone, Debug)]
pub struct RootedNode {
    /// All taxa below (and including) this node.
    pub leaves: BitSet,
    /// Child nodes (empty for leaves; exactly two for internal nodes of a
    /// binary constraint).
    pub children: Vec<RootedNode>,
}

impl RootedNode {
    /// Number of taxa below this node.
    pub fn size(&self) -> usize {
        self.leaves.count()
    }

    /// True if this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Depth-first count of all nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }
}

/// Roots the unrooted binary tree `tree` at taxon `root`: deletes the
/// `root` leaf and returns the hierarchy hanging below its attachment
/// vertex. Returns `None` if `root` is absent or the tree has fewer than
/// three leaves (nothing informative remains after deletion).
pub fn root_at(tree: &Tree, root: TaxonId) -> Option<RootedNode> {
    let leaf = tree.leaf(root)?;
    if tree.leaf_count() < 3 {
        return None;
    }
    let pendant = tree.adjacent_edges(leaf)[0];
    let top = tree.opposite(pendant, leaf);
    Some(build(tree, top, leaf))
}

fn build(tree: &Tree, v: NodeId, parent: NodeId) -> RootedNode {
    if let Some(t) = tree.taxon(v) {
        return RootedNode {
            leaves: BitSet::from_iter(tree.universe(), [t.index()]),
            children: Vec::new(),
        };
    }
    let mut children = Vec::new();
    let mut leaves = BitSet::new(tree.universe());
    for &e in tree.adjacent_edges(v) {
        let w = tree.opposite(e, v);
        if w == parent {
            continue;
        }
        let child = build(tree, w, v);
        leaves.union_with(&child.leaves);
        children.push(child);
    }
    RootedNode { leaves, children }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::newick::parse_forest;

    #[test]
    fn rooting_removes_the_root_taxon() {
        let (taxa, trees) = parse_forest(["((R,A),((B,C),D));"]).unwrap();
        let r = taxa.get("R").unwrap();
        let rooted = root_at(&trees[0], r).unwrap();
        assert!(!rooted.leaves.contains(r.index()));
        assert_eq!(rooted.size(), 4);
        // Root children: {A} and {B,C,D}.
        assert_eq!(rooted.children.len(), 2);
        let mut sizes: Vec<usize> = rooted.children.iter().map(|c| c.size()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn hierarchy_is_binary() {
        let (taxa, trees) = parse_forest(["((R,(A,B)),((C,D),(E,F)));"]).unwrap();
        let rooted = root_at(&trees[0], taxa.get("R").unwrap()).unwrap();
        fn check(n: &RootedNode) {
            if !n.is_leaf() {
                assert_eq!(n.children.len(), 2);
                let sum: usize = n.children.iter().map(|c| c.size()).sum();
                assert_eq!(sum, n.size());
                for c in &n.children {
                    assert!(c.leaves.is_subset(&n.leaves));
                    check(c);
                }
            } else {
                assert_eq!(n.size(), 1);
            }
        }
        check(&rooted);
        assert_eq!(rooted.node_count(), 2 * 6 - 1);
    }

    #[test]
    fn missing_or_tiny_inputs() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "(R,(A,B));"]).unwrap();
        assert!(root_at(&trees[0], taxa.get("R").unwrap()).is_none());
        let rooted = root_at(&trees[1], taxa.get("R").unwrap()).unwrap();
        assert_eq!(rooted.size(), 2);
    }
}
