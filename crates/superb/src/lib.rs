//! # gentrius-superb — the SUPERB baseline
//!
//! The prior art the paper positions Gentrius against (§I): terrace
//! counting via the SUPERB algorithm (Constantinescu & Sankoff 1995), as
//! implemented by `terraphy` and the two C++ libraries of Biczok et al.
//! SUPERB works on **rooted** trees, so these tools require the input to
//! contain at least one *comprehensive taxon* — a taxon with data in every
//! locus — to root consistently. Gentrius's contribution is removing that
//! requirement; this crate exists to (a) reproduce the baseline's
//! capability boundary and (b) cross-validate Gentrius stand *sizes*
//! against an algorithmically independent counter.
//!
//! ```
//! use gentrius_core::StandProblem;
//! use gentrius_superb::superb_count;
//! use phylo::newick::parse_forest;
//!
//! // Taxon R is comprehensive (in both loci).
//! let (_, trees) = parse_forest(["((R,A),(B,C));", "((R,B),(C,D));"]).unwrap();
//! let problem = StandProblem::from_constraints(trees).unwrap();
//! let n = superb_count(&problem).unwrap();
//! assert!(n >= 1);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod count;
pub mod enumerate;

pub use cluster::{root_at, RootedNode};
pub use count::{count_rooted, num_rooted_topologies, SuperbError};
pub use enumerate::{cluster_set_to_unrooted, enumerate_rooted, ClusterSet};

use gentrius_core::StandProblem;
use phylo::bitset::BitSet;
use phylo::taxa::TaxonId;

/// Errors of the top-level SUPERB entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuperbInputError {
    /// No taxon appears in every constraint tree — the SUPERB/terraphy
    /// requirement the paper's §I describes; Gentrius does not need it.
    NoComprehensiveTaxon,
    /// Counting failed (overflow or block explosion).
    Count(SuperbError),
}

impl std::fmt::Display for SuperbInputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuperbInputError::NoComprehensiveTaxon => {
                write!(f, "no comprehensive taxon: SUPERB cannot root the input")
            }
            SuperbInputError::Count(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SuperbInputError {}

/// A taxon present in every constraint tree, if any (smallest id wins).
pub fn comprehensive_taxon(problem: &StandProblem) -> Option<TaxonId> {
    let mut common = problem.constraints()[0].taxa().clone();
    for c in &problem.constraints()[1..] {
        common.intersect_with(c.taxa());
    }
    common.min_member().map(|t| TaxonId(t as u32))
}

/// Counts the stand with the SUPERB baseline.
///
/// Requires a comprehensive taxon `r`; the unrooted stand on `X` is in
/// bijection with the rooted terrace on `X \ {r}` (re-attaching `r` at the
/// root is the inverse), so the returned count equals the Gentrius stand
/// size — which is exactly what the cross-validation tests assert.
pub fn superb_count(problem: &StandProblem) -> Result<u128, SuperbInputError> {
    let r = comprehensive_taxon(problem).ok_or(SuperbInputError::NoComprehensiveTaxon)?;
    let rooted: Vec<RootedNode> = problem
        .constraints()
        .iter()
        .filter_map(|t| root_at(t, r))
        .collect();
    let mut leaves: BitSet = problem.all_taxa().clone();
    leaves.remove(r.index());
    let refs: Vec<&RootedNode> = rooted.iter().collect();
    count_rooted(&leaves, &refs).map_err(SuperbInputError::Count)
}

/// Enumerates the stand with the SUPERB baseline, returning unrooted
/// trees on the problem's full taxon set (at most `cap`; exceeding the cap
/// is an error). Requires a comprehensive taxon, like [`superb_count`].
pub fn superb_enumerate(
    problem: &StandProblem,
    cap: usize,
) -> Result<Vec<phylo::Tree>, SuperbInputError> {
    let r = comprehensive_taxon(problem).ok_or(SuperbInputError::NoComprehensiveTaxon)?;
    let rooted: Vec<RootedNode> = problem
        .constraints()
        .iter()
        .filter_map(|t| root_at(t, r))
        .collect();
    let mut leaves: BitSet = problem.all_taxa().clone();
    leaves.remove(r.index());
    let refs: Vec<&RootedNode> = rooted.iter().collect();
    let sets = enumerate_rooted(&leaves, &refs, cap).map_err(SuperbInputError::Count)?;
    Ok(sets
        .iter()
        .map(|cs| cluster_set_to_unrooted(problem, cs))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gentrius_core::{CountOnly, GentriusConfig};
    use phylo::newick::parse_forest;

    fn problem(newicks: &[&str]) -> StandProblem {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    #[test]
    fn comprehensive_taxon_detection() {
        let p = problem(&["((R,A),(B,C));", "((R,B),(C,D));"]);
        assert_eq!(comprehensive_taxon(&p), Some(TaxonId(0))); // R
        let q = problem(&["((A,B),(C,D));", "((E,F),(G,H));"]);
        assert_eq!(comprehensive_taxon(&q), None);
        assert_eq!(
            superb_count(&q).unwrap_err(),
            SuperbInputError::NoComprehensiveTaxon
        );
    }

    #[test]
    fn matches_gentrius_on_small_instances() {
        for newicks in [
            vec!["((R,A),(B,C));", "((R,B),(C,D));"],
            vec!["((R,A),(B,C));", "((R,D),(E,A));"],
            vec!["((R,A),(B,C));", "((R,B),(C,D));", "((R,C),(D,E));"],
        ] {
            let p = problem(&newicks);
            let superb = superb_count(&p).unwrap();
            let gentrius =
                gentrius_core::run_serial(&p, &GentriusConfig::exhaustive(), &mut CountOnly)
                    .unwrap();
            assert!(gentrius.complete());
            assert_eq!(
                superb, gentrius.stats.stand_trees as u128,
                "mismatch on {newicks:?}"
            );
        }
    }

    #[test]
    fn matches_brute_force_oracle() {
        let p = problem(&["((R,A),(B,C));", "((R,B),(C,D));"]);
        let brute = gentrius_core::oracle::brute_force_count(&p);
        assert_eq!(superb_count(&p).unwrap(), brute as u128);
    }

    #[test]
    fn enumerate_matches_gentrius_stand_set() {
        use gentrius_core::CollectNewick;
        let (taxa, trees) =
            parse_forest(["((R,A),(B,C));", "((R,B),(C,D));", "((R,C),(D,E));"]).unwrap();
        let p = StandProblem::from_constraints(trees).unwrap();
        let mut sink = CollectNewick::with_cap(&taxa, 1_000_000);
        let r = gentrius_core::run_serial(&p, &GentriusConfig::exhaustive(), &mut sink).unwrap();
        assert!(r.complete());
        let mut gentrius_set = sink.out;
        gentrius_set.sort();
        let mut superb_set: Vec<String> = superb_enumerate(&p, 1_000_000)
            .unwrap()
            .iter()
            .map(|t| phylo::newick::to_newick(t, &taxa))
            .collect();
        superb_set.sort();
        assert_eq!(gentrius_set, superb_set);
    }

    #[test]
    fn incompatible_rooted_inputs_count_zero() {
        let p = problem(&["((R,A),(B,C));", "((R,B),(A,C));"]);
        assert_eq!(superb_count(&p).unwrap(), 0);
    }
}
