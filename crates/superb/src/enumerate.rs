//! SUPERB enumeration: generate the terrace trees, not just their count.
//!
//! The original SUPERB is an enumeration algorithm (its implementations
//! print the supertrees); counting is the degenerate mode. Enumeration
//! here returns each rooted tree as its *cluster set* — the canonical,
//! order-free encoding — which converts directly to an unrooted
//! [`phylo::Tree`] by re-attaching the comprehensive root taxon. The
//! cross-validation tests compare these trees one-to-one with the stand
//! Gentrius enumerates.

use crate::cluster::RootedNode;
use crate::count::{SuperbError, MAX_BLOCKS};
use gentrius_core::StandProblem;
use phylo::bitset::BitSet;
use phylo::consensus::tree_from_splits;
use phylo::split::Split;
use phylo::tree::Tree;

/// One enumerated rooted tree, as the set of its non-singleton proper
/// clusters (the full leaf set excluded).
pub type ClusterSet = Vec<BitSet>;

/// Enumerates every rooted binary tree on `leaves` displaying all
/// `constraints`, as cluster sets. `cap` bounds the number of trees
/// produced (the count can be astronomically large; exceeding the cap is
/// an error, not a truncation, so callers cannot mistake a partial result
/// for the stand).
pub fn enumerate_rooted(
    leaves: &BitSet,
    constraints: &[&RootedNode],
    cap: usize,
) -> Result<Vec<ClusterSet>, SuperbError> {
    let out = enum_rec(leaves, constraints, cap)?;
    Ok(out)
}

fn enum_rec(
    leaves: &BitSet,
    constraints: &[&RootedNode],
    cap: usize,
) -> Result<Vec<ClusterSet>, SuperbError> {
    let k = leaves.count();
    if k <= 2 {
        return Ok(vec![Vec::new()]);
    }
    let active: Vec<&RootedNode> = constraints
        .iter()
        .copied()
        .filter(|c| c.leaves.intersection_count(leaves) >= 3)
        .collect();

    // Blocks (same construction as the counter; kept simple here because
    // enumeration is only run on small instances anyway).
    let mut blocks: Vec<BitSet> = Vec::new();
    {
        use std::collections::HashMap;
        let mut parent: HashMap<usize, usize> = leaves.iter().map(|t| (t, t)).collect();
        fn find(parent: &mut HashMap<usize, usize>, x: usize) -> usize {
            let p = parent[&x];
            if p == x {
                return x;
            }
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
        for c in &active {
            for child in &c.children {
                let mut members = child.leaves.iter();
                if let Some(first) = members.next() {
                    let fr = find(&mut parent, first);
                    for m in members {
                        let mr = find(&mut parent, m);
                        parent.insert(mr, fr);
                    }
                }
            }
        }
        let mut block_of: HashMap<usize, usize> = HashMap::new();
        for t in leaves.iter() {
            let r = find(&mut parent, t);
            let idx = *block_of.entry(r).or_insert_with(|| {
                blocks.push(BitSet::new(leaves.universe()));
                blocks.len() - 1
            });
            blocks[idx].insert(t);
        }
    }
    let p = blocks.len();
    if p == 1 {
        return Ok(Vec::new());
    }
    if p > MAX_BLOCKS {
        return Err(SuperbError::TooManyBlocks(p));
    }

    let mut out: Vec<ClusterSet> = Vec::new();
    for mask in 0..(1u64 << (p - 1)) {
        let mut side_a = blocks[0].clone();
        let mut side_b = BitSet::new(leaves.universe());
        for (j, block) in blocks.iter().enumerate().skip(1) {
            if mask >> (j - 1) & 1 == 1 {
                side_a.union_with(block);
            } else {
                side_b.union_with(block);
            }
        }
        if side_b.is_empty() {
            continue;
        }
        let sub_a = enum_side(&side_a, &active, cap)?;
        if sub_a.is_empty() {
            continue;
        }
        let sub_b = enum_side(&side_b, &active, cap)?;
        for ca in &sub_a {
            for cb in &sub_b {
                let mut clusters = Vec::with_capacity(ca.len() + cb.len() + 2);
                if side_a.count() >= 2 {
                    clusters.push(side_a.clone());
                }
                if side_b.count() >= 2 {
                    clusters.push(side_b.clone());
                }
                clusters.extend(ca.iter().cloned());
                clusters.extend(cb.iter().cloned());
                out.push(clusters);
                if out.len() > cap {
                    return Err(SuperbError::Overflow);
                }
            }
        }
    }
    Ok(out)
}

fn enum_side(
    side: &BitSet,
    active: &[&RootedNode],
    cap: usize,
) -> Result<Vec<ClusterSet>, SuperbError> {
    let mut passed: Vec<&RootedNode> = Vec::new();
    for c in active {
        if c.leaves.is_subset(side) {
            passed.push(c);
            continue;
        }
        for child in &c.children {
            if child.leaves.is_subset(side) {
                passed.push(child);
            }
        }
    }
    enum_rec(side, &passed, cap)
}

/// Converts an enumerated rooted cluster set back to the unrooted stand
/// tree on the problem's full taxon set: each cluster `C` becomes the
/// split `C | (X \ C)` (the root taxon sits on the complement side), and
/// the pendant structure is rebuilt from the splits.
pub fn cluster_set_to_unrooted(problem: &StandProblem, clusters: &ClusterSet) -> Tree {
    let taxa = problem.all_taxa();
    let splits: Vec<Split> = clusters
        .iter()
        .filter(|c| c.count() >= 2 && c.count() + 2 <= taxa.count())
        .map(|c| Split::canonical(c.clone(), taxa))
        .collect();
    tree_from_splits(taxa, &splits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::root_at;
    use crate::comprehensive_taxon;
    use crate::count::count_rooted;
    use phylo::newick::parse_forest;

    fn setup(newicks: &[&str]) -> (StandProblem, Vec<RootedNode>, BitSet) {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        let p = StandProblem::from_constraints(trees).unwrap();
        let r = comprehensive_taxon(&p).unwrap();
        let rooted: Vec<RootedNode> = p
            .constraints()
            .iter()
            .filter_map(|t| root_at(t, r))
            .collect();
        let mut leaves = p.all_taxa().clone();
        leaves.remove(r.index());
        (p, rooted, leaves)
    }

    #[test]
    fn enumeration_count_matches_counter() {
        let (_, rooted, leaves) = setup(&["((R,A),(B,C));", "((R,B),(C,D));"]);
        let refs: Vec<&RootedNode> = rooted.iter().collect();
        let count = count_rooted(&leaves, &refs).unwrap();
        let all = enumerate_rooted(&leaves, &refs, 100_000).unwrap();
        assert_eq!(all.len() as u128, count);
        // Cluster sets are pairwise distinct.
        let mut keys: Vec<String> = all
            .iter()
            .map(|cs| {
                let mut v: Vec<String> = cs.iter().map(|c| format!("{c:?}")).collect();
                v.sort();
                v.join("/")
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), all.len());
    }

    #[test]
    fn unconstrained_enumeration_is_all_topologies() {
        let leaves = BitSet::from_iter(6, 0..4);
        let all = enumerate_rooted(&leaves, &[], 1000).unwrap();
        assert_eq!(all.len(), 15); // rooted trees on 4 leaves
    }

    #[test]
    fn converted_trees_display_all_constraints() {
        let (p, rooted, leaves) = setup(&["((R,A),(B,C));", "((R,B),(C,D));"]);
        let refs: Vec<&RootedNode> = rooted.iter().collect();
        let all = enumerate_rooted(&leaves, &refs, 100_000).unwrap();
        for cs in &all {
            let t = cluster_set_to_unrooted(&p, cs);
            t.validate().unwrap();
            assert_eq!(t.leaf_count(), p.num_taxa());
            for c in p.constraints() {
                assert!(phylo::ops::displays(&t, c));
            }
        }
    }

    #[test]
    fn cap_is_an_error_not_a_truncation() {
        let leaves = BitSet::from_iter(10, 0..8);
        assert!(matches!(
            enumerate_rooted(&leaves, &[], 10),
            Err(SuperbError::Overflow)
        ));
    }
}
