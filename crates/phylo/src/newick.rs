//! Newick parsing and writing for unrooted trees.
//!
//! Input trees are accepted in rooted Newick form (the universal interchange
//! format); degree-2 vertices introduced by the rooting are suppressed so
//! the in-memory representation is properly unrooted. Branch lengths and
//! internal-node labels are parsed and discarded — stands are a purely
//! topological notion.
//!
//! Because the taxon universe must be shared across all trees of a dataset,
//! the primary entry point is [`parse_forest`], which interns every label
//! first and then builds all trees over the common universe.

use crate::taxa::{TaxonId, TaxonSet};
use crate::tree::{NodeId, Tree};

/// Parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewickError {
    /// Byte position in the input string where the problem was detected.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for NewickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "newick error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for NewickError {}

/// Intermediate rooted parse tree.
struct Parsed {
    label: Option<String>,
    children: Vec<Parsed>,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, NewickError> {
        Err(NewickError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn subtree(&mut self) -> Result<Parsed, NewickError> {
        self.skip_ws();
        let mut node = if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut children = vec![self.subtree()?];
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        children.push(self.subtree()?);
                    }
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return self.err("expected ',' or ')'"),
                }
            }
            Parsed {
                label: None,
                children,
            }
        } else {
            Parsed {
                label: None,
                children: Vec::new(),
            }
        };
        // Optional label (required for leaves), optional :length. Labels
        // may be single-quoted per the Newick standard ('Homo sapiens',
        // with '' as the escaped quote).
        self.skip_ws();
        if self.peek() == Some(b'\'') {
            self.pos += 1;
            let start = self.pos;
            // Collect raw bytes and validate UTF-8 once at the end: pushing
            // bytes as chars would latin-1-mangle multi-byte labels.
            let mut label_bytes = Vec::new();
            loop {
                match self.peek() {
                    Some(b'\'') if self.bytes.get(self.pos + 1) == Some(&b'\'') => {
                        label_bytes.push(b'\'');
                        self.pos += 2;
                    }
                    Some(b'\'') => {
                        self.pos += 1;
                        break;
                    }
                    Some(c) => {
                        label_bytes.push(c);
                        self.pos += 1;
                    }
                    None => {
                        return Err(NewickError {
                            at: start,
                            msg: "unterminated quoted label".into(),
                        })
                    }
                }
            }
            let label = String::from_utf8(label_bytes).map_err(|_| NewickError {
                at: start,
                msg: "quoted label is not UTF-8".into(),
            })?;
            if label.is_empty() {
                return self.err("empty quoted label");
            }
            if node.children.is_empty() {
                node.label = Some(label);
            }
        } else {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if matches!(c, b'(' | b')' | b',' | b':' | b';') || c.is_ascii_whitespace() {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let label = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| NewickError {
                        at: start,
                        msg: "label is not UTF-8".into(),
                    })?
                    .to_string();
                if node.children.is_empty() {
                    node.label = Some(label);
                }
                // Internal labels (support values etc.) are discarded.
            } else if node.children.is_empty() {
                return self.err("expected a leaf label");
            }
        }
        self.skip_ws();
        if self.peek() == Some(b':') {
            self.pos += 1;
            let start = self.pos;
            while let Some(c) = self.peek() {
                if matches!(c, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return self.err("expected branch length after ':'");
            }
        }
        Ok(node)
    }

    fn tree(&mut self) -> Result<Parsed, NewickError> {
        self.skip_ws();
        // A bare ";" (or nothing at all) is the empty tree — the form the
        // writer emits for zero-leaf trees, so it must parse back.
        if matches!(self.peek(), None | Some(b';')) {
            if self.peek() == Some(b';') {
                self.pos += 1;
            }
            self.skip_ws();
            if self.pos != self.bytes.len() {
                return self.err("trailing characters after tree");
            }
            return Ok(Parsed {
                label: None,
                children: Vec::new(),
            });
        }
        let t = self.subtree()?;
        self.skip_ws();
        if self.peek() == Some(b';') {
            self.pos += 1;
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing characters after tree");
        }
        Ok(t)
    }
}

fn collect_labels(p: &Parsed, out: &mut Vec<String>) {
    if let Some(l) = &p.label {
        out.push(l.clone());
    }
    for c in &p.children {
        collect_labels(c, out);
    }
}

/// Builds the arena for `p`'s subtree; returns the attachment handle, or
/// `None` for label-less childless nodes (cannot happen on valid input).
fn build(p: &Parsed, taxa: &TaxonSet, tree: &mut Tree) -> Result<NodeId, NewickError> {
    if p.children.is_empty() {
        // The grammar only accepts labelled leaves, but surface a parse
        // error rather than trusting that invariant with a panic.
        let Some(label) = p.label.as_ref() else {
            return Err(NewickError {
                at: 0,
                msg: "unlabelled leaf node".to_string(),
            });
        };
        let id = taxa.get(label).ok_or_else(|| NewickError {
            at: 0,
            msg: format!("label '{label}' not in taxon set"),
        })?;
        if tree.leaf(id).is_some() {
            return Err(NewickError {
                at: 0,
                msg: format!("duplicate taxon '{label}'"),
            });
        }
        return Ok(tree.add_node(Some(id)));
    }
    let mut handles = Vec::with_capacity(p.children.len());
    for c in &p.children {
        handles.push(build(c, taxa, tree)?);
    }
    if let [h] = handles.as_slice() {
        // Degree-2 vertex from the rooting: suppress by passing through.
        return Ok(*h);
    }
    let hub = tree.add_node(None);
    for h in handles {
        tree.add_edge(hub, h);
    }
    Ok(hub)
}

fn build_tree(p: &Parsed, taxa: &TaxonSet) -> Result<Tree, NewickError> {
    let mut tree = Tree::new(taxa.len());
    if p.children.is_empty() {
        if p.label.is_none() {
            return Ok(tree); // the empty tree (bare ";")
        }
        build(p, taxa, &mut tree)?;
        return Ok(tree);
    }
    if p.children.len() == 2 {
        // Rooted-binary convention: splice out the artificial root.
        let a = build(&p.children[0], taxa, &mut tree)?;
        let b = build(&p.children[1], taxa, &mut tree)?;
        tree.add_edge(a, b);
        return Ok(tree);
    }
    // 1 child (odd but legal: "((A,B));") or a multifurcating root.
    if p.children.len() == 1 {
        build(&p.children[0], taxa, &mut tree)?;
        return Ok(tree);
    }
    build(p, taxa, &mut tree)?;
    Ok(tree)
}

/// Parses one Newick string against an existing taxon universe. Every label
/// must already be interned (use [`parse_forest`] to bootstrap a universe).
pub fn parse_newick(s: &str, taxa: &TaxonSet) -> Result<Tree, NewickError> {
    let parsed = Parser::new(s).tree()?;
    let tree = build_tree(&parsed, taxa)?;
    tree.validate().map_err(|e| NewickError {
        at: 0,
        msg: format!("parsed structure invalid: {e}"),
    })?;
    Ok(tree)
}

/// Parses a whole dataset: interns all labels across all inputs first so
/// every tree shares one taxon universe, then builds each tree.
pub fn parse_forest<'a, I>(inputs: I) -> Result<(TaxonSet, Vec<Tree>), NewickError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut parsed = Vec::new();
    for s in inputs {
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        parsed.push(Parser::new(s).tree()?);
    }
    let mut taxa = TaxonSet::new();
    let mut labels = Vec::new();
    for p in &parsed {
        labels.clear();
        collect_labels(p, &mut labels);
        for l in &labels {
            taxa.intern(l);
        }
    }
    let mut trees = Vec::with_capacity(parsed.len());
    for p in &parsed {
        let tree = build_tree(p, &taxa)?;
        tree.validate().map_err(|e| NewickError {
            at: 0,
            msg: format!("parsed structure invalid: {e}"),
        })?;
        trees.push(tree);
    }
    Ok((taxa, trees))
}

/// Quotes a label if it contains Newick metacharacters or whitespace
/// (single quotes are doubled, per the standard).
fn format_label(name: &str) -> String {
    let needs_quoting = name
        .chars()
        .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | ':' | ';' | '\'' | '[' | ']'));
    if needs_quoting {
        format!("'{}'", name.replace('\'', "''"))
    } else {
        name.to_string()
    }
}

/// Serializes `tree` in canonical Newick form: rooted at the neighbour of
/// the smallest-id leaf, with sibling subtrees ordered by their smallest
/// taxon id. Two binary trees produce the same string iff they are
/// topologically equal, so the output doubles as a topology key.
pub fn to_newick(tree: &Tree, taxa: &TaxonSet) -> String {
    let mut s = String::new();
    match tree.leaf_count() {
        0 => {
            s.push(';');
            return s;
        }
        1 => {
            // Defensive: fall through to ";" rather than panic if the
            // leaf count and the leaf iterator ever disagree.
            if let Some((_, t)) = tree.leaves().next() {
                s.push_str(&format_label(taxa.name(t)));
                s.push(';');
            } else {
                s.push(';');
            }
            return s;
        }
        2 => {
            let mut ts: Vec<TaxonId> = tree.leaves().map(|(_, t)| t).collect();
            ts.sort_by_key(|t| t.index());
            s.push_str(&format!(
                "({},{});",
                format_label(taxa.name(ts[0])),
                format_label(taxa.name(ts[1]))
            ));
            return s;
        }
        _ => {}
    }
    let Some(min_member) = tree.taxa().min_member() else {
        s.push(';'); // leaf_count >= 3 but no taxa: degenerate, not a panic
        return s;
    };
    let min_taxon = TaxonId(min_member as u32);
    // Defensive, like the degenerate cases above: a taxon set naming a
    // taxon with no leaf node, or a leaf with no incident edge, means the
    // tree is inconsistent — render the empty topology, don't panic.
    let Some(start_leaf) = tree.leaf(min_taxon) else {
        s.push(';');
        return s;
    };
    let Some(&first_edge) = tree.adjacent_edges(start_leaf).first() else {
        s.push(';');
        return s;
    };
    let hub = tree.opposite(first_edge, start_leaf);

    // Render the unrooted tree as (min_leaf, rest...) rooted at `hub`.
    let mut parts: Vec<(usize, String)> =
        vec![(min_taxon.index(), format_label(taxa.name(min_taxon)))];
    for &e in tree.adjacent_edges(hub) {
        if e == first_edge {
            continue;
        }
        parts.push(render(tree, taxa, tree.opposite(e, hub), hub));
    }
    parts[1..].sort();
    s.push('(');
    for (i, (_, p)) in parts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(p);
    }
    s.push_str(");");
    s
}

/// Renders the subtree hanging below `v` (coming from `parent`); returns
/// `(min taxon id in subtree, newick fragment)` for canonical ordering.
fn render(tree: &Tree, taxa: &TaxonSet, v: NodeId, parent: NodeId) -> (usize, String) {
    if let Some(t) = tree.taxon(v) {
        return (t.index(), format_label(taxa.name(t)));
    }
    let mut parts: Vec<(usize, String)> = Vec::new();
    for &e in tree.adjacent_edges(v) {
        let w = tree.opposite(e, v);
        if w == parent {
            continue;
        }
        parts.push(render(tree, taxa, w, v));
    }
    parts.sort();
    let min = parts.first().map(|p| p.0).unwrap_or(usize::MAX);
    let mut s = String::from("(");
    for (i, (_, p)) in parts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(p);
    }
    s.push(')');
    (min, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::displays;
    use crate::split::topo_eq;

    #[test]
    fn parse_simple_quartet() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));"]).unwrap();
        assert_eq!(taxa.len(), 4);
        let t = &trees[0];
        assert_eq!(t.leaf_count(), 4);
        assert!(t.is_binary_unrooted());
        t.validate().unwrap();
    }

    #[test]
    fn parse_with_branch_lengths_and_support() {
        let (_, trees) = parse_forest(["((A:0.1,B:0.2)95:0.01,(C:1e-3,D:2.5)0.99:0.3);"]).unwrap();
        assert_eq!(trees[0].leaf_count(), 4);
        assert!(trees[0].is_binary_unrooted());
    }

    #[test]
    fn rooted_degree2_is_suppressed() {
        // Rooted version of the same quartet must equal the unrooted parse.
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "(((A,B),C),D);"]).unwrap();
        assert_eq!(taxa.len(), 4);
        // Both are quartets on {A,B,C,D}; first groups AB|CD, second too.
        assert!(topo_eq(&trees[0], &trees[1]));
    }

    #[test]
    fn multifurcation_is_parsed() {
        let (_, trees) = parse_forest(["(A,B,C,D);"]).unwrap();
        let t = &trees[0];
        assert_eq!(t.leaf_count(), 4);
        assert!(!t.is_binary_unrooted()); // star tree, degree-4 hub
        t.validate().unwrap();
    }

    #[test]
    fn forest_shares_universe() {
        let (taxa, trees) = parse_forest(["(A,(B,C));", "(B,(C,D));"]).unwrap();
        assert_eq!(taxa.len(), 4);
        assert_eq!(trees[0].universe(), 4);
        assert_eq!(trees[1].universe(), 4);
        assert_eq!(trees[0].leaf_count(), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_forest(["((A,B),C"]).is_err()); // unclosed
        assert!(parse_forest(["(A,,B);"]).is_err()); // empty sibling
        assert!(parse_forest(["(A,A);"]).is_err()); // duplicate taxon
        assert!(parse_forest(["(A,B); junk"]).is_err()); // trailing garbage
    }

    #[test]
    fn roundtrip_canonical() {
        let inputs = ["((A,B),(C,D));", "(A,(B,(C,(D,E))));", "((A,E),((B,D),C));"];
        for s in inputs {
            let (taxa, trees) = parse_forest([s]).unwrap();
            let out = to_newick(&trees[0], &taxa);
            let re = parse_newick(&out, &taxa).unwrap();
            assert!(topo_eq(&trees[0], &re), "roundtrip failed for {s}: {out}");
        }
    }

    #[test]
    fn canonical_string_is_topology_key() {
        let (taxa, trees) = parse_forest(["((A,B),(C,D));", "((C,D),(B,A));"]).unwrap();
        assert_eq!(to_newick(&trees[0], &taxa), to_newick(&trees[1], &taxa));
        let (taxa2, trees2) = parse_forest(["((A,C),(B,D));", "((A,B),(C,D));"]).unwrap();
        assert_ne!(to_newick(&trees2[0], &taxa2), to_newick(&trees2[1], &taxa2));
    }

    #[test]
    fn single_and_two_leaf_output() {
        let (taxa, trees) = parse_forest(["(A,B);"]).unwrap();
        assert_eq!(to_newick(&trees[0], &taxa), "(A,B);");
    }

    #[test]
    fn empty_tree_roundtrips() {
        // Writer emits ";" for the zero-leaf tree; the parser must accept
        // it back (it used to reject with "expected a leaf label").
        let taxa = crate::taxa::TaxonSet::new();
        let empty = Tree::new(0);
        let s = to_newick(&empty, &taxa);
        assert_eq!(s, ";");
        let re = parse_newick(&s, &taxa).unwrap();
        assert_eq!(re.leaf_count(), 0);
        assert_eq!(re.node_count(), 0);
        // Bare and whitespace-padded forms too.
        assert_eq!(parse_newick("", &taxa).unwrap().leaf_count(), 0);
        assert_eq!(parse_newick("  ;  ", &taxa).unwrap().leaf_count(), 0);
    }

    #[test]
    fn single_leaf_roundtrips() {
        let (taxa, trees) = parse_forest(["A;"]).unwrap();
        assert_eq!(trees[0].leaf_count(), 1);
        let s = to_newick(&trees[0], &taxa);
        assert_eq!(s, "A;");
        let re = parse_newick(&s, &taxa).unwrap();
        assert_eq!(re.leaf_count(), 1);
        assert!(re.leaf(crate::taxa::TaxonId(0)).is_some());
    }

    #[test]
    fn two_leaf_roundtrips() {
        let (taxa, trees) = parse_forest(["(A,B);"]).unwrap();
        let s = to_newick(&trees[0], &taxa);
        let re = parse_newick(&s, &taxa).unwrap();
        assert_eq!(re.leaf_count(), 2);
        assert_eq!(to_newick(&re, &taxa), s);
    }

    #[test]
    fn display_relationship_survives_roundtrip() {
        let (taxa, trees) = parse_forest(["(((A,B),(C,D)),E);", "((A,B),C);"]).unwrap();
        assert!(displays(&trees[0], &trees[1]));
        let s = to_newick(&trees[0], &taxa);
        let re = parse_newick(&s, &taxa).unwrap();
        assert!(displays(&re, &trees[1]));
    }
}

#[cfg(test)]
mod quoted_tests {
    use super::*;

    #[test]
    fn quoted_labels_parse() {
        let (taxa, trees) =
            parse_forest(["(('Homo sapiens','Pan (bonobo)'),('O''Brien',D));"]).unwrap();
        assert_eq!(taxa.len(), 4);
        assert!(taxa.get("Homo sapiens").is_some());
        assert!(taxa.get("Pan (bonobo)").is_some());
        assert!(taxa.get("O'Brien").is_some());
        assert_eq!(trees[0].leaf_count(), 4);
        assert!(trees[0].is_binary_unrooted());
    }

    #[test]
    fn quoted_with_branch_lengths() {
        let (_, trees) = parse_forest(["(('A B':0.1,C:0.2),(D,E));"]).unwrap();
        assert_eq!(trees[0].leaf_count(), 4);
    }

    #[test]
    fn quoted_roundtrip() {
        let input = "(('Homo sapiens','O''Brien'),(C,'x:y'));";
        let (taxa, trees) = parse_forest([input]).unwrap();
        let out = to_newick(&trees[0], &taxa);
        assert!(out.contains("'Homo sapiens'"), "{out}");
        assert!(out.contains("'O''Brien'"), "{out}");
        let re = parse_newick(&out, &taxa).unwrap();
        assert!(crate::split::topo_eq(&trees[0], &re));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(parse_forest(["(('A B,C),(D,E));"]).is_err());
        assert!(parse_forest(["('',A,B);"]).is_err());
    }

    #[test]
    fn non_ascii_quoted_labels_are_not_mangled() {
        // Regression: the quoted-label loop used to push raw bytes as
        // chars, latin-1-mangling multi-byte UTF-8 ("sápiens" → "sÃ¡piens").
        let (taxa, trees) = parse_forest(["(('Homo sápiens','日本 ザル'),(C,D));"]).unwrap();
        assert!(taxa.get("Homo sápiens").is_some(), "label was mangled");
        assert!(taxa.get("日本 ザル").is_some(), "label was mangled");
        let out = to_newick(&trees[0], &taxa);
        let re = parse_newick(&out, &taxa).unwrap();
        assert!(crate::split::topo_eq(&trees[0], &re));
    }
}
