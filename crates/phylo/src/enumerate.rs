//! Exhaustive enumeration of unrooted binary topologies.
//!
//! There are `(2n-5)!!` unrooted binary trees on `n` labelled leaves. For
//! small `n` this is enumerable and serves as the ground-truth oracle for
//! the Gentrius stand enumeration: filter all topologies by "displays every
//! constraint tree" and compare with the algorithm's output.

use crate::taxa::TaxonId;
use crate::tree::{EdgeId, Tree};

/// `(2n-5)!! = 1, 1, 3, 15, 105, ...` — the number of unrooted binary
/// topologies on `n ≥ 2` labelled leaves. Panics on overflow.
pub fn num_unrooted_topologies(n: usize) -> u128 {
    assert!(n >= 2);
    let mut acc: u128 = 1;
    // Inserting the i-th taxon (i = 4..=n) offers 2i-5 edges.
    for i in 4..=n as u128 {
        acc = acc.checked_mul(2 * i - 5).expect("topology count overflow");
    }
    acc
}

/// Calls `visit` once for every unrooted binary topology on `ids`
/// (distinct taxa over a `universe`-sized id space), in a deterministic
/// order. The same [`Tree`] buffer is reused via insert/undo, so `visit`
/// must not hold on to it across calls — clone if needed.
///
/// Enumeration cost grows as `(2n-5)!!`; keep `ids.len()` small (≤ 9).
pub fn for_each_topology<F: FnMut(&Tree)>(universe: usize, ids: &[TaxonId], mut visit: F) {
    assert!(ids.len() >= 2, "need at least two taxa");
    if ids.len() == 2 {
        let t = Tree::two_leaf(universe, ids[0], ids[1]);
        visit(&t);
        return;
    }
    let mut tree = Tree::three_leaf(universe, ids[0], ids[1], ids[2]);
    recurse(&mut tree, ids, 3, &mut visit);
}

fn recurse<F: FnMut(&Tree)>(tree: &mut Tree, ids: &[TaxonId], next: usize, visit: &mut F) {
    if next == ids.len() {
        visit(tree);
        return;
    }
    let edges: Vec<EdgeId> = tree.edges().collect();
    for e in edges {
        let ins = tree.insert_leaf_on_edge(ids[next], e);
        recurse(tree, ids, next + 1, visit);
        tree.remove_insertion(&ins);
    }
}

/// Collects every topology on taxa `0..n` as owned trees. Convenience for
/// tests; memory grows as `(2n-5)!!` trees.
pub fn all_topologies_on_n(n: usize) -> Vec<Tree> {
    let ids: Vec<TaxonId> = (0..n as u32).map(TaxonId).collect();
    let mut out = Vec::new();
    for_each_topology(n, &ids, |t| out.push(t.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::to_newick;
    use crate::taxa::TaxonSet;
    use std::collections::HashSet;

    #[test]
    fn double_factorial_counts() {
        assert_eq!(num_unrooted_topologies(2), 1);
        assert_eq!(num_unrooted_topologies(3), 1);
        assert_eq!(num_unrooted_topologies(4), 3);
        assert_eq!(num_unrooted_topologies(5), 15);
        assert_eq!(num_unrooted_topologies(6), 105);
        assert_eq!(num_unrooted_topologies(7), 945);
        assert_eq!(num_unrooted_topologies(8), 10395);
    }

    #[test]
    fn enumeration_is_complete_and_duplicate_free() {
        for n in 4..=6 {
            let taxa = TaxonSet::with_synthetic(n);
            let mut seen = HashSet::new();
            let ids: Vec<TaxonId> = (0..n as u32).map(TaxonId).collect();
            for_each_topology(n, &ids, |t| {
                assert!(t.is_binary_unrooted());
                assert!(seen.insert(to_newick(t, &taxa)), "duplicate topology");
            });
            assert_eq!(seen.len() as u128, num_unrooted_topologies(n));
        }
    }

    #[test]
    fn buffer_reuse_leaves_tree_intact() {
        let ids: Vec<TaxonId> = (0..5).map(TaxonId).collect();
        let mut count = 0usize;
        for_each_topology(5, &ids, |t| {
            t.validate().unwrap();
            count += 1;
        });
        assert_eq!(count, 15);
    }

    #[test]
    fn collect_owned() {
        let all = all_topologies_on_n(5);
        assert_eq!(all.len(), 15);
        // Owned clones must be independent valid trees.
        for t in &all {
            t.validate().unwrap();
            assert_eq!(t.leaf_count(), 5);
        }
    }
}
