//! Unrooted phylogenetic trees backed by an arena with undo-safe edits.
//!
//! The Gentrius search inserts and removes taxa millions of times and — in
//! the parallel version — ships *paths* (sequences of `(taxon, edge)`
//! insertions) between threads that each own a private copy of the tree.
//! For a path recorded by one thread to be replayable on another thread's
//! copy, node and edge identifiers must be a deterministic function of the
//! edit history. This arena guarantees that by:
//!
//! * allocating ids monotonically and recycling freed ids **LIFO**, and
//! * making [`Tree::remove_insertion`] the *exact* inverse of
//!   [`Tree::insert_leaf_on_edge`] — including adjacency-list order and the
//!   free lists — so that backtracking restores the arena bit-for-bit.
//!
//! Trees are unrooted; edges are undirected pairs of nodes. Leaves carry a
//! [`TaxonId`] from a fixed universe shared by all trees of an analysis.

use crate::bitset::BitSet;
use crate::taxa::TaxonId;
use std::fmt;

/// Identifier of a node within one [`Tree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an edge (branch) within one [`Tree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Node {
    alive: bool,
    taxon: Option<TaxonId>,
    /// Incident edges. Order is part of the deterministic state.
    adj: Vec<EdgeId>,
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    alive: bool,
    a: NodeId,
    b: NodeId,
}

/// Record returned by [`Tree::insert_leaf_on_edge`]; feeding it back to
/// [`Tree::remove_insertion`] undoes the insertion exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insertion {
    /// The inserted taxon.
    pub taxon: TaxonId,
    /// The new leaf node carrying `taxon`.
    pub leaf: NodeId,
    /// The new internal node subdividing the target edge.
    pub mid: NodeId,
    /// The edge that was subdivided (keeps its id, now ends at `mid`).
    pub edge: EdgeId,
    /// New edge `mid – detached` (the far half of the subdivided edge).
    pub far_half: EdgeId,
    /// New pendant edge `mid – leaf`.
    pub pendant: EdgeId,
    /// The endpoint of `edge` that was detached onto `far_half`.
    pub detached: NodeId,
}

/// Errors reported by [`Tree::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// An edge refers to a dead node, or adjacency lists are inconsistent.
    Inconsistent(String),
    /// The tree is not connected or contains a cycle.
    NotATree(String),
    /// A taxon labels more than one leaf, or an internal node carries a taxon.
    BadLabels(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Inconsistent(m) => write!(f, "inconsistent arena: {m}"),
            TreeError::NotATree(m) => write!(f, "not a tree: {m}"),
            TreeError::BadLabels(m) => write!(f, "bad labels: {m}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// One node slot of an [`ArenaDump`] (dead slots have empty adjacency and
/// no taxon).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DumpNode {
    /// Whether the slot holds a live node.
    pub alive: bool,
    /// The labelling taxon id, for live leaves.
    pub taxon: Option<u32>,
    /// Incident edge ids in adjacency order.
    pub adj: Vec<u32>,
}

/// One edge slot of an [`ArenaDump`] (dead slots keep their stale
/// endpoints; `alloc_edge` overwrites the whole slot on reuse, so
/// they are never read).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DumpEdge {
    /// Whether the slot holds a live edge.
    pub alive: bool,
    /// First endpoint node id.
    pub a: u32,
    /// Second endpoint node id.
    pub b: u32,
}

/// A plain-data image of a [`Tree`] arena — every slot plus the free lists
/// — produced by [`Tree::dump_arena`] and restored (with validation) by
/// [`Tree::from_arena_dump`]. The image preserves node/edge *ids* and the
/// future allocation order, so a restored tree is behaviourally identical
/// to the original ([`Tree::arena_fingerprint`] matches).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaDump {
    /// The taxon universe size.
    pub universe: usize,
    /// Node slots, dense by id.
    pub nodes: Vec<DumpNode>,
    /// Edge slots, dense by id.
    pub edges: Vec<DumpEdge>,
    /// Dead node ids in LIFO pop order (last pushed first).
    pub free_nodes: Vec<u32>,
    /// Dead edge ids in LIFO pop order (last pushed first).
    pub free_edges: Vec<u32>,
}

/// Checks that `free` enumerates exactly the dead slots of an arena of
/// `len` slots, each once (`live(i)` reports slot liveness).
fn check_free_list(
    kind: &str,
    free: &[u32],
    len: usize,
    live: impl Fn(usize) -> bool,
) -> Result<(), TreeError> {
    let mut seen = vec![false; len];
    for &id in free {
        let i = id as usize;
        if i >= len {
            return Err(TreeError::Inconsistent(format!(
                "free {kind} id {id} out of range"
            )));
        }
        if live(i) {
            return Err(TreeError::Inconsistent(format!(
                "free {kind} list contains live slot {id}"
            )));
        }
        if seen[i] {
            return Err(TreeError::Inconsistent(format!(
                "free {kind} list repeats slot {id}"
            )));
        }
        seen[i] = true;
    }
    for (i, &s) in seen.iter().enumerate() {
        if !s && !live(i) {
            return Err(TreeError::Inconsistent(format!(
                "dead {kind} slot {i} missing from the free list"
            )));
        }
    }
    Ok(())
}

/// An unrooted tree over a fixed taxon universe.
#[derive(Clone, Debug)]
pub struct Tree {
    universe: usize,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    free_nodes: Vec<NodeId>,
    free_edges: Vec<EdgeId>,
    /// `leaf_of[t]` is the leaf node labelled with taxon `t`, if present.
    leaf_of: Vec<Option<NodeId>>,
    /// The set of taxa currently present as leaves.
    taxa: BitSet,
    n_nodes: usize,
    n_edges: usize,
}

impl Tree {
    /// Creates an empty tree over a universe of `universe` taxa.
    pub fn new(universe: usize) -> Self {
        Tree {
            universe,
            nodes: Vec::new(),
            edges: Vec::new(),
            free_nodes: Vec::new(),
            free_edges: Vec::new(),
            leaf_of: vec![None; universe],
            taxa: BitSet::new(universe),
            n_nodes: 0,
            n_edges: 0,
        }
    }

    /// The taxon universe size this tree addresses.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of live nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Number of leaves (taxa present).
    #[inline]
    pub fn leaf_count(&self) -> usize {
        self.taxa.count()
    }

    /// Upper bound (exclusive) on edge ids ever allocated; dead ids below
    /// this bound are skipped by [`Tree::edges`].
    #[inline]
    pub fn edge_id_bound(&self) -> usize {
        self.edges.len()
    }

    /// Upper bound (exclusive) on node ids ever allocated.
    #[inline]
    pub fn node_id_bound(&self) -> usize {
        self.nodes.len()
    }

    /// The set of taxa present as leaves.
    #[inline]
    pub fn taxa(&self) -> &BitSet {
        &self.taxa
    }

    /// The leaf node labelled with `t`, if present.
    #[inline]
    pub fn leaf(&self, t: TaxonId) -> Option<NodeId> {
        self.leaf_of[t.index()]
    }

    /// The taxon labelling node `n` (leaves only).
    #[inline]
    pub fn taxon(&self, n: NodeId) -> Option<TaxonId> {
        self.nodes[n.index()].taxon
    }

    /// True if `n` refers to a live node.
    #[inline]
    pub fn node_alive(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|x| x.alive)
    }

    /// True if `e` refers to a live edge.
    #[inline]
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|x| x.alive)
    }

    /// Degree of node `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.nodes[n.index()].adj.len()
    }

    /// Incident edges of `n` in deterministic adjacency order.
    #[inline]
    pub fn adjacent_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.nodes[n.index()].adj
    }

    /// Both endpoints of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.index()];
        (edge.a, edge.b)
    }

    /// The endpoint of `e` that is not `n`. Panics if `n` is not incident.
    #[inline]
    pub fn opposite(&self, e: EdgeId, n: NodeId) -> NodeId {
        let edge = &self.edges[e.index()];
        if edge.a == n {
            edge.b
        } else {
            debug_assert_eq!(edge.b, n, "{n:?} not incident to {e:?}");
            edge.a
        }
    }

    /// Iterates live node ids in increasing id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterates live edge ids in increasing id order (the canonical branch
    /// enumeration order used by the search).
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Iterates `(leaf node, taxon)` pairs in increasing node-id order.
    pub fn leaves(&self) -> impl Iterator<Item = (NodeId, TaxonId)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .filter_map(|(i, n)| n.taxon.map(|t| (NodeId(i as u32), t)))
    }

    // ------------------------------------------------------------------
    // Construction primitives (used by builders / parsers)
    // ------------------------------------------------------------------

    fn alloc_node(&mut self, taxon: Option<TaxonId>) -> NodeId {
        let id = match self.free_nodes.pop() {
            Some(id) => {
                let n = &mut self.nodes[id.index()];
                debug_assert!(!n.alive);
                n.alive = true;
                n.taxon = taxon;
                debug_assert!(n.adj.is_empty());
                id
            }
            None => {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(Node {
                    alive: true,
                    taxon,
                    adj: Vec::with_capacity(3),
                });
                id
            }
        };
        if let Some(t) = taxon {
            debug_assert!(self.leaf_of[t.index()].is_none(), "duplicate taxon");
            self.leaf_of[t.index()] = Some(id);
            self.taxa.insert(t.index());
        }
        self.n_nodes += 1;
        id
    }

    fn free_node(&mut self, id: NodeId) {
        let n = &mut self.nodes[id.index()];
        debug_assert!(n.alive);
        debug_assert!(n.adj.is_empty(), "freeing node with incident edges");
        n.alive = false;
        if let Some(t) = n.taxon.take() {
            self.leaf_of[t.index()] = None;
            self.taxa.remove(t.index());
        }
        self.free_nodes.push(id);
        self.n_nodes -= 1;
    }

    fn alloc_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        let id = match self.free_edges.pop() {
            Some(id) => {
                let e = &mut self.edges[id.index()];
                debug_assert!(!e.alive);
                *e = Edge { alive: true, a, b };
                id
            }
            None => {
                let id = EdgeId(self.edges.len() as u32);
                self.edges.push(Edge { alive: true, a, b });
                id
            }
        };
        self.n_edges += 1;
        id
    }

    fn free_edge(&mut self, id: EdgeId) {
        let e = &mut self.edges[id.index()];
        debug_assert!(e.alive);
        e.alive = false;
        self.free_edges.push(id);
        self.n_edges -= 1;
    }

    /// Adds an isolated node (builder use). Leaves must have unique taxa.
    pub fn add_node(&mut self, taxon: Option<TaxonId>) -> NodeId {
        self.alloc_node(taxon)
    }

    /// Connects two existing nodes with a new edge (builder use).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        debug_assert!(self.node_alive(a) && self.node_alive(b));
        let e = self.alloc_edge(a, b);
        self.nodes[a.index()].adj.push(e);
        self.nodes[b.index()].adj.push(e);
        e
    }

    /// Builds the unique tree on two taxa.
    pub fn two_leaf(universe: usize, a: TaxonId, b: TaxonId) -> Self {
        let mut t = Tree::new(universe);
        let na = t.add_node(Some(a));
        let nb = t.add_node(Some(b));
        t.add_edge(na, nb);
        t
    }

    /// Builds the unique (star) tree on three taxa.
    pub fn three_leaf(universe: usize, a: TaxonId, b: TaxonId, c: TaxonId) -> Self {
        let mut t = Tree::new(universe);
        let center = t.add_node(None);
        for tx in [a, b, c] {
            let leaf = t.add_node(Some(tx));
            t.add_edge(center, leaf);
        }
        t
    }

    // ------------------------------------------------------------------
    // The two search-critical edits
    // ------------------------------------------------------------------

    /// Inserts leaf `taxon` by subdividing `edge`.
    ///
    /// `edge`'s id survives the subdivision (it keeps its `a` endpoint and
    /// is re-pointed at the new midpoint); the far half and the pendant get
    /// fresh ids, deterministically. Returns the undo record.
    pub fn insert_leaf_on_edge(&mut self, taxon: TaxonId, edge: EdgeId) -> Insertion {
        debug_assert!(self.edge_alive(edge), "insert on dead edge {edge:?}");
        debug_assert!(
            self.leaf_of[taxon.index()].is_none(),
            "taxon already present"
        );
        let detached = self.edges[edge.index()].b;

        // Allocation order is part of the deterministic contract:
        // mid, leaf, far_half, pendant.
        let mid = self.alloc_node(None);
        let leaf = self.alloc_node(Some(taxon));

        // Re-point `edge`'s b endpoint at the midpoint, preserving the
        // position of `edge` in the detached node's adjacency list for the
        // replacement `far_half` edge.
        self.edges[edge.index()].b = mid;
        self.nodes[mid.index()].adj.push(edge);

        let far_half = self.alloc_edge(mid, detached);
        let pos = self.nodes[detached.index()]
            .adj
            .iter()
            .position(|&e| e == edge)
            .expect("edge missing from endpoint adjacency");
        self.nodes[detached.index()].adj[pos] = far_half;
        self.nodes[mid.index()].adj.push(far_half);

        let pendant = self.alloc_edge(mid, leaf);
        self.nodes[mid.index()].adj.push(pendant);
        self.nodes[leaf.index()].adj.push(pendant);

        Insertion {
            taxon,
            leaf,
            mid,
            edge,
            far_half,
            pendant,
            detached,
        }
    }

    /// Exactly undoes an insertion made by [`Tree::insert_leaf_on_edge`].
    ///
    /// Must be called in LIFO order with respect to other edits (the search
    /// backtracks strictly), otherwise the arena would not be restorable.
    pub fn remove_insertion(&mut self, ins: &Insertion) {
        // Free in reverse allocation order so the LIFO free lists return to
        // their pre-insertion state: pendant, far_half, leaf, mid.
        let mid = ins.mid;
        debug_assert_eq!(self.nodes[mid.index()].adj.len(), 3);

        // Detach pendant.
        self.nodes[ins.leaf.index()].adj.clear();
        self.nodes[mid.index()].adj.retain(|&e| e != ins.pendant);
        self.free_edge(ins.pendant);

        // Re-point `edge` back at the detached endpoint, restoring its
        // position in the adjacency list (it sits where far_half is now).
        let pos = self.nodes[ins.detached.index()]
            .adj
            .iter()
            .position(|&e| e == ins.far_half)
            .expect("far_half missing from detached adjacency");
        self.nodes[ins.detached.index()].adj[pos] = ins.edge;
        self.nodes[mid.index()].adj.retain(|&e| e != ins.far_half);
        self.free_edge(ins.far_half);

        self.edges[ins.edge.index()].b = ins.detached;
        self.nodes[mid.index()].adj.retain(|&e| e != ins.edge);

        self.free_node(ins.leaf);
        self.free_node(mid);
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Returns the nodes reachable from `root` in DFS preorder together with
    /// the edge leading to each (None for the root). Iterative, so deep
    /// caterpillar trees cannot overflow the stack.
    pub fn preorder(&self, root: NodeId) -> Vec<(NodeId, Option<EdgeId>)> {
        let mut order = Vec::with_capacity(self.n_nodes);
        let mut stack = Vec::new();
        self.preorder_into(root, &mut stack, &mut order);
        order
    }

    /// [`Tree::preorder`] into caller-owned buffers (`stack` is DFS
    /// scratch, `order` receives the result); both are cleared first. Lets
    /// the projection kernels traverse without allocating per rebuild.
    pub fn preorder_into(
        &self,
        root: NodeId,
        stack: &mut Vec<(NodeId, Option<EdgeId>)>,
        order: &mut Vec<(NodeId, Option<EdgeId>)>,
    ) {
        order.clear();
        stack.clear();
        stack.push((root, None));
        while let Some((v, pe)) = stack.pop() {
            order.push((v, pe));
            // Reverse so the first adjacency is processed first: makes the
            // preorder deterministic and adjacency-order-respecting.
            for &e in self.nodes[v.index()].adj.iter().rev() {
                if Some(e) != pe {
                    stack.push((self.opposite(e, v), Some(e)));
                }
            }
        }
    }

    /// Any live node, preferring a leaf (useful as a traversal root).
    pub fn any_leaf(&self) -> Option<NodeId> {
        self.taxa
            .min_member()
            .map(|t| self.leaf_of[t].expect("taxa bitset and leaf_of out of sync"))
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Structural sanity check: adjacency symmetry, connectivity,
    /// acyclicity, unique leaf labels, internal nodes unlabelled.
    pub fn validate(&self) -> Result<(), TreeError> {
        // Adjacency consistency.
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            let id = EdgeId(i as u32);
            for n in [e.a, e.b] {
                if !self.node_alive(n) {
                    return Err(TreeError::Inconsistent(format!(
                        "{id:?} touches dead node {n:?}"
                    )));
                }
                if !self.nodes[n.index()].adj.contains(&id) {
                    return Err(TreeError::Inconsistent(format!(
                        "{id:?} missing from adjacency of {n:?}"
                    )));
                }
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            let id = NodeId(i as u32);
            for &e in &n.adj {
                if !self.edge_alive(e) {
                    return Err(TreeError::Inconsistent(format!(
                        "{id:?} adjacent to dead edge {e:?}"
                    )));
                }
                let (a, b) = self.endpoints(e);
                if a != id && b != id {
                    return Err(TreeError::Inconsistent(format!(
                        "{id:?} lists non-incident edge {e:?}"
                    )));
                }
            }
            if n.taxon.is_some() && n.adj.len() > 1 {
                return Err(TreeError::BadLabels(format!(
                    "labelled node {id:?} has degree {}",
                    n.adj.len()
                )));
            }
        }
        // Tree shape: connected and |E| = |V| - 1.
        if self.n_nodes > 0 {
            if self.n_edges + 1 != self.n_nodes {
                return Err(TreeError::NotATree(format!(
                    "{} nodes but {} edges",
                    self.n_nodes, self.n_edges
                )));
            }
            let root = self
                .node_ids()
                .next()
                .expect("n_nodes > 0 but no live node");
            let reached = self.preorder(root).len();
            if reached != self.n_nodes {
                return Err(TreeError::NotATree(format!(
                    "reached {reached} of {} nodes",
                    self.n_nodes
                )));
            }
        }
        // Label uniqueness is enforced by alloc_node; cross-check leaf_of.
        for t in self.taxa.iter() {
            match self.leaf_of[t] {
                Some(n)
                    if self.node_alive(n)
                        && self.nodes[n.index()].taxon == Some(TaxonId(t as u32)) => {}
                _ => {
                    return Err(TreeError::BadLabels(format!(
                        "taxon {t} not backed by a live labelled leaf"
                    )))
                }
            }
        }
        Ok(())
    }

    /// True if every leaf has degree 1, every internal node degree 3, and
    /// there are at least two nodes (the shape Gentrius operates on; the
    /// 2-leaf tree counts as binary).
    pub fn is_binary_unrooted(&self) -> bool {
        if self.n_nodes < 2 {
            return false;
        }
        self.node_ids().all(|n| {
            let node = &self.nodes[n.index()];
            if node.taxon.is_some() {
                node.adj.len() == 1
            } else {
                node.adj.len() == 3
            }
        })
    }

    // ------------------------------------------------------------------
    // Arena serialization (checkpoint support)
    // ------------------------------------------------------------------

    /// Captures the full arena as plain data: every slot (live *and* dead)
    /// plus both free lists in pop order. Unlike a Newick round-trip, which
    /// renumbers nodes and edges, restoring a dump with
    /// [`Tree::from_arena_dump`] reproduces the arena id-for-id — the
    /// property checkpointed search tasks rely on, since their recorded
    /// branch [`EdgeId`]s are arena indices.
    pub fn dump_arena(&self) -> ArenaDump {
        ArenaDump {
            universe: self.universe,
            nodes: self
                .nodes
                .iter()
                .map(|n| DumpNode {
                    alive: n.alive,
                    taxon: n.taxon.map(|t| t.0),
                    adj: n.adj.iter().map(|e| e.0).collect(),
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|e| DumpEdge {
                    alive: e.alive,
                    a: e.a.0,
                    b: e.b.0,
                })
                .collect(),
            free_nodes: self.free_nodes.iter().map(|n| n.0).collect(),
            free_edges: self.free_edges.iter().map(|e| e.0).collect(),
        }
    }

    /// Rebuilds a tree from an [`ArenaDump`], verifying the dump is
    /// internally consistent before trusting it (dumps cross process
    /// boundaries through checkpoint files, so they are hostile input):
    /// free lists must enumerate exactly the dead slots, dead nodes must
    /// have empty adjacency (the reuse invariant `alloc_node`
    /// debug-asserts), taxa must be unique and within the universe, and the
    /// live structure must pass [`Tree::validate`].
    pub fn from_arena_dump(dump: &ArenaDump) -> Result<Tree, TreeError> {
        let bad = |msg: String| TreeError::Inconsistent(msg);
        if dump.nodes.len() > u32::MAX as usize || dump.edges.len() > u32::MAX as usize {
            return Err(bad("arena dump exceeds u32 id space".into()));
        }
        let mut leaf_of: Vec<Option<NodeId>> = vec![None; dump.universe];
        let mut taxa = BitSet::new(dump.universe);
        let mut nodes = Vec::with_capacity(dump.nodes.len());
        let mut n_nodes = 0usize;
        for (i, n) in dump.nodes.iter().enumerate() {
            if n.alive {
                n_nodes += 1;
                if let Some(t) = n.taxon {
                    if t as usize >= dump.universe {
                        return Err(bad(format!("node {i}: taxon {t} outside universe")));
                    }
                    if leaf_of[t as usize].is_some() {
                        return Err(TreeError::BadLabels(format!("taxon {t} labels two nodes")));
                    }
                    leaf_of[t as usize] = Some(NodeId(i as u32));
                    taxa.insert(t as usize);
                }
            } else if !n.adj.is_empty() {
                return Err(bad(format!("dead node {i} has a non-empty adjacency list")));
            } else if n.taxon.is_some() {
                return Err(bad(format!("dead node {i} carries a taxon")));
            }
            nodes.push(Node {
                alive: n.alive,
                taxon: if n.alive { n.taxon.map(TaxonId) } else { None },
                adj: n.adj.iter().map(|&e| EdgeId(e)).collect(),
            });
        }
        let mut edges = Vec::with_capacity(dump.edges.len());
        let mut n_edges = 0usize;
        for e in &dump.edges {
            if e.alive {
                n_edges += 1;
                if e.a as usize >= dump.nodes.len() || e.b as usize >= dump.nodes.len() {
                    return Err(bad("edge endpoint outside the node arena".into()));
                }
            }
            edges.push(Edge {
                alive: e.alive,
                a: NodeId(e.a),
                b: NodeId(e.b),
            });
        }
        // The free lists must enumerate exactly the dead slots, each once:
        // a live id on a free list would be resurrected by the next alloc,
        // and a dead slot missing from the lists would leak forever.
        check_free_list("node", &dump.free_nodes, dump.nodes.len(), |i| {
            dump.nodes[i].alive
        })?;
        check_free_list("edge", &dump.free_edges, dump.edges.len(), |i| {
            dump.edges[i].alive
        })?;
        let tree = Tree {
            universe: dump.universe,
            nodes,
            edges,
            free_nodes: dump.free_nodes.iter().map(|&n| NodeId(n)).collect(),
            free_edges: dump.free_edges.iter().map(|&e| EdgeId(e)).collect(),
            leaf_of,
            taxa,
            n_nodes,
            n_edges,
        };
        tree.validate()?;
        Ok(tree)
    }

    /// A behavioural fingerprint of the arena: the live structure (ids,
    /// labels, adjacency order) plus the *future allocation order* (the
    /// LIFO free lists in pop order, then the next fresh ids). Two arenas
    /// with equal fingerprints are indistinguishable to any sequence of
    /// future edits — this is the determinism contract the parallel task
    /// paths rely on, and what the undo/replay tests assert.
    ///
    /// Note a cancelled insert/remove pair leaves dead slots behind, so raw
    /// memory is *not* restored — but the freed ids sit on the LIFO free
    /// list in exactly fresh-allocation order, which is why the fingerprint
    /// (and therefore all future behaviour) is.
    pub fn arena_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            (i, n.taxon.map(|t| t.0)).hash(&mut h);
            for e in &n.adj {
                e.0.hash(&mut h);
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            (i, e.a.0, e.b.0).hash(&mut h);
        }
        // Future id sequence = free list in pop order, then fresh ids from
        // the bump pointer. A free-list tail that is exactly the ids just
        // below the bump pointer (in pop order) is equivalent to never
        // having allocated them, so trim it before hashing.
        fn hash_future<H: Hasher>(free: &[u32], len: usize, h: &mut H) {
            let mut eff = len as u32;
            let mut cut = 0;
            while cut < free.len() && free[cut] + 1 == eff {
                eff -= 1;
                cut += 1;
            }
            for id in free[cut..].iter().rev() {
                id.hash(h);
            }
            eff.hash(h);
        }
        let free_nodes: Vec<u32> = self.free_nodes.iter().map(|n| n.0).collect();
        let free_edges: Vec<u32> = self.free_edges.iter().map(|e| e.0).collect();
        hash_future(&free_nodes, self.nodes.len(), &mut h);
        hash_future(&free_edges, self.edges.len(), &mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaxonId {
        TaxonId(i)
    }

    #[test]
    fn two_and_three_leaf_shapes() {
        let t2 = Tree::two_leaf(8, t(0), t(1));
        assert_eq!(t2.node_count(), 2);
        assert_eq!(t2.edge_count(), 1);
        assert!(t2.is_binary_unrooted());
        t2.validate().unwrap();

        let t3 = Tree::three_leaf(8, t(0), t(1), t(2));
        assert_eq!(t3.node_count(), 4);
        assert_eq!(t3.edge_count(), 3);
        assert!(t3.is_binary_unrooted());
        t3.validate().unwrap();
    }

    #[test]
    fn insert_grows_binary_tree() {
        let mut tree = Tree::three_leaf(8, t(0), t(1), t(2));
        let e = tree.edges().next().unwrap();
        let ins = tree.insert_leaf_on_edge(t(3), e);
        tree.validate().unwrap();
        assert!(tree.is_binary_unrooted());
        assert_eq!(tree.leaf_count(), 4);
        assert_eq!(tree.node_count(), 6);
        assert_eq!(tree.edge_count(), 5);
        assert_eq!(tree.taxon(ins.leaf), Some(t(3)));
        assert_eq!(tree.leaf(t(3)), Some(ins.leaf));
    }

    #[test]
    fn remove_is_exact_inverse() {
        let mut tree = Tree::three_leaf(8, t(0), t(1), t(2));
        let before = tree.arena_fingerprint();
        let e = tree.edges().nth(2).unwrap();
        let ins = tree.insert_leaf_on_edge(t(5), e);
        assert_ne!(tree.arena_fingerprint(), before);
        tree.remove_insertion(&ins);
        assert_eq!(tree.arena_fingerprint(), before);
        tree.validate().unwrap();
        assert_eq!(tree.leaf(t(5)), None);
    }

    #[test]
    fn nested_insert_remove_lifo() {
        let mut tree = Tree::three_leaf(16, t(0), t(1), t(2));
        let fp0 = tree.arena_fingerprint();
        let e0 = tree.edges().next().unwrap();
        let i1 = tree.insert_leaf_on_edge(t(3), e0);
        let fp1 = tree.arena_fingerprint();
        let i2 = tree.insert_leaf_on_edge(t(4), i1.pendant);
        let i3 = tree.insert_leaf_on_edge(t(5), i2.far_half);
        tree.validate().unwrap();
        assert!(tree.is_binary_unrooted());
        tree.remove_insertion(&i3);
        tree.remove_insertion(&i2);
        assert_eq!(tree.arena_fingerprint(), fp1);
        tree.remove_insertion(&i1);
        assert_eq!(tree.arena_fingerprint(), fp0);
    }

    #[test]
    fn replay_determinism_across_copies() {
        // Two histories: (insert, remove, insert-same) vs (insert) must
        // produce identical arenas — that is what makes task paths portable.
        let mut a = Tree::three_leaf(16, t(0), t(1), t(2));
        let mut b = a.clone();
        let e = a.edges().next().unwrap();
        let ins = a.insert_leaf_on_edge(t(7), e);
        a.remove_insertion(&ins);
        let ia = a.insert_leaf_on_edge(t(7), e);
        let ib = b.insert_leaf_on_edge(t(7), e);
        assert_eq!(ia, ib);
        assert_eq!(a.arena_fingerprint(), b.arena_fingerprint());
    }

    #[test]
    fn preorder_reaches_all_nodes() {
        let mut tree = Tree::three_leaf(16, t(0), t(1), t(2));
        for (i, tx) in (3..10).enumerate() {
            let e = tree.edges().nth(i % tree.edge_count()).unwrap();
            tree.insert_leaf_on_edge(t(tx), e);
        }
        let root = tree.any_leaf().unwrap();
        assert_eq!(tree.preorder(root).len(), tree.node_count());
    }

    #[test]
    fn edge_iteration_is_id_ordered() {
        let mut tree = Tree::three_leaf(16, t(0), t(1), t(2));
        let e = tree.edges().next().unwrap();
        tree.insert_leaf_on_edge(t(3), e);
        let ids: Vec<u32> = tree.edges().map(|e| e.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn validate_catches_duplicate_structure() {
        // A handcrafted cycle must be rejected.
        let mut tree = Tree::new(4);
        let a = tree.add_node(Some(t(0)));
        let b = tree.add_node(None);
        tree.add_edge(a, b);
        tree.add_edge(a, b);
        assert!(matches!(
            tree.validate(),
            Err(TreeError::NotATree(_)) | Err(TreeError::BadLabels(_))
        ));
    }

    #[test]
    fn arena_dump_roundtrip_preserves_fingerprint() {
        // Build a tree with dead slots: insert, remove, insert elsewhere,
        // so free lists are non-trivial.
        let mut tree = Tree::three_leaf(16, t(0), t(1), t(2));
        let e0 = tree.edges().next().unwrap();
        let i1 = tree.insert_leaf_on_edge(t(3), e0);
        let i2 = tree.insert_leaf_on_edge(t(4), i1.pendant);
        tree.remove_insertion(&i2);
        let i3 = tree.insert_leaf_on_edge(t(5), i1.far_half);
        tree.remove_insertion(&i3);
        let dump = tree.dump_arena();
        let restored = Tree::from_arena_dump(&dump).unwrap();
        assert_eq!(restored.arena_fingerprint(), tree.arena_fingerprint());
        assert_eq!(restored.dump_arena(), dump, "dump is a fixed point");
        // Behavioural identity: the same future edit yields the same ids.
        let ia = tree.insert_leaf_on_edge(t(6), i1.pendant);
        let mut restored = restored;
        let ib = restored.insert_leaf_on_edge(t(6), i1.pendant);
        assert_eq!(ia, ib);
        assert_eq!(restored.arena_fingerprint(), tree.arena_fingerprint());
    }

    #[test]
    fn arena_dump_rejects_corruption() {
        let mut tree = Tree::three_leaf(8, t(0), t(1), t(2));
        let e = tree.edges().next().unwrap();
        let ins = tree.insert_leaf_on_edge(t(3), e);
        tree.remove_insertion(&ins);
        let good = tree.dump_arena();
        assert!(Tree::from_arena_dump(&good).is_ok());

        // Free list omits a dead slot.
        let mut d = good.clone();
        d.free_nodes.pop();
        assert!(Tree::from_arena_dump(&d).is_err());
        // Free list names a live slot.
        let mut d = good.clone();
        d.free_nodes.push(0);
        assert!(Tree::from_arena_dump(&d).is_err());
        // Duplicate free id.
        let mut d = good.clone();
        let dup = d.free_edges[0];
        d.free_edges.push(dup);
        assert!(Tree::from_arena_dump(&d).is_err());
        // Out-of-range free id.
        let mut d = good.clone();
        d.free_edges[0] = 999;
        assert!(Tree::from_arena_dump(&d).is_err());
        // Duplicate taxon.
        let mut d = good.clone();
        for n in d.nodes.iter_mut().filter(|n| n.alive && n.taxon == Some(1)) {
            n.taxon = Some(0);
        }
        assert!(Tree::from_arena_dump(&d).is_err());
        // Taxon outside the universe.
        let mut d = good.clone();
        for n in d.nodes.iter_mut().filter(|n| n.taxon == Some(2)) {
            n.taxon = Some(99);
        }
        assert!(Tree::from_arena_dump(&d).is_err());
        // Dead node with adjacency.
        let mut d = good.clone();
        let dead = d.free_nodes[0] as usize;
        d.nodes[dead].adj.push(0);
        assert!(Tree::from_arena_dump(&d).is_err());
        // Edge endpoint out of range.
        let mut d = good.clone();
        let live_edge = d.edges.iter().position(|e| e.alive).unwrap();
        d.edges[live_edge].a = 999;
        assert!(Tree::from_arena_dump(&d).is_err());
        // Disconnected live structure (drop one edge, keep counts stale).
        let mut d = good.clone();
        d.edges[live_edge].alive = false;
        d.free_edges.insert(0, live_edge as u32);
        assert!(Tree::from_arena_dump(&d).is_err());
    }

    #[test]
    fn opposite_endpoint() {
        let tree = Tree::two_leaf(4, t(0), t(1));
        let e = tree.edges().next().unwrap();
        let (a, b) = tree.endpoints(e);
        assert_eq!(tree.opposite(e, a), b);
        assert_eq!(tree.opposite(e, b), a);
    }
}
