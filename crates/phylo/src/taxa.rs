//! Taxon identifiers and the shared taxon universe.
//!
//! Every dataset works over one fixed universe of taxon labels. Trees,
//! presence–absence matrices and splits all refer to taxa by dense integer
//! [`TaxonId`]s interned in a [`TaxonSet`], so hot code never touches
//! strings.

use crate::bitset::BitSet;
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a taxon within one [`TaxonSet`] universe.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaxonId(pub u32);

impl TaxonId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaxonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An interner mapping taxon labels to dense [`TaxonId`]s.
///
/// The order of first insertion defines the id order; ids are stable for the
/// lifetime of the set. All trees in one analysis must share one `TaxonSet`.
#[derive(Clone, Debug, Default)]
pub struct TaxonSet {
    names: Vec<String>,
    index: HashMap<String, TaxonId>,
}

impl TaxonSet {
    /// Creates an empty taxon universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a universe with `n` synthetic labels `T0..T{n-1}`.
    pub fn with_synthetic(n: usize) -> Self {
        let mut s = Self::new();
        for i in 0..n {
            s.intern(&format!("T{i}"));
        }
        s
    }

    /// Returns the id for `name`, interning it if unseen.
    pub fn intern(&mut self, name: &str) -> TaxonId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = TaxonId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing label without interning.
    pub fn get(&self, name: &str) -> Option<TaxonId> {
        self.index.get(name).copied()
    }

    /// The label of `id`. Panics if `id` is not from this universe.
    pub fn name(&self, id: TaxonId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned taxa (the universe size for [`BitSet`]s).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no taxa have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TaxonId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TaxonId(i as u32), n.as_str()))
    }

    /// An empty taxon subset over this universe.
    pub fn empty_subset(&self) -> BitSet {
        BitSet::new(self.len())
    }

    /// The full universe as a subset.
    pub fn full_subset(&self) -> BitSet {
        BitSet::full(self.len())
    }

    /// Builds a subset from taxon ids.
    pub fn subset<I: IntoIterator<Item = TaxonId>>(&self, ids: I) -> BitSet {
        BitSet::from_iter(self.len(), ids.into_iter().map(|t| t.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dedups() {
        let mut ts = TaxonSet::new();
        let a = ts.intern("alpha");
        let b = ts.intern("beta");
        let a2 = ts.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.name(a), "alpha");
        assert_eq!(ts.get("beta"), Some(b));
        assert_eq!(ts.get("gamma"), None);
    }

    #[test]
    fn synthetic_labels() {
        let ts = TaxonSet::with_synthetic(3);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.name(TaxonId(0)), "T0");
        assert_eq!(ts.name(TaxonId(2)), "T2");
    }

    #[test]
    fn subsets() {
        let ts = TaxonSet::with_synthetic(70);
        let s = ts.subset([TaxonId(0), TaxonId(69)]);
        assert!(s.contains(0));
        assert!(s.contains(69));
        assert_eq!(s.count(), 2);
        assert_eq!(ts.full_subset().count(), 70);
        assert!(ts.empty_subset().is_empty());
    }

    #[test]
    fn iter_in_id_order() {
        let mut ts = TaxonSet::new();
        ts.intern("x");
        ts.intern("y");
        let pairs: Vec<_> = ts.iter().map(|(i, n)| (i.0, n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "x".into()), (1, "y".into())]);
    }
}
