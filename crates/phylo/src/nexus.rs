//! NEXUS tree-file support (TAXA and TREES blocks).
//!
//! The interchange format of the tools surrounding this paper (IQ-TREE,
//! terraphy, RAxML pipelines). Supported: `#NEXUS` header, bracketed
//! comments, `BEGIN TAXA / DIMENSIONS / TAXLABELS`, and
//! `BEGIN TREES / TRANSLATE / TREE name = [&U] (...);` with numeric or
//! symbolic translate keys and quoted labels. Rooting annotations
//! (`[&R]`/`[&U]`) are accepted and ignored — trees are unrooted here.

use crate::newick::{parse_newick, to_newick, NewickError};
use crate::taxa::TaxonSet;
use crate::tree::Tree;
use std::collections::HashMap;

/// A parsed NEXUS file: the taxon universe and the named trees.
#[derive(Debug)]
pub struct NexusData {
    /// The taxon universe (from TAXLABELS and/or tree leaves).
    pub taxa: TaxonSet,
    /// `(tree name, tree)` in file order.
    pub trees: Vec<(String, Tree)>,
}

/// NEXUS parse error, one variant per way the input can be malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NexusError {
    /// The file does not start with `#NEXUS`.
    MissingHeader,
    /// A TRANSLATE body held an odd number of tokens (must be key/label
    /// pairs).
    OddTranslate {
        /// How many tokens the body actually held.
        tokens: usize,
    },
    /// A TREE command without the mandatory `name = tree` shape.
    BadTreeCommand {
        /// The offending command text.
        command: String,
    },
    /// Neither a TAXA nor a TREES block contributed any content.
    NoContent,
    /// An embedded Newick string failed to parse.
    Newick(NewickError),
}

impl std::fmt::Display for NexusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NexusError::MissingHeader => write!(f, "nexus error: missing #NEXUS header"),
            NexusError::OddTranslate { tokens } => {
                write!(f, "nexus error: odd TRANSLATE token count ({tokens})")
            }
            NexusError::BadTreeCommand { command } => {
                write!(f, "nexus error: bad TREE command: {command}")
            }
            NexusError::NoContent => write!(f, "nexus error: no TAXA or TREES content found"),
            NexusError::Newick(e) => write!(f, "nexus error: {e}"),
        }
    }
}

impl std::error::Error for NexusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NexusError::Newick(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NewickError> for NexusError {
    fn from(e: NewickError) -> Self {
        NexusError::Newick(e)
    }
}

/// Removes `[...]` comments (nesting tolerated; quotes respected).
fn strip_comments(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut depth = 0usize;
    let mut in_quote = false;
    for c in input.chars() {
        match c {
            '\'' if depth == 0 => {
                in_quote = !in_quote;
                out.push(c);
            }
            '[' if !in_quote => depth += 1,
            ']' if !in_quote && depth > 0 => depth -= 1,
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Splits into `;`-terminated commands, respecting quotes.
fn commands(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in input.chars() {
        match c {
            '\'' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            ';' if !in_quote => {
                let t = cur.trim().to_string();
                if !t.is_empty() {
                    out.push(t);
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let t = cur.trim().to_string();
    if !t.is_empty() {
        out.push(t);
    }
    out
}

/// First word of a command, lowercased.
fn keyword(cmd: &str) -> String {
    cmd.split_whitespace()
        .next()
        .unwrap_or_default()
        .to_ascii_lowercase()
}

/// The command body after its leading (ASCII) keyword; empty when the
/// command is somehow shorter than the keyword (a panicky slice here was
/// the old behaviour).
fn strip_keyword<'a>(cmd: &'a str, kw: &str) -> &'a str {
    cmd.trim_start().get(kw.len()..).unwrap_or("")
}

/// Tokenizes a label list (TAXLABELS / TRANSLATE bodies): whitespace- and
/// comma-separated, with quoted tokens kept intact (quotes removed,
/// doubled quotes unescaped).
fn label_tokens(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('\'') => {
                chars.next();
                let mut tok = String::new();
                loop {
                    match chars.next() {
                        Some('\'') if chars.peek() == Some(&'\'') => {
                            tok.push('\'');
                            chars.next();
                        }
                        Some('\'') | None => break,
                        Some(c) => tok.push(c),
                    }
                }
                out.push(tok);
            }
            Some(_) => {
                let mut tok = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == ',' {
                        break;
                    }
                    tok.push(c);
                    chars.next();
                }
                out.push(tok);
            }
        }
    }
    out
}

/// Rewrites a Newick string, mapping each leaf label through `translate`.
/// Labels not in the table pass through unchanged.
fn apply_translate(newick: &str, translate: &HashMap<String, String>) -> String {
    let mut out = String::with_capacity(newick.len());
    let mut chars = newick.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' | ')' | ',' | ';' => {
                out.push(c);
                chars.next();
            }
            ':' => {
                // Branch length: copy verbatim until a delimiter.
                out.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if matches!(d, '(' | ')' | ',' | ';') {
                        break;
                    }
                    out.push(d);
                    chars.next();
                }
            }
            '\'' => {
                chars.next();
                let mut tok = String::new();
                loop {
                    match chars.next() {
                        Some('\'') if chars.peek() == Some(&'\'') => {
                            tok.push('\'');
                            chars.next();
                        }
                        Some('\'') | None => break,
                        Some(d) => tok.push(d),
                    }
                }
                let label = translate.get(&tok).cloned().unwrap_or(tok);
                write_quotable(&mut out, &label);
            }
            d if d.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut tok = String::new();
                while let Some(&d) = chars.peek() {
                    if matches!(d, '(' | ')' | ',' | ';' | ':') || d.is_whitespace() {
                        break;
                    }
                    tok.push(d);
                    chars.next();
                }
                let label = translate.get(&tok).cloned().unwrap_or(tok);
                write_quotable(&mut out, &label);
            }
        }
    }
    out
}

fn write_quotable(out: &mut String, label: &str) {
    let needs = label
        .chars()
        .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | ':' | ';' | '\''));
    if needs {
        out.push('\'');
        out.push_str(&label.replace('\'', "''"));
        out.push('\'');
    } else {
        out.push_str(label);
    }
}

/// Parses a NEXUS file containing TAXA and/or TREES blocks.
pub fn parse_nexus(input: &str) -> Result<NexusData, NexusError> {
    let stripped = strip_comments(input);
    if !stripped.trim_start().starts_with("#NEXUS") && !stripped.trim_start().starts_with("#nexus")
    {
        return Err(NexusError::MissingHeader);
    }
    let cmds = commands(
        stripped
            .trim_start()
            .trim_start_matches("#NEXUS")
            .trim_start_matches("#nexus"),
    );

    let mut block: Option<String> = None;
    let mut translate: HashMap<String, String> = HashMap::new();
    let mut taxlabels: Vec<String> = Vec::new();
    let mut tree_sources: Vec<(String, String)> = Vec::new();

    for cmd in &cmds {
        match keyword(cmd).as_str() {
            "begin" => {
                let name = cmd
                    .split_whitespace()
                    .nth(1)
                    .unwrap_or_default()
                    .to_ascii_lowercase();
                block = Some(name);
            }
            "end" | "endblock" => block = None,
            "taxlabels" if block.as_deref() == Some("taxa") => {
                taxlabels = label_tokens(strip_keyword(cmd, "taxlabels"));
            }
            "translate" if block.as_deref() == Some("trees") => {
                let toks = label_tokens(strip_keyword(cmd, "translate"));
                if !toks.len().is_multiple_of(2) {
                    return Err(NexusError::OddTranslate { tokens: toks.len() });
                }
                for pair in toks.chunks(2) {
                    translate.insert(pair[0].clone(), pair[1].clone());
                }
            }
            "tree" if block.as_deref() == Some("trees") => {
                let rest = strip_keyword(cmd, "tree").trim();
                let (name, newick) =
                    rest.split_once('=')
                        .ok_or_else(|| NexusError::BadTreeCommand {
                            command: cmd.clone(),
                        })?;
                // Strip rooting annotations like &U / &R that survive
                // comment stripping when written without brackets.
                let newick = newick
                    .trim()
                    .trim_start_matches("&U")
                    .trim_start_matches("&R");
                tree_sources.push((
                    name.trim().to_string(),
                    format!("{};", newick.trim().trim_end_matches(';')),
                ));
            }
            _ => {}
        }
    }
    if tree_sources.is_empty() && taxlabels.is_empty() {
        return Err(NexusError::NoContent);
    }

    // Build the shared universe: declared taxa first, then tree leaves.
    let translated: Vec<(String, String)> = tree_sources
        .into_iter()
        .map(|(n, s)| (n, apply_translate(&s, &translate)))
        .collect();
    let mut taxa = TaxonSet::new();
    for l in &taxlabels {
        taxa.intern(l);
    }
    {
        // Intern any leaves not declared in TAXLABELS.
        let all: Vec<&str> = translated.iter().map(|(_, s)| s.as_str()).collect();
        if !all.is_empty() {
            let (merged, _) = crate::newick::parse_forest(all.iter().copied())?;
            for (_, name) in merged.iter() {
                taxa.intern(name);
            }
        }
    }
    let mut trees = Vec::with_capacity(translated.len());
    for (name, source) in translated {
        trees.push((name, parse_newick(&source, &taxa)?));
    }
    Ok(NexusData { taxa, trees })
}

/// Writes taxa and named trees as a NEXUS file (TAXA + TREES blocks, no
/// TRANSLATE — labels are written inline, quoted when necessary).
pub fn write_nexus(taxa: &TaxonSet, trees: &[(String, &Tree)]) -> String {
    let mut s = String::from("#NEXUS\n\nBEGIN TAXA;\n");
    s.push_str(&format!("  DIMENSIONS NTAX={};\n", taxa.len()));
    s.push_str("  TAXLABELS");
    for (_, name) in taxa.iter() {
        s.push(' ');
        write_quotable(&mut s, name);
    }
    s.push_str(";\nEND;\n\nBEGIN TREES;\n");
    for (name, tree) in trees {
        s.push_str(&format!(
            "  TREE {} = [&U] {}\n",
            name,
            to_newick(tree, taxa)
        ));
    }
    s.push_str("END;\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::topo_eq;

    const SAMPLE: &str = "#NEXUS
[ a file-level comment ]
BEGIN TAXA;
  DIMENSIONS NTAX=4;
  TAXLABELS A B C 'D d';
END;
BEGIN TREES;
  TRANSLATE 1 A, 2 B, 3 C, 4 'D d';
  TREE gene1 = [&U] ((1,2),(3,4));
  TREE gene2 = ((1,3),(2,4));
END;
";

    #[test]
    fn parse_sample() {
        let data = parse_nexus(SAMPLE).unwrap();
        assert_eq!(data.taxa.len(), 4);
        assert!(data.taxa.get("D d").is_some());
        assert_eq!(data.trees.len(), 2);
        assert_eq!(data.trees[0].0, "gene1");
        assert_eq!(data.trees[0].1.leaf_count(), 4);
        assert!(!topo_eq(&data.trees[0].1, &data.trees[1].1));
    }

    #[test]
    fn untranslated_labels_pass_through() {
        let src = "#NEXUS\nBEGIN TREES;\nTREE t = ((A,B),(C,D));\nEND;\n";
        let data = parse_nexus(src).unwrap();
        assert_eq!(data.taxa.len(), 4);
        assert!(data.taxa.get("A").is_some());
    }

    #[test]
    fn roundtrip() {
        let data = parse_nexus(SAMPLE).unwrap();
        let named: Vec<(String, &Tree)> = data.trees.iter().map(|(n, t)| (n.clone(), t)).collect();
        let out = write_nexus(&data.taxa, &named);
        let again = parse_nexus(&out).unwrap();
        assert_eq!(again.trees.len(), 2);
        for ((_, a), (_, b)) in data.trees.iter().zip(&again.trees) {
            // Universes may be re-ordered; compare canonical strings on
            // each own taxa set instead of topo_eq across universes.
            assert_eq!(
                crate::newick::to_newick(a, &data.taxa),
                crate::newick::to_newick(b, &again.taxa)
            );
        }
    }

    #[test]
    fn comments_and_case_are_tolerated() {
        let src = "#NEXUS\nbegin trees; [comment ;) tricky]\n tree T1 = ((A,B),(C,[x]D));\nend;\n";
        let data = parse_nexus(src).unwrap();
        assert_eq!(data.trees.len(), 1);
        assert_eq!(data.trees[0].1.leaf_count(), 4);
    }

    #[test]
    fn missing_header_is_typed() {
        assert_eq!(
            parse_nexus("not nexus").unwrap_err(),
            NexusError::MissingHeader
        );
    }

    #[test]
    fn empty_blocks_are_typed() {
        assert_eq!(
            parse_nexus("#NEXUS\nBEGIN TREES;\nEND;\n").unwrap_err(),
            NexusError::NoContent
        );
    }

    #[test]
    fn odd_translate_is_typed() {
        assert_eq!(
            parse_nexus("#NEXUS\nBEGIN TREES;\nTRANSLATE 1 A, 2;\nTREE t=(A,B,C);\nEND;")
                .unwrap_err(),
            NexusError::OddTranslate { tokens: 3 }
        );
    }

    #[test]
    fn equals_less_tree_command_is_typed() {
        let err = parse_nexus("#NEXUS\nBEGIN TREES;\nTREE broken (A,B,C);\nEND;").unwrap_err();
        assert!(
            matches!(&err, NexusError::BadTreeCommand { command } if command.contains("broken")),
            "{err:?}"
        );
    }

    #[test]
    fn malformed_embedded_newick_is_typed() {
        let err = parse_nexus("#NEXUS\nBEGIN TREES;\nTREE t = ((A,B;\nEND;").unwrap_err();
        assert!(matches!(err, NexusError::Newick(_)), "{err:?}");
        // The byte-offset detail of the inner error survives the wrapping.
        assert!(err.to_string().contains("newick error"), "{err}");
    }

    #[test]
    fn branch_lengths_survive_translation() {
        let src = "#NEXUS\nBEGIN TREES;\nTRANSLATE 1 Alpha, 2 Beta, 3 Gamma, 4 Delta;\nTREE t = ((1:0.1,2:0.2):0.05,(3:0.3,4:0.4):0.01);\nEND;";
        let data = parse_nexus(src).unwrap();
        assert_eq!(data.trees[0].1.leaf_count(), 4);
        assert!(data.taxa.get("Alpha").is_some());
        assert!(data.taxa.get("1").is_none());
    }
}
