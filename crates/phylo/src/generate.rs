//! Seeded random tree generation.
//!
//! Random trees drive the simulated datasets and the property tests. Two
//! models are provided:
//!
//! * **Uniform** — every unrooted binary topology on `n` leaves with equal
//!   probability, via random stepwise addition (at step `k` each of the
//!   `2k-3` edges is chosen uniformly, which is exactly the uniform
//!   distribution over the `(2n-5)!!` topologies).
//! * **Yule–Harding-ish** — stepwise addition restricted to pendant edges,
//!   which yields the more balanced shapes typical of empirical trees.

use crate::taxa::TaxonId;
use crate::tree::{EdgeId, Tree};
use rand::Rng;

/// Tree shape model for [`random_tree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeModel {
    /// Uniform over all unrooted binary topologies.
    Uniform,
    /// Insertions restricted to pendant edges (more balanced, Yule-like).
    Yule,
}

/// Generates a random unrooted binary tree on the taxa `ids` (which must be
/// distinct) over universe size `universe`. Requires `ids.len() >= 2`.
pub fn random_tree<R: Rng + ?Sized>(
    universe: usize,
    ids: &[TaxonId],
    model: ShapeModel,
    rng: &mut R,
) -> Tree {
    assert!(ids.len() >= 2, "need at least two taxa");
    if ids.len() == 2 {
        return Tree::two_leaf(universe, ids[0], ids[1]);
    }
    let mut tree = Tree::three_leaf(universe, ids[0], ids[1], ids[2]);
    let mut edges: Vec<EdgeId> = tree.edges().collect();
    for &t in &ids[3..] {
        let e = match model {
            ShapeModel::Uniform => edges[rng.gen_range(0..edges.len())],
            ShapeModel::Yule => {
                // Pick a pendant edge: one endpoint is a leaf.
                loop {
                    let cand = edges[rng.gen_range(0..edges.len())];
                    let (a, b) = tree.endpoints(cand);
                    if tree.taxon(a).is_some() || tree.taxon(b).is_some() {
                        break cand;
                    }
                }
            }
        };
        let ins = tree.insert_leaf_on_edge(t, e);
        edges.push(ins.far_half);
        edges.push(ins.pendant);
    }
    tree
}

/// Convenience: a random tree on taxa `0..n` of an `n`-taxon universe.
pub fn random_tree_on_n<R: Rng + ?Sized>(n: usize, model: ShapeModel, rng: &mut R) -> Tree {
    let ids: Vec<TaxonId> = (0..n as u32).map(TaxonId).collect();
    random_tree(n, &ids, model, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::to_newick;
    use crate::taxa::TaxonSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    #[test]
    fn generated_trees_are_valid_binary() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [2usize, 3, 4, 10, 50] {
            for model in [ShapeModel::Uniform, ShapeModel::Yule] {
                let t = random_tree_on_n(n, model, &mut rng);
                t.validate().unwrap();
                assert_eq!(t.leaf_count(), n);
                assert!(t.is_binary_unrooted());
            }
        }
    }

    #[test]
    fn determinism_under_seed() {
        let a = random_tree_on_n(20, ShapeModel::Uniform, &mut ChaCha8Rng::seed_from_u64(7));
        let b = random_tree_on_n(20, ShapeModel::Uniform, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a.arena_fingerprint(), b.arena_fingerprint());
    }

    #[test]
    fn uniform_hits_all_five_leaf_topologies() {
        // 5 leaves → 15 topologies; a uniform sampler must reach all of
        // them quickly and roughly evenly.
        let taxa = TaxonSet::with_synthetic(5);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut seen: HashMap<String, usize> = HashMap::new();
        for _ in 0..3000 {
            let t = random_tree_on_n(5, ShapeModel::Uniform, &mut rng);
            *seen.entry(to_newick(&t, &taxa)).or_default() += 1;
        }
        assert_eq!(seen.len(), 15);
        let min = seen.values().min().unwrap();
        let max = seen.values().max().unwrap();
        // 3000/15 = 200 expected; allow generous slack.
        assert!(*min > 120 && *max < 300, "min={min} max={max}");
    }

    #[test]
    fn yule_trees_are_leafier() {
        // Sanity: Yule trees exist and differ from uniform in shape on
        // average; just check they are valid and complete here.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = random_tree_on_n(100, ShapeModel::Yule, &mut rng);
        assert_eq!(t.leaf_count(), 100);
        assert!(t.is_binary_unrooted());
    }
}
