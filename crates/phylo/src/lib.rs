//! # phylo — unrooted phylogenetic tree substrate
//!
//! The tree machinery the Gentrius reproduction is built on: an arena-based
//! unrooted tree with **undo-safe, deterministically-replayable edits**
//! (the property the paper's cross-thread task paths rely on), Newick I/O,
//! splits/bipartitions, restriction (`T|S`), display/compatibility tests,
//! presence–absence matrices, random tree generation, Robinson–Foulds
//! distances, and a brute-force topology enumerator used as a test oracle.
//!
//! ## Quick tour
//!
//! ```
//! use phylo::newick::{parse_forest, to_newick};
//! use phylo::ops::{displays, restrict};
//!
//! let (taxa, trees) = parse_forest(["((A,B),((C,D),E));", "((A,B),C);"]).unwrap();
//! assert!(displays(&trees[0], &trees[1]));
//! let sub = restrict(&trees[0], trees[1].taxa());
//! assert_eq!(to_newick(&sub, &taxa), to_newick(&trees[1], &taxa));
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod consensus;
pub mod distance;
pub mod enumerate;
pub mod generate;
pub mod newick;
pub mod nexus;
pub mod ops;
pub mod pam;
pub mod phylo2vec;
pub mod shape;
pub mod split;
pub mod taxa;
pub mod tree;

pub use bitset::BitSet;
pub use pam::Pam;
pub use taxa::{TaxonId, TaxonSet};
pub use tree::{EdgeId, Insertion, NodeId, Tree};
