//! Tree-shape statistics: balance indices and cherry counts.
//!
//! Used to characterize generated trees (the empirical-like generator
//! targets Yule-ish balance, the simulated one uniform "random" shapes)
//! and as analysis output for stand studies. All statistics are computed
//! on the unrooted tree rooted at a canonical edge, following the usual
//! convention for unrooted balance comparisons.

use crate::tree::{NodeId, Tree};

/// Shape summary of a binary tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShapeStats {
    /// Number of cherries: internal nodes adjacent to exactly two leaves
    /// (root-independent, the unrooted convention).
    pub cherries: usize,
    /// Colless imbalance: sum over internal nodes of `|L - R|` where L, R
    /// are the child-subtree leaf counts (rooted at the canonical edge).
    pub colless: u64,
    /// Sackin index: sum of leaf depths (rooted at the canonical edge).
    pub sackin: u64,
    /// Maximum leaf depth.
    pub max_depth: usize,
}

/// Computes shape statistics for a binary unrooted tree with at least
/// three leaves. Rooting: the tree is rooted on the pendant edge of the
/// smallest-id taxon (deterministic, so comparisons are stable).
pub fn shape_stats(tree: &Tree) -> Option<ShapeStats> {
    if tree.leaf_count() < 3 || !tree.is_binary_unrooted() {
        return None;
    }
    let root_leaf = tree.any_leaf()?;

    // Iterative traversal from the smallest-taxon leaf (the canonical
    // root); its single neighbour acts as the rooted tree's root node.
    let mut cherries = 0usize;
    let mut colless = 0u64;
    let mut sackin = 0u64;
    let mut max_depth = 0usize;

    // leaves_below computed bottom-up; depth top-down via preorder.
    let order = tree.preorder(root_leaf);
    let mut depth = vec![0usize; tree.node_id_bound()];
    let mut leaves_below = vec![0u64; tree.node_id_bound()];
    for &(v, pe) in &order {
        if let Some(pe) = pe {
            let parent = tree.opposite(pe, v);
            depth[v.index()] = depth[parent.index()] + 1;
        }
        if tree.taxon(v).is_some() && v != root_leaf {
            // Depth convention: distance from the canonical root point
            // (the start node), i.e. depth-1 relative to root_leaf.
            let d = depth[v.index()] - 1;
            sackin += d as u64;
            max_depth = max_depth.max(d);
        }
    }
    for &(v, pe) in order.iter().rev() {
        if tree.taxon(v).is_some() {
            leaves_below[v.index()] = 1;
        }
        if let Some(pe) = pe {
            let parent = tree.opposite(pe, v);
            leaves_below[parent.index()] += leaves_below[v.index()];
        }
    }
    // Internal-node statistics. Colless uses the rooted view (children =
    // neighbours one level deeper); cherries use the unrooted convention
    // (internal node adjacent to exactly two leaves), which is
    // root-independent.
    for &(v, _) in &order {
        if tree.taxon(v).is_some() {
            continue;
        }
        let adjacent_leaves = tree
            .adjacent_edges(v)
            .iter()
            .filter(|&&e| tree.taxon(tree.opposite(e, v)).is_some())
            .count();
        if adjacent_leaves == 2 {
            cherries += 1;
        }
        let children: Vec<NodeId> = tree
            .adjacent_edges(v)
            .iter()
            .map(|&e| tree.opposite(e, v))
            .filter(|&c| depth[c.index()] == depth[v.index()] + 1)
            .collect();
        debug_assert_eq!(children.len(), 2, "binary rooted view");
        let l = leaves_below[children[0].index()];
        let r = leaves_below[children[1].index()];
        colless += l.abs_diff(r);
    }
    Some(ShapeStats {
        cherries,
        colless,
        sackin,
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_tree_on_n, ShapeModel};
    use crate::newick::parse_forest;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn balanced_quartet() {
        let (_, t) = parse_forest(["((A,B),(C,D));"]).unwrap();
        let s = shape_stats(&t[0]).unwrap();
        assert_eq!(s.cherries, 2); // AB and CD
                                   // Rooted at A's pendant: children of the A-side hub are leaf B and
                                   // the CD cherry → Colless |1-2| + |1-1| = 1.
        assert_eq!(s.colless, 1);
        assert!(s.max_depth >= 1);
    }

    #[test]
    fn caterpillar_is_maximally_imbalanced() {
        let (_, t) = parse_forest(["(((((A,B),C),D),E),F);"]).unwrap();
        let s = shape_stats(&t[0]).unwrap();
        assert_eq!(s.cherries, 2); // the two ends of the caterpillar
                                   // Caterpillar on n=6 rooted at A: Colless = sum_{k=2..n-2} (k-1).
        let expect: u64 = (1..=3).sum();
        assert_eq!(s.colless, expect);
    }

    #[test]
    fn degenerate_inputs() {
        let (_, t) = parse_forest(["(A,(B,C));"]).unwrap();
        assert!(shape_stats(&t[0]).is_some());
        let (_, t2) = parse_forest(["(A,B);"]).unwrap();
        assert!(shape_stats(&t2[0]).is_none());
        let (_, t3) = parse_forest(["(A,B,C,D);"]).unwrap(); // star
        assert!(shape_stats(&t3[0]).is_none());
    }

    #[test]
    fn yule_is_more_balanced_than_uniform_on_average() {
        let n = 64;
        let trials = 40;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let avg = |model: ShapeModel, rng: &mut ChaCha8Rng| -> f64 {
            (0..trials)
                .map(|_| {
                    shape_stats(&random_tree_on_n(n, model, rng))
                        .unwrap()
                        .colless as f64
                })
                .sum::<f64>()
                / trials as f64
        };
        let uni = avg(ShapeModel::Uniform, &mut rng);
        let yule = avg(ShapeModel::Yule, &mut rng);
        assert!(
            yule < uni,
            "Yule should be more balanced: yule={yule:.1} uniform={uni:.1}"
        );
    }

    #[test]
    fn sackin_and_cherries_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let t = random_tree_on_n(20, ShapeModel::Uniform, &mut rng);
            let s = shape_stats(&t).unwrap();
            // Cherries of an unrooted binary tree on n leaves: 2..=n/2.
            assert!(s.cherries >= 2 && s.cherries <= 10);
            // Sackin bounds for n leaves (rooted view on n-1 leaves + root).
            assert!(s.sackin > 0);
            assert!(s.max_depth >= 2);
        }
    }
}
