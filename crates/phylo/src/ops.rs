//! Whole-tree operations: restriction (`T|S`), display and compatibility
//! tests.
//!
//! *Restriction* prunes a tree to a taxon subset and suppresses the
//! resulting degree-2 vertices; it is the semantic core of stands: a tree
//! `T` *displays* a constraint tree `t` iff `T|L(t) = t`, and two trees are
//! *compatible* iff their restrictions to the shared taxa coincide.

use crate::bitset::BitSet;
use crate::split::topo_eq;
use crate::tree::{EdgeId, NodeId, Tree};

/// Computes the induced subtree `tree|keep`: prune to the leaves in `keep`
/// and suppress degree-2 vertices. The result is a fresh arena over the same
/// taxon universe; node/edge ids are a deterministic function of the input.
///
/// Restriction of a binary tree is binary. Restricting to fewer than two
/// taxa yields the (degenerate) empty or single-leaf tree.
pub fn restrict(tree: &Tree, keep: &BitSet) -> Tree {
    let mut kept = tree.taxa().clone();
    kept.intersect_with(keep);
    let k = kept.count();
    let mut out = Tree::new(tree.universe());
    match k {
        0 => return out,
        1 => {
            let t = crate::taxa::TaxonId(kept.min_member().unwrap() as u32);
            out.add_node(Some(t));
            return out;
        }
        2 => {
            let mut it = kept.iter();
            let a = crate::taxa::TaxonId(it.next().unwrap() as u32);
            let b = crate::taxa::TaxonId(it.next().unwrap() as u32);
            return Tree::two_leaf(tree.universe(), a, b);
        }
        _ => {}
    }

    // Root at the kept leaf with the smallest taxon id (deterministic).
    let root_taxon = kept.min_member().unwrap();
    let root = tree
        .leaf(crate::taxa::TaxonId(root_taxon as u32))
        .expect("kept taxon has no leaf");
    let order = tree.preorder(root);
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; tree.node_id_bound()];
    for &(v, pe) in &order {
        parent_edge[v.index()] = pe;
    }

    // Bottom-up: res[v] is the attachment point (in the new arena) of the
    // restricted subtree hanging below v's parent edge, if non-empty.
    let mut res: Vec<Option<NodeId>> = vec![None; tree.node_id_bound()];
    for &(v, pe) in order.iter().rev() {
        if pe.is_none() {
            break; // the root is handled after the loop
        }
        if let Some(t) = tree.taxon(v) {
            if kept.contains(t.index()) {
                res[v.index()] = Some(out.add_node(Some(t)));
            }
            continue;
        }
        // Internal node: gather surviving children in adjacency order.
        let mut handles: Vec<NodeId> = Vec::new();
        for &e in tree.adjacent_edges(v) {
            if Some(e) == pe {
                continue;
            }
            let c = tree.opposite(e, v);
            if let Some(h) = res[c.index()] {
                handles.push(h);
            }
        }
        res[v.index()] = match handles.len() {
            0 => None,
            1 => Some(handles[0]), // suppress degree-2 vertex
            _ => {
                let hub = out.add_node(None);
                for h in handles {
                    out.add_edge(hub, h);
                }
                Some(hub)
            }
        };
    }

    // Attach the root leaf. Its single subtree must be non-empty (k ≥ 3).
    let root_child = tree
        .adjacent_edges(root)
        .first()
        .map(|&e| tree.opposite(e, root))
        .expect("root leaf has no neighbour");
    let below = res[root_child.index()].expect("k >= 3 but root subtree empty");
    let new_root = out.add_node(tree.taxon(root));
    out.add_edge(new_root, below);
    debug_assert_eq!(out.taxa(), &kept);
    out
}

/// The sequence of edges on the unique path between two live nodes
/// (empty when `a == b`). Linear-time BFS over the tree.
pub fn path_between(tree: &Tree, a: NodeId, b: NodeId) -> Vec<EdgeId> {
    if a == b {
        return Vec::new();
    }
    let order = tree.preorder(a);
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; tree.node_id_bound()];
    for &(v, pe) in &order {
        if let Some(pe) = pe {
            parent[v.index()] = Some((tree.opposite(pe, v), pe));
        }
    }
    let mut path = Vec::new();
    let mut cur = b;
    while cur != a {
        let (p, e) = parent[cur.index()].expect("b reachable from a in a tree");
        path.push(e);
        cur = p;
    }
    path.reverse();
    path
}

/// The topological diameter: the maximum number of edges between any two
/// leaves (0 for trees with fewer than two leaves).
pub fn diameter(tree: &Tree) -> usize {
    // Two BFS sweeps: farthest leaf from an arbitrary leaf, then farthest
    // from that (the classic tree-diameter argument).
    let Some(start) = tree.any_leaf() else {
        return 0;
    };
    let farthest = |from: NodeId| -> (NodeId, usize) {
        let order = tree.preorder(from);
        let mut depth = vec![0usize; tree.node_id_bound()];
        let mut best = (from, 0usize);
        for &(v, pe) in &order {
            if let Some(pe) = pe {
                depth[v.index()] = depth[tree.opposite(pe, v).index()] + 1;
            }
            if tree.taxon(v).is_some() && depth[v.index()] > best.1 {
                best = (v, depth[v.index()]);
            }
        }
        best
    };
    let (far, _) = farthest(start);
    farthest(far).1
}

/// True if `tree` displays `sub`: restricting `tree` to `sub`'s leaf set
/// yields a tree topologically equal to `sub`. Requires `sub`'s taxa to be
/// a subset of `tree`'s (returns false otherwise).
pub fn displays(tree: &Tree, sub: &Tree) -> bool {
    if !sub.taxa().is_subset(tree.taxa()) {
        return false;
    }
    topo_eq(&restrict(tree, sub.taxa()), sub)
}

/// True if the two trees are compatible: their restrictions to the shared
/// taxa are topologically equal (then a common refinement displaying both
/// exists, per the stand definition in the paper §II-A).
pub fn compatible(a: &Tree, b: &Tree) -> bool {
    let common = a.taxa().intersection(b.taxa());
    topo_eq(&restrict(a, &common), &restrict(b, &common))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxa::TaxonId;

    fn t(i: u32) -> TaxonId {
        TaxonId(i)
    }

    /// Caterpillar on taxa 0..n: ((((0,1),2),3),...).
    fn caterpillar(universe: usize, n: u32) -> Tree {
        assert!(n >= 3);
        let mut tree = Tree::three_leaf(universe, t(0), t(1), t(2));
        for i in 3..n {
            let prev = tree.leaf(t(i - 1)).unwrap();
            let e = tree.adjacent_edges(prev)[0];
            tree.insert_leaf_on_edge(t(i), e);
        }
        tree
    }

    #[test]
    fn restrict_to_all_is_identity() {
        let tree = caterpillar(8, 6);
        let r = restrict(&tree, tree.taxa());
        assert!(topo_eq(&tree, &r));
    }

    #[test]
    fn restrict_small_cases() {
        let tree = caterpillar(8, 6);
        let empty = restrict(&tree, &BitSet::new(8));
        assert_eq!(empty.node_count(), 0);
        let one = restrict(&tree, &BitSet::from_iter(8, [3]));
        assert_eq!(one.leaf_count(), 1);
        let two = restrict(&tree, &BitSet::from_iter(8, [1, 4]));
        assert_eq!(two.leaf_count(), 2);
        assert_eq!(two.edge_count(), 1);
    }

    #[test]
    fn restrict_keeps_binary_shape() {
        let tree = caterpillar(16, 10);
        let r = restrict(&tree, &BitSet::from_iter(16, [0, 2, 5, 7, 9]));
        r.validate().unwrap();
        assert!(r.is_binary_unrooted());
        assert_eq!(r.leaf_count(), 5);
    }

    #[test]
    fn restrict_ignores_absent_taxa() {
        let tree = caterpillar(16, 5);
        // Taxa 10..12 are not in the tree at all.
        let r = restrict(&tree, &BitSet::from_iter(16, [0, 1, 10, 11]));
        assert_eq!(r.leaf_count(), 2);
    }

    #[test]
    fn restriction_commutes_with_intersection() {
        let tree = caterpillar(16, 9);
        let s1 = BitSet::from_iter(16, [0, 1, 2, 4, 6, 8]);
        let s2 = BitSet::from_iter(16, [1, 2, 3, 4, 8]);
        let lhs = restrict(&restrict(&tree, &s1), &s2);
        let rhs = restrict(&tree, &s1.intersection(&s2));
        assert!(topo_eq(&lhs, &rhs));
    }

    #[test]
    fn caterpillar_restriction_topology() {
        // Restricting a caterpillar keeps the caterpillar order.
        let tree = caterpillar(8, 6);
        let r = restrict(&tree, &BitSet::from_iter(8, [0, 2, 4, 5]));
        let expect = {
            let mut q = Tree::three_leaf(8, t(0), t(2), t(4));
            let l4 = q.leaf(t(4)).unwrap();
            let e = q.adjacent_edges(l4)[0];
            q.insert_leaf_on_edge(t(5), e);
            q
        };
        assert!(topo_eq(&r, &expect));
    }

    #[test]
    fn displays_self_and_subtrees() {
        let tree = caterpillar(8, 7);
        assert!(displays(&tree, &tree));
        let sub = restrict(&tree, &BitSet::from_iter(8, [1, 3, 4, 6]));
        assert!(displays(&tree, &sub));
    }

    #[test]
    fn displays_rejects_wrong_topology() {
        let tree = caterpillar(8, 5); // ((0,1),2),3),4 order
                                      // Quartet (0,2)|(1,3) is NOT displayed by the caterpillar.
        let mut q = Tree::three_leaf(8, t(0), t(2), t(1));
        let l1 = q.leaf(t(1)).unwrap();
        let e = q.adjacent_edges(l1)[0];
        q.insert_leaf_on_edge(t(3), e);
        assert!(!displays(&tree, &q));
    }

    #[test]
    fn displays_requires_taxon_subset() {
        let tree = caterpillar(16, 5);
        let other = caterpillar(16, 8); // has taxa the tree lacks
        assert!(!displays(&tree, &other));
    }

    #[test]
    fn compatibility_of_disjoint_trees() {
        let a = Tree::three_leaf(16, t(0), t(1), t(2));
        let b = Tree::three_leaf(16, t(3), t(4), t(5));
        assert!(compatible(&a, &b)); // no common taxa → trivially compatible
    }

    #[test]
    fn path_between_endpoints() {
        let tree = caterpillar(8, 6);
        let a = tree.leaf(t(0)).unwrap();
        let b = tree.leaf(t(5)).unwrap();
        let path = path_between(&tree, a, b);
        assert_eq!(path.len(), 5); // pendant + 3 backbone + pendant
        assert!(path_between(&tree, a, a).is_empty());
        // Path endpoints are incident to first/last edges.
        let (x, y) = tree.endpoints(path[0]);
        assert!(x == a || y == a);
        // Consecutive edges share a node.
        for w in path.windows(2) {
            let (a1, b1) = tree.endpoints(w[0]);
            let (a2, b2) = tree.endpoints(w[1]);
            assert!(a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2);
        }
    }

    #[test]
    fn diameter_of_known_shapes() {
        // Caterpillar on 6 leaves: the extreme leaves are 5 edges apart.
        assert_eq!(diameter(&caterpillar(8, 6)), 5);
        // Balanced quartet: every leaf pair is 2 or 3 edges apart.
        let (_, trees) = crate::newick::parse_forest(["((A,B),(C,D));"]).unwrap();
        assert_eq!(diameter(&trees[0]), 3);
        let two = Tree::two_leaf(4, t(0), t(1));
        assert_eq!(diameter(&two), 1);
    }

    #[test]
    fn compatibility_detects_conflict() {
        let cat = caterpillar(8, 5);
        let mut q = Tree::three_leaf(8, t(0), t(2), t(1));
        let l1 = q.leaf(t(1)).unwrap();
        let e = q.adjacent_edges(l1)[0];
        q.insert_leaf_on_edge(t(3), e); // (0,2)|(1,3) conflicts with caterpillar
        assert!(!compatible(&cat, &q));
        let consistent = restrict(&cat, &BitSet::from_iter(8, [0, 1, 3, 4]));
        assert!(compatible(&cat, &consistent));
    }
}
