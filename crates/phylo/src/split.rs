//! Splits (bipartitions) of taxon sets induced by tree edges.
//!
//! Removing an edge from an unrooted tree bipartitions its leaf set; the
//! collection of non-trivial splits determines the topology uniquely
//! (Buneman). We canonicalize a split as the side **not** containing the
//! smallest taxon of the tree's leaf set, so splits compare and hash cheaply.

use crate::bitset::BitSet;
use crate::tree::{EdgeId, Tree};

/// A canonical split of a taxon set: the stored side excludes the reference
/// (smallest) taxon of the leaf set it was computed over.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Split {
    side: BitSet,
}

impl Split {
    /// Canonicalizes `side` as a split of `taxa` (the full leaf set).
    ///
    /// Panics in debug builds if `side` is not a proper subset relationship
    /// candidate (same universe required).
    pub fn canonical(mut side: BitSet, taxa: &BitSet) -> Split {
        debug_assert_eq!(side.universe(), taxa.universe());
        debug_assert!(side.is_subset(taxa));
        if let Some(reference) = taxa.min_member() {
            if side.contains(reference) {
                // Flip to the complementary side within `taxa`.
                let mut flipped = taxa.clone();
                flipped.difference_with(&side);
                side = flipped;
            }
        }
        Split { side }
    }

    /// Writes the canonical side of `side` (w.r.t. the leaf set `taxa`)
    /// into `out` without allocating: the canonical side is the one not
    /// containing the reference (smallest) taxon. All three sets must share
    /// one universe.
    pub fn canonicalize_into(side: &BitSet, taxa: &BitSet, out: &mut BitSet) {
        debug_assert_eq!(side.universe(), taxa.universe());
        debug_assert!(side.is_subset(taxa));
        match taxa.min_member() {
            Some(reference) if side.contains(reference) => {
                out.copy_from(taxa);
                out.difference_with(side);
            }
            _ => out.copy_from(side),
        }
    }

    /// The canonical side (never contains the reference taxon).
    pub fn side(&self) -> &BitSet {
        &self.side
    }

    /// Size of the canonical side.
    pub fn side_count(&self) -> usize {
        self.side.count()
    }

    /// True if this split separates fewer than two taxa on one side, i.e.
    /// it is induced by a pendant edge and carries no topological signal.
    /// `taxa` must be the leaf set the split was canonicalized over.
    pub fn is_trivial(&self, taxa: &BitSet) -> bool {
        let k = self.side.count();
        k <= 1 || k + 1 >= taxa.count()
    }

    /// Split compatibility: two splits of the same taxon set are compatible
    /// iff at least one of the four side intersections is empty. A set of
    /// pairwise compatible splits is realizable by a single tree.
    pub fn compatible_with(&self, other: &Split, taxa: &BitSet) -> bool {
        let a = &self.side;
        let b = &other.side;
        if a.is_disjoint(b) {
            return true; // A1 ∩ B1 = ∅
        }
        if a.is_subset(b) || b.is_subset(a) {
            return true; // A1 ∩ B2 = ∅ or A2 ∩ B1 = ∅
        }
        // A2 ∩ B2 = ∅ ⇔ A1 ∪ B1 ⊇ taxa.
        let mut union = a.union(b);
        union.intersect_with(taxa);
        union == *taxa
    }
}

/// Dense identifier of an interned [`Split`] within one [`SplitArena`].
///
/// Two ids from the *same* arena are equal iff the splits are equal, so the
/// admissibility test `map[e] == b̂(t)` collapses to a `u32` compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SplitId(pub u32);

impl SplitId {
    /// Sentinel for "no split" (dead edge slot, taxon without a target).
    /// Kept out of `Option` so edge-indexed maps stay flat `u32` vectors.
    pub const NONE: SplitId = SplitId(u32::MAX);

    /// True if this is the [`SplitId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == SplitId::NONE
    }
}

/// An interning arena for canonical splits with LIFO checkpoint/rollback.
///
/// The Gentrius search builds projections along a DFS path and undoes them
/// in strict LIFO order; the arena mirrors that discipline: interning while
/// descending, [`SplitArena::rollback`] to a [`SplitArena::checkpoint`]
/// while backtracking. Interning an already-present split is allocation-free
/// (hash-bucket probe comparing stored words), so the steady state of the
/// explore loop allocates nothing per node.
#[derive(Clone)]
pub struct SplitArena {
    splits: Vec<Split>,
    hashes: Vec<u64>,
    /// Hash → ids with that hash, in increasing id order (so rollback pops).
    buckets: std::collections::HashMap<u64, Vec<u32>>,
    /// Scratch for canonicalization; same universe as all interned sides.
    canon: BitSet,
}

impl SplitArena {
    /// Creates an empty arena over the given taxon universe.
    pub fn new(universe: usize) -> Self {
        SplitArena {
            splits: Vec::new(),
            hashes: Vec::new(),
            buckets: std::collections::HashMap::new(),
            canon: BitSet::new(universe),
        }
    }

    /// Number of interned splits.
    pub fn len(&self) -> usize {
        self.splits.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }

    /// The split behind an id, if `id` is live in this arena.
    pub fn get(&self, id: SplitId) -> Option<&Split> {
        self.splits.get(id.0 as usize)
    }

    /// Canonicalizes `side` as a split of `taxa` and interns it, returning
    /// the id of the (possibly pre-existing) canonical split. Only
    /// allocates when the split is genuinely new to the arena.
    pub fn intern_side(&mut self, side: &BitSet, taxa: &BitSet) -> SplitId {
        Split::canonicalize_into(side, taxa, &mut self.canon);
        let hash = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.canon.hash(&mut h);
            h.finish()
        };
        if let Some(ids) = self.buckets.get(&hash) {
            for &id in ids {
                if *self.splits[id as usize].side() == self.canon {
                    return SplitId(id);
                }
            }
        }
        let id = self.splits.len() as u32;
        self.splits.push(Split {
            side: self.canon.clone(),
        });
        self.hashes.push(hash);
        self.buckets.entry(hash).or_default().push(id);
        SplitId(id)
    }

    /// A mark capturing the current arena size; pass to
    /// [`SplitArena::rollback`] to drop everything interned after it.
    pub fn checkpoint(&self) -> usize {
        self.splits.len()
    }

    /// Drops every split interned after `mark` (LIFO discipline: ids at or
    /// beyond the mark must no longer be referenced by live maps).
    pub fn rollback(&mut self, mark: usize) {
        while self.splits.len() > mark {
            self.splits.pop();
            let id = self.splits.len() as u32;
            // xlint: allow(panic-freedom) — hashes is maintained in lockstep with splits; divergence means the arena is corrupt
            let hash = self.hashes.pop().expect("arena hash list out of sync");
            let mut emptied = false;
            if let Some(ids) = self.buckets.get_mut(&hash) {
                debug_assert_eq!(ids.last().copied(), Some(id), "bucket not LIFO");
                ids.pop();
                emptied = ids.is_empty();
            }
            if emptied {
                self.buckets.remove(&hash);
            }
        }
    }
}

/// Computes `(edge, side)` for every live edge of `tree`: the side is the
/// leaf set on the `b`-endpoint side... more precisely the side *away* from
/// the traversal root (an arbitrary but deterministic leaf).
///
/// The returned sides are raw (not canonicalized); pair with
/// [`Split::canonical`] as needed.
pub fn edge_sides(tree: &Tree) -> Vec<(EdgeId, BitSet)> {
    let mut out = Vec::with_capacity(tree.edge_count());
    let Some(root) = tree.any_leaf() else {
        return out;
    };
    let order = tree.preorder(root);
    // Fold taxa bottom-up: in reverse preorder every node appears after all
    // of its children, so one pass accumulates each subtree's taxa and
    // records the side hanging below each parent edge.
    let mut sides: Vec<Option<BitSet>> = vec![None; tree.edge_id_bound()];
    let mut acc: Vec<BitSet> = (0..tree.node_id_bound())
        .map(|_| BitSet::new(tree.universe()))
        .collect();
    for &(v, _) in &order {
        if let Some(t) = tree.taxon(v) {
            acc[v.index()].insert(t.index());
        }
    }
    for &(v, pe) in order.iter().rev() {
        if let Some(pe) = pe {
            let parent = tree.opposite(pe, v);
            let child_set = acc[v.index()].clone();
            acc[parent.index()].union_with(&child_set);
            sides[pe.index()] = Some(child_set);
        }
    }
    for e in tree.edges() {
        let side = sides[e.index()]
            .take()
            .expect("edge not covered by traversal");
        out.push((e, side));
    }
    out
}

/// The set of canonical non-trivial splits of `tree` — its topological
/// fingerprint. Two trees on the same leaf set are isomorphic iff these
/// sets are equal.
pub fn nontrivial_splits(tree: &Tree) -> Vec<Split> {
    let taxa = tree.taxa();
    let mut v: Vec<Split> = edge_sides(tree)
        .into_iter()
        .map(|(_, side)| Split::canonical(side, taxa))
        .filter(|s| !s.is_trivial(taxa))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Topological equality of two unrooted trees: same leaf set and same
/// non-trivial split set.
pub fn topo_eq(a: &Tree, b: &Tree) -> bool {
    a.taxa() == b.taxa() && nontrivial_splits(a) == nontrivial_splits(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxa::TaxonId;

    fn t(i: u32) -> TaxonId {
        TaxonId(i)
    }

    /// Builds the quartet ((0,1),(2,3)) programmatically.
    fn quartet_01_23(universe: usize) -> Tree {
        let mut tree = Tree::three_leaf(universe, t(0), t(1), t(2));
        // Insert taxon 3 on the pendant edge of taxon 2 → (0,1)|(2,3).
        let leaf2 = tree.leaf(t(2)).unwrap();
        let e = tree.adjacent_edges(leaf2)[0];
        tree.insert_leaf_on_edge(t(3), e);
        tree
    }

    #[test]
    fn edge_sides_partition_taxa() {
        let tree = quartet_01_23(8);
        for (e, side) in edge_sides(&tree) {
            assert!(!side.is_empty(), "{e:?} has empty side");
            assert!(side.is_subset(tree.taxa()));
            assert!(side != *tree.taxa(), "{e:?} side covers all taxa");
        }
        assert_eq!(edge_sides(&tree).len(), tree.edge_count());
    }

    #[test]
    fn quartet_has_one_nontrivial_split() {
        let tree = quartet_01_23(8);
        let splits = nontrivial_splits(&tree);
        assert_eq!(splits.len(), 1);
        // Canonical side excludes taxon 0 → must be {2,3}.
        assert_eq!(splits[0].side(), &BitSet::from_iter(8, [2, 3]));
    }

    #[test]
    fn three_leaf_tree_has_no_nontrivial_splits() {
        let tree = Tree::three_leaf(4, t(0), t(1), t(2));
        assert!(nontrivial_splits(&tree).is_empty());
    }

    #[test]
    fn canonicalization_flips_reference_side() {
        let taxa = BitSet::from_iter(8, [0, 1, 2, 3]);
        let s1 = Split::canonical(BitSet::from_iter(8, [0, 1]), &taxa);
        let s2 = Split::canonical(BitSet::from_iter(8, [2, 3]), &taxa);
        assert_eq!(s1, s2);
        assert!(!s1.side().contains(0));
    }

    #[test]
    fn compatibility() {
        let taxa = BitSet::from_iter(8, [0, 1, 2, 3, 4]);
        let ab = Split::canonical(BitSet::from_iter(8, [1, 2]), &taxa);
        let cd = Split::canonical(BitSet::from_iter(8, [3, 4]), &taxa);
        let ac = Split::canonical(BitSet::from_iter(8, [1, 3]), &taxa);
        assert!(ab.compatible_with(&cd, &taxa));
        assert!(!ab.compatible_with(&ac, &taxa));
        // Nested splits are compatible.
        let abc = Split::canonical(BitSet::from_iter(8, [1, 2, 3]), &taxa);
        assert!(ab.compatible_with(&abc, &taxa));
    }

    #[test]
    fn topo_eq_distinguishes_quartets() {
        // ((0,1),(2,3)) vs ((0,2),(1,3))
        let q1 = quartet_01_23(8);
        let mut q2 = Tree::three_leaf(8, t(0), t(1), t(2));
        let leaf1 = q2.leaf(t(1)).unwrap();
        let e = q2.adjacent_edges(leaf1)[0];
        q2.insert_leaf_on_edge(t(3), e); // → (0,2)|(1,3)
        assert!(!topo_eq(&q1, &q2));
        assert!(topo_eq(&q1, &q1.clone()));
    }

    #[test]
    fn topo_eq_requires_same_taxa() {
        let a = Tree::three_leaf(8, t(0), t(1), t(2));
        let b = Tree::three_leaf(8, t(0), t(1), t(3));
        assert!(!topo_eq(&a, &b));
    }

    #[test]
    fn canonicalize_into_matches_canonical() {
        let taxa = BitSet::from_iter(8, [0, 1, 2, 3, 5]);
        for side in [
            BitSet::from_iter(8, [0, 1]),
            BitSet::from_iter(8, [2, 3]),
            BitSet::from_iter(8, [0, 2, 5]),
            BitSet::new(8),
        ] {
            let mut out = BitSet::new(8);
            Split::canonicalize_into(&side, &taxa, &mut out);
            assert_eq!(&out, Split::canonical(side, &taxa).side());
        }
    }

    #[test]
    fn arena_interns_equal_splits_to_one_id() {
        let taxa = BitSet::from_iter(8, [0, 1, 2, 3]);
        let mut arena = SplitArena::new(8);
        let a = arena.intern_side(&BitSet::from_iter(8, [0, 1]), &taxa);
        let b = arena.intern_side(&BitSet::from_iter(8, [2, 3]), &taxa); // complement
        let c = arena.intern_side(&BitSet::from_iter(8, [1, 2]), &taxa);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(
            arena.get(a).unwrap().side(),
            &BitSet::from_iter(8, [2, 3]) // canonical side excludes taxon 0
        );
        assert!(arena.get(SplitId::NONE).is_none());
    }

    #[test]
    fn arena_checkpoint_rollback_restores_ids() {
        let taxa = BitSet::from_iter(16, [0, 1, 2, 3, 4, 5]);
        let mut arena = SplitArena::new(16);
        let a = arena.intern_side(&BitSet::from_iter(16, [1, 2]), &taxa);
        let mark = arena.checkpoint();
        let b = arena.intern_side(&BitSet::from_iter(16, [3, 4]), &taxa);
        let c = arena.intern_side(&BitSet::from_iter(16, [1, 5]), &taxa);
        assert_ne!(b, c);
        arena.rollback(mark);
        assert_eq!(arena.len(), 1);
        // Old ids survive, and re-interning after rollback reproduces the
        // same id assignment (the determinism the undo stack relies on).
        assert_eq!(arena.intern_side(&BitSet::from_iter(16, [1, 2]), &taxa), a);
        assert_eq!(arena.intern_side(&BitSet::from_iter(16, [3, 4]), &taxa), b);
        assert_eq!(arena.intern_side(&BitSet::from_iter(16, [1, 5]), &taxa), c);
    }
}
