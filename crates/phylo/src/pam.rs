//! Presence–absence matrices (PAM) over species × loci.
//!
//! A PAM records, for each taxon and each locus, whether sequence data is
//! available (`1`) or missing (`0`). Gentrius's second input mode takes a
//! complete species tree plus a PAM and derives the constraint trees as the
//! *induced* per-locus subtrees (paper §II-A).

use crate::bitset::BitSet;
use crate::ops::restrict;
use crate::taxa::{TaxonId, TaxonSet};
use crate::tree::Tree;
use std::fmt;

/// A binary presence–absence matrix: `loci` column sets over a fixed taxon
/// universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pam {
    universe: usize,
    /// `columns[l]` is the set of taxa with data for locus `l`.
    columns: Vec<BitSet>,
}

/// Problems detected by [`Pam::validate_for_inference`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PamError {
    /// A locus covers fewer than four taxa, so its induced tree carries no
    /// topological constraint (the paper's instances use informative loci).
    UninformativeLocus(usize),
    /// Some taxon has no data in any locus — it could be attached anywhere,
    /// making the stand trivially infinite-like (every position compatible).
    UncoveredTaxon(usize),
    /// The matrix has no loci at all.
    Empty,
}

impl fmt::Display for PamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PamError::UninformativeLocus(l) => {
                write!(f, "locus {l} covers fewer than 4 taxa")
            }
            PamError::UncoveredTaxon(t) => write!(f, "taxon {t} has no data in any locus"),
            PamError::Empty => write!(f, "PAM has no loci"),
        }
    }
}

impl std::error::Error for PamError {}

impl Pam {
    /// Creates an all-absent PAM with `loci` columns over `universe` taxa.
    pub fn new(universe: usize, loci: usize) -> Self {
        Pam {
            universe,
            columns: vec![BitSet::new(universe); loci],
        }
    }

    /// Builds a PAM from explicit per-locus taxon sets.
    pub fn from_columns(universe: usize, columns: Vec<BitSet>) -> Self {
        debug_assert!(columns.iter().all(|c| c.universe() == universe));
        Pam { universe, columns }
    }

    /// The taxon universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of loci (columns).
    pub fn loci(&self) -> usize {
        self.columns.len()
    }

    /// Marks taxon `t` present for locus `l`.
    pub fn set(&mut self, t: TaxonId, l: usize, present: bool) {
        if present {
            self.columns[l].insert(t.index());
        } else {
            self.columns[l].remove(t.index());
        }
    }

    /// True if taxon `t` has data for locus `l`.
    pub fn get(&self, t: TaxonId, l: usize) -> bool {
        self.columns[l].contains(t.index())
    }

    /// The taxon set of locus `l`.
    pub fn column(&self, l: usize) -> &BitSet {
        &self.columns[l]
    }

    /// Iterates the locus columns.
    pub fn columns(&self) -> impl Iterator<Item = &BitSet> {
        self.columns.iter()
    }

    /// Taxa covered by at least one locus.
    pub fn covered_taxa(&self) -> BitSet {
        let mut s = BitSet::new(self.universe);
        for c in &self.columns {
            s.union_with(c);
        }
        s
    }

    /// Taxa present in *every* locus (*comprehensive* taxa). SUPERB-based
    /// tools require at least one; Gentrius does not (paper §I).
    pub fn comprehensive_taxa(&self) -> BitSet {
        let mut s = BitSet::full(self.universe);
        for c in &self.columns {
            s.intersect_with(c);
        }
        s
    }

    /// Fraction of `0` entries over the full matrix.
    pub fn missing_fraction(&self) -> f64 {
        if self.universe == 0 || self.columns.is_empty() {
            return 0.0;
        }
        let present: usize = self.columns.iter().map(|c| c.count()).sum();
        1.0 - present as f64 / (self.universe * self.columns.len()) as f64
    }

    /// Number of loci covering each taxon (indexed by taxon id).
    pub fn taxon_coverage(&self) -> Vec<usize> {
        let mut cov = vec![0usize; self.universe];
        for c in &self.columns {
            for t in c.iter() {
                cov[t] += 1;
            }
        }
        cov
    }

    /// True if the *locus overlap graph* — loci as vertices, an edge when
    /// two loci share at least `min_shared` taxa — is connected.
    ///
    /// A disconnected overlap graph means whole groups of loci impose no
    /// joint constraints, so the stand is (close to) a free product of the
    /// components and typically astronomically large; the generators use
    /// this as a structural sanity signal.
    pub fn overlap_graph_connected(&self, min_shared: usize) -> bool {
        let m = self.columns.len();
        if m <= 1 {
            return true;
        }
        let mut seen = vec![false; m];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reached = 1;
        while let Some(i) = stack.pop() {
            #[allow(clippy::needless_range_loop)] // index mirrors the locus id
            for j in 0..m {
                if !seen[j] && self.columns[i].intersection_count(&self.columns[j]) >= min_shared {
                    seen[j] = true;
                    reached += 1;
                    stack.push(j);
                }
            }
        }
        reached == m
    }

    /// Phylogenetic decisiveness test (Steel & Sanderson 2010): a coverage
    /// pattern is *decisive for unrooted trees* iff every set of four taxa
    /// is covered jointly by some locus. Decisiveness guarantees that the
    /// per-locus induced subtrees determine **every** binary tree uniquely
    /// — i.e. no stand ever has more than one tree, terraces cannot occur.
    /// (The converse is not true instance-wise: a particular tree's stand
    /// can be a singleton without the PAM being decisive.)
    ///
    /// Cost is `O(n⁴ · m/64)`; intended for the moderate matrices this
    /// workspace generates.
    pub fn is_decisive(&self) -> bool {
        let n = self.universe;
        if n < 4 {
            return true;
        }
        // For each taxon, the set of loci containing it.
        let m = self.columns.len();
        let mut loci_of: Vec<BitSet> = vec![BitSet::new(m); n];
        for (l, c) in self.columns.iter().enumerate() {
            for t in c.iter() {
                loci_of[t].insert(l);
            }
        }
        for a in 0..n {
            for b in a + 1..n {
                let ab = loci_of[a].intersection(&loci_of[b]);
                if ab.is_empty() {
                    return false;
                }
                for c in b + 1..n {
                    let abc = ab.intersection(&loci_of[c]);
                    if abc.is_empty() {
                        return false;
                    }
                    if loci_of[c + 1..n].iter().any(|ld| abc.is_disjoint(ld)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Checks the matrix is usable for stand inference.
    pub fn validate_for_inference(&self) -> Result<(), PamError> {
        if self.columns.is_empty() {
            return Err(PamError::Empty);
        }
        for (l, c) in self.columns.iter().enumerate() {
            if c.count() < 4 {
                return Err(PamError::UninformativeLocus(l));
            }
        }
        let covered = self.covered_taxa();
        for t in 0..self.universe {
            if !covered.contains(t) {
                return Err(PamError::UncoveredTaxon(t));
            }
        }
        Ok(())
    }

    /// Derives the per-locus induced subtrees of a complete species tree:
    /// `tree|column(l)` for each locus `l` (Gentrius input mode 2).
    pub fn induced_subtrees(&self, tree: &Tree) -> Vec<Tree> {
        self.columns.iter().map(|c| restrict(tree, c)).collect()
    }

    /// Renders the matrix in the simple text format used by the CLI and the
    /// dataset files: one row per taxon, `0`/`1` per locus.
    pub fn to_text(&self, taxa: &TaxonSet) -> String {
        let mut s = String::new();
        for (id, name) in taxa.iter() {
            s.push_str(name);
            s.push(' ');
            for l in 0..self.loci() {
                s.push(if self.get(id, l) { '1' } else { '0' });
            }
            s.push('\n');
        }
        s
    }

    /// Parses the text format produced by [`Pam::to_text`], interning taxa.
    pub fn parse_text(input: &str, taxa: &mut TaxonSet) -> Result<Pam, String> {
        let mut rows: Vec<(TaxonId, Vec<bool>)> = Vec::new();
        let mut loci = None;
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, bits) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("line {}: expected '<taxon> <bits>'", lineno + 1))?;
            let bits = bits.trim();
            let row: Vec<bool> = bits
                .chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(format!("line {}: bad matrix char '{other}'", lineno + 1)),
                })
                .collect::<Result<_, _>>()?;
            match loci {
                None => loci = Some(row.len()),
                Some(l) if l != row.len() => {
                    return Err(format!(
                        "line {}: row has {} loci, expected {l}",
                        lineno + 1,
                        row.len()
                    ))
                }
                _ => {}
            }
            rows.push((taxa.intern(name), row));
        }
        let loci = loci.ok_or("empty PAM")?;
        let mut pam = Pam::new(taxa.len(), loci);
        for (t, row) in rows {
            for (l, &b) in row.iter().enumerate() {
                pam.set(t, l, b);
            }
        }
        Ok(pam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse_forest;
    use crate::ops::displays;

    #[test]
    fn set_get_and_stats() {
        let mut pam = Pam::new(4, 2);
        pam.set(TaxonId(0), 0, true);
        pam.set(TaxonId(1), 0, true);
        pam.set(TaxonId(0), 1, true);
        assert!(pam.get(TaxonId(0), 0));
        assert!(!pam.get(TaxonId(2), 0));
        assert_eq!(pam.covered_taxa().count(), 2);
        assert_eq!(pam.comprehensive_taxa().count(), 1);
        assert!((pam.missing_fraction() - (1.0 - 3.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let mut pam = Pam::new(5, 1);
        assert_eq!(
            pam.validate_for_inference(),
            Err(PamError::UninformativeLocus(0))
        );
        for t in 0..4 {
            pam.set(TaxonId(t), 0, true);
        }
        assert_eq!(
            pam.validate_for_inference(),
            Err(PamError::UncoveredTaxon(4))
        );
        pam.set(TaxonId(4), 0, true);
        assert_eq!(pam.validate_for_inference(), Ok(()));
        assert_eq!(
            Pam::new(3, 0).validate_for_inference(),
            Err(PamError::Empty)
        );
    }

    #[test]
    fn induced_subtrees_are_displayed() {
        let (_taxa, trees) = parse_forest(["((A,B),((C,D),(E,F)));"]).unwrap();
        let tree = &trees[0];
        let mut pam = Pam::new(6, 2);
        for t in [0, 1, 2, 3] {
            pam.set(TaxonId(t), 0, true);
        }
        for t in [2, 3, 4, 5] {
            pam.set(TaxonId(t), 1, true);
        }
        let subs = pam.induced_subtrees(tree);
        assert_eq!(subs.len(), 2);
        for s in &subs {
            assert_eq!(s.leaf_count(), 4);
            assert!(displays(tree, s));
        }
    }

    #[test]
    fn text_roundtrip() {
        let mut taxa = TaxonSet::new();
        // Build via parse to exercise interning.
        let text = "A 101\nB 011\nC 110\nD 111\n";
        let pam = Pam::parse_text(text, &mut taxa).unwrap();
        assert_eq!(taxa.len(), 4);
        assert_eq!(pam.loci(), 3);
        assert!(pam.get(TaxonId(0), 0));
        assert!(!pam.get(TaxonId(0), 1));
        let out = pam.to_text(&taxa);
        let mut taxa2 = TaxonSet::new();
        let pam2 = Pam::parse_text(&out, &mut taxa2).unwrap();
        assert_eq!(pam, pam2);
    }

    #[test]
    fn coverage_counts() {
        let mut pam = Pam::new(3, 2);
        pam.set(TaxonId(0), 0, true);
        pam.set(TaxonId(0), 1, true);
        pam.set(TaxonId(1), 1, true);
        assert_eq!(pam.taxon_coverage(), vec![2, 1, 0]);
    }

    #[test]
    fn overlap_graph_connectivity() {
        // Loci {0,1,2} and {2,3,4} share taxon 2 → connected at
        // min_shared=1, disconnected at min_shared=2.
        let mut pam = Pam::new(6, 2);
        for t in [0, 1, 2] {
            pam.set(TaxonId(t), 0, true);
        }
        for t in [2, 3, 4] {
            pam.set(TaxonId(t), 1, true);
        }
        assert!(pam.overlap_graph_connected(1));
        assert!(!pam.overlap_graph_connected(2));
        // Single-locus and empty matrices are trivially connected.
        assert!(Pam::new(4, 1).overlap_graph_connected(1));
        assert!(Pam::new(4, 0).overlap_graph_connected(1));
        // Fully disjoint loci are disconnected.
        let mut dis = Pam::new(8, 2);
        for t in [0, 1, 2, 3] {
            dis.set(TaxonId(t), 0, true);
        }
        for t in [4, 5, 6, 7] {
            dis.set(TaxonId(t), 1, true);
        }
        assert!(!dis.overlap_graph_connected(1));
    }

    #[test]
    fn decisiveness_small_cases() {
        // A single all-covering locus is decisive.
        let mut pam = Pam::new(5, 1);
        for t in 0..5 {
            pam.set(TaxonId(t), 0, true);
        }
        assert!(pam.is_decisive());
        // Remove one taxon from the only locus: the quadruples through it
        // are uncovered.
        pam.set(TaxonId(4), 0, false);
        assert!(!pam.is_decisive());
        // Two loci overlapping in 3 taxa: quadruples mixing the private
        // taxa of each locus are uncovered.
        let mut two = Pam::new(6, 2);
        for t in [0, 1, 2, 3] {
            two.set(TaxonId(t), 0, true);
        }
        for t in [1, 2, 3, 4, 5] {
            two.set(TaxonId(t), 1, true);
        }
        assert!(!two.is_decisive());
        // Tiny universes are trivially decisive.
        assert!(Pam::new(3, 0).is_decisive());
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let mut taxa = TaxonSet::new();
        assert!(Pam::parse_text("A 10\nB 101\n", &mut taxa).is_err());
        assert!(Pam::parse_text("A 1x\n", &mut taxa).is_err());
        assert!(Pam::parse_text("", &mut taxa).is_err());
    }
}
