//! phylo2vec-style integer-vector encoding of binary unrooted trees.
//!
//! A binary unrooted tree on taxa `t0 < t1 < … < t_{n-1}` is written as the
//! integer vector of its *canonical insertion trace*: starting from the
//! unique tree on `{t0, t1}`, taxon `t_i` (`i ≥ 2`) is inserted on edge
//! `code[i-2]` of the partial tree, where edges are numbered in allocation
//! order (the order [`Tree::insert_leaf_on_edge`] assigns ids on a fresh
//! arena — a partial tree on `k` leaves has exactly the contiguous edge ids
//! `0 .. 2k-3`). The trace is unique, so `encode ∘ decode ≡ id` on codes
//! and `decode ∘ encode` reproduces the topology exactly.
//!
//! Properties the stand container relies on (per the phylo2vec paper):
//!
//! * **O(n) integers per tree** instead of an O(n·label) Newick string;
//! * element `code[i]` is bounded by `2i+1`, so varints stay at one byte
//!   for all but the deepest insertions;
//! * trees that share the insertion history of their first `k` taxa share
//!   the first `k-2` vector entries — sibling stand trees emitted by the
//!   depth-first search differ only in a short suffix, which the container
//!   exploits with prefix-delta compression;
//! * the vector is trivially hashable, giving a cheap cross-shard
//!   topology key.

use crate::bitset::BitSet;
use crate::taxa::TaxonId;
use crate::tree::{EdgeId, NodeId, Tree};

/// Errors from encoding or decoding a tree vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum P2vError {
    /// The tree is not binary unrooted (required for `n ≥ 3` leaves).
    NotBinary,
    /// `code` has the wrong length for the taxon list (`n-2` entries).
    LengthMismatch {
        /// Number of taxa supplied.
        taxa: usize,
        /// Number of code entries supplied.
        code: usize,
    },
    /// A code entry addresses an edge beyond the partial tree.
    OutOfRange {
        /// Index into the code vector.
        index: usize,
        /// The offending value.
        value: u32,
        /// Exclusive bound (`2·index + 1`).
        bound: u32,
    },
    /// The taxon list is not strictly ascending.
    TaxaNotSorted,
    /// A taxon id is outside the declared universe.
    TaxonOutOfUniverse {
        /// The offending taxon id.
        taxon: u32,
        /// The universe size.
        universe: usize,
    },
    /// An internal invariant failed (defensive; indicates a bug).
    Internal(&'static str),
}

impl std::fmt::Display for P2vError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            P2vError::NotBinary => write!(f, "tree is not binary unrooted"),
            P2vError::LengthMismatch { taxa, code } => {
                write!(
                    f,
                    "{taxa} taxa need {} code entries, got {code}",
                    taxa.saturating_sub(2)
                )
            }
            P2vError::OutOfRange {
                index,
                value,
                bound,
            } => write!(f, "code[{index}] = {value} out of range (< {bound})"),
            P2vError::TaxaNotSorted => write!(f, "taxon list is not strictly ascending"),
            P2vError::TaxonOutOfUniverse { taxon, universe } => {
                write!(f, "taxon {taxon} outside universe of {universe}")
            }
            P2vError::Internal(m) => write!(f, "internal phylo2vec error: {m}"),
        }
    }
}

impl std::error::Error for P2vError {}

/// A tree as its present-taxa list (strictly ascending) plus the canonical
/// insertion-trace code (`taxa.len().saturating_sub(2)` entries).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TreeVector {
    /// Taxa present in the tree, ascending.
    pub taxa: Vec<TaxonId>,
    /// Edge index chosen for each taxon from the third onward.
    pub code: Vec<u32>,
}

impl TreeVector {
    /// Rebuilds the tree over a universe of `universe` taxa.
    pub fn decode(&self, universe: usize) -> Result<Tree, P2vError> {
        decode(universe, &self.taxa, &self.code)
    }
}

/// Encodes one tree (allocates fresh scratch; use [`Encoder`] when encoding
/// many trees in a row).
pub fn encode(tree: &Tree) -> Result<TreeVector, P2vError> {
    Encoder::new().encode(tree)
}

/// Rebuilds a tree from its taxon list and insertion-trace code.
///
/// `taxa` must be strictly ascending and within `universe`; `code` must
/// have `taxa.len().saturating_sub(2)` entries with `code[i] < 2i + 1`.
pub fn decode(universe: usize, taxa: &[TaxonId], code: &[u32]) -> Result<Tree, P2vError> {
    for w in taxa.windows(2) {
        if w[0] >= w[1] {
            return Err(P2vError::TaxaNotSorted);
        }
    }
    if let Some(t) = taxa.iter().find(|t| t.index() >= universe) {
        return Err(P2vError::TaxonOutOfUniverse {
            taxon: t.0,
            universe,
        });
    }
    let n = taxa.len();
    if code.len() != n.saturating_sub(2) {
        return Err(P2vError::LengthMismatch {
            taxa: n,
            code: code.len(),
        });
    }
    match n {
        0 => return Ok(Tree::new(universe)),
        1 => {
            let mut t = Tree::new(universe);
            t.add_node(Some(taxa[0]));
            return Ok(t);
        }
        _ => {}
    }
    let mut tree = Tree::two_leaf(universe, taxa[0], taxa[1]);
    for (j, (&c, &t)) in code.iter().zip(taxa.iter().skip(2)).enumerate() {
        // The partial tree has j + 2 leaves and therefore 2(j+2) - 3 =
        // 2j + 1 edges, with contiguous ids (fresh arena, no removals).
        // arith: node/edge ids are u32-backed, so a decodable tree has
        // fewer than `u32::MAX / 2` leaves; the assert pins the cast.
        debug_assert!(j <= (u32::MAX as usize - 1) / 2);
        let bound = 2 * j as u32 + 1;
        if c >= bound {
            return Err(P2vError::OutOfRange {
                index: j,
                value: c,
                bound,
            });
        }
        tree.insert_leaf_on_edge(t, EdgeId(c));
    }
    Ok(tree)
}

/// Reusable-scratch encoder: amortizes the peel/rebuild buffers across many
/// [`Encoder::encode`] calls (the stand container encodes every emitted
/// tree on the worker hot path).
#[derive(Default)]
pub struct Encoder {
    /// Peel-phase adjacency lists indexed by node id (neighbor node ids).
    adj: Vec<Vec<u32>>,
    /// Attachment split recorded while peeling taxon `i` (index `i - 3`).
    splits: Vec<BitSet>,
    /// DFS scratch for the peel phase: `(node, parent)` pairs.
    stack: Vec<(u32, u32)>,
    /// Rebuild phase: taxa below each edge (away from the `t0` root leaf).
    below: Vec<BitSet>,
    /// Rebuild preorder buffers.
    order: Vec<(NodeId, Option<EdgeId>)>,
    pre_stack: Vec<(NodeId, Option<EdgeId>)>,
}

impl Encoder {
    /// A fresh encoder (buffers grow on first use).
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Encodes `tree` into its canonical [`TreeVector`].
    pub fn encode(&mut self, tree: &Tree) -> Result<TreeVector, P2vError> {
        let universe = tree.universe();
        // arith: taxon ids originate from the universe's u32-backed
        // `TaxonId`s, so the round-trip through `usize` cannot truncate.
        let taxa: Vec<TaxonId> = tree.taxa().iter().map(|t| TaxonId(t as u32)).collect();
        let n = taxa.len();
        if n <= 2 {
            return Ok(TreeVector {
                taxa,
                code: Vec::new(),
            });
        }
        if !tree.is_binary_unrooted() {
            return Err(P2vError::NotBinary);
        }

        // ------------------------------------------------------------------
        // Peel phase: remove taxa from highest to lowest on a scratch
        // adjacency copy. Removing leaf t_i and suppressing its neighbor
        // leaves T|{t0..t_{i-1}}; the two merged edges become the edge t_i
        // must be inserted on during the rebuild, identified by its split
        // (canonical side = the one not containing t0).
        // ------------------------------------------------------------------
        let nb = tree.node_id_bound();
        if self.adj.len() < nb {
            self.adj.resize(nb, Vec::new());
        }
        for a in self.adj.iter_mut() {
            a.clear();
        }
        for e in tree.edges() {
            let (a, b) = tree.endpoints(e);
            self.adj[a.index()].push(b.0);
            self.adj[b.index()].push(a.0);
        }
        while self.splits.len() < n - 3 {
            self.splits.push(BitSet::new(0));
        }
        for i in (3..n).rev() {
            let leaf = tree
                .leaf(taxa[i])
                .ok_or(P2vError::Internal("present taxon has no leaf"))?;
            let &[mid] = self.adj[leaf.index()].as_slice() else {
                return Err(P2vError::Internal("peeled leaf not degree 1"));
            };
            self.adj[mid as usize].retain(|&v| v != leaf.0);
            let &[x, y] = self.adj[mid as usize].as_slice() else {
                return Err(P2vError::Internal("peeled midpoint not degree 3"));
            };
            // Taxa on the x-side of the merged edge (DFS avoiding mid; the
            // peeled leaf is unreachable, so the set is over {t0..t_{i-1}}).
            let side = &mut self.splits[i - 3];
            if side.universe() != universe {
                *side = BitSet::new(universe);
            } else {
                side.clear();
            }
            self.stack.clear();
            self.stack.push((x, mid));
            let mut contains_t0 = false;
            while let Some((v, parent)) = self.stack.pop() {
                if let Some(t) = tree.taxon(NodeId(v)) {
                    side.insert(t.index());
                    contains_t0 |= t == taxa[0];
                }
                for &w in &self.adj[v as usize] {
                    if w != parent {
                        self.stack.push((w, v));
                    }
                }
            }
            if contains_t0 {
                // Flip to the complementary side within the remaining taxa
                // {t0..t_{i-1}} so every recorded split excludes t0.
                let mut flipped = BitSet::new(universe);
                for &t in taxa.iter().take(i) {
                    if !side.contains(t.index()) {
                        flipped.insert(t.index());
                    }
                }
                *side = flipped;
            }
            // Suppress mid: connect x and y directly.
            for &mut (a, b) in &mut [(x, y), (y, x)] {
                for v in self.adj[a as usize].iter_mut() {
                    if *v == mid {
                        *v = b;
                    }
                }
            }
            self.adj[mid as usize].clear();
        }

        // ------------------------------------------------------------------
        // Rebuild phase: replay the canonical insertion order, matching each
        // recorded split against the edges of the growing partial tree
        // (whose ids are contiguous, so the edge id *is* the code entry).
        // ------------------------------------------------------------------
        let mut code = vec![0u32; n - 2];
        let mut bt = Tree::two_leaf(universe, taxa[0], taxa[1]);
        bt.insert_leaf_on_edge(taxa[2], EdgeId(0));
        for i in 3..n {
            let root = bt
                .leaf(taxa[0])
                .ok_or(P2vError::Internal("rebuild lost the root leaf"))?;
            bt.preorder_into(root, &mut self.pre_stack, &mut self.order);
            let eb = bt.edge_id_bound();
            while self.below.len() < eb {
                self.below.push(BitSet::new(0));
            }
            for b in self.below.iter_mut().take(eb) {
                if b.universe() != universe {
                    *b = BitSet::new(universe);
                } else {
                    b.clear();
                }
            }
            // Reverse preorder: children are processed before their parent,
            // so each parent edge's below-set can union its children's.
            for idx in (0..self.order.len()).rev() {
                let (v, pe) = self.order[idx];
                let Some(pe) = pe else { continue };
                let mut acc = std::mem::replace(&mut self.below[pe.index()], BitSet::new(0));
                if let Some(t) = bt.taxon(v) {
                    acc.insert(t.index());
                }
                for &e in bt.adjacent_edges(v) {
                    if e != pe {
                        acc.union_with(&self.below[e.index()]);
                    }
                }
                self.below[pe.index()] = acc;
            }
            let want = &self.splits[i - 3];
            let found = bt.edges().find(|e| self.below[e.index()] == *want);
            let Some(edge) = found else {
                return Err(P2vError::Internal("attachment split not found"));
            };
            code[i - 2] = edge.0;
            bt.insert_leaf_on_edge(taxa[i], edge);
        }
        Ok(TreeVector { taxa, code })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_forest, to_newick};

    fn roundtrip(nwk: &str) {
        let (taxa, trees) = parse_forest([nwk]).unwrap();
        let tv = encode(&trees[0]).unwrap();
        let back = tv.decode(taxa.len()).unwrap();
        assert_eq!(
            to_newick(&back, &taxa),
            to_newick(&trees[0], &taxa),
            "code {:?}",
            tv.code
        );
    }

    #[test]
    fn tiny_trees_roundtrip() {
        roundtrip("(A,B);");
        roundtrip("((A,B),C);");
        roundtrip("((A,B),(C,D));");
        roundtrip("((A,C),(B,D));");
        roundtrip("((A,D),(B,C));");
    }

    #[test]
    fn caterpillar_and_balanced_roundtrip() {
        roundtrip("(((((A,B),C),D),E),F);");
        roundtrip("(((A,B),(C,D)),((E,F),(G,H)));");
    }

    #[test]
    fn degenerate_sizes() {
        let tv = encode(&Tree::new(5)).unwrap();
        assert!(tv.taxa.is_empty() && tv.code.is_empty());
        assert_eq!(tv.decode(5).unwrap().leaf_count(), 0);

        let mut one = Tree::new(5);
        one.add_node(Some(TaxonId(3)));
        let tv = encode(&one).unwrap();
        assert_eq!(tv.taxa, vec![TaxonId(3)]);
        assert!(tv.decode(5).unwrap().leaf(TaxonId(3)).is_some());
    }

    #[test]
    fn third_taxon_code_is_always_zero() {
        let (_taxa, trees) = parse_forest(["((A,B),C);"]).unwrap();
        let tv = encode(&trees[0]).unwrap();
        assert_eq!(tv.code, vec![0]);
    }

    #[test]
    fn code_enumerates_distinct_topologies() {
        // The 15 codes on 5 leaves (1 * 1 * 3 * 5) are exactly the 15
        // unrooted binary topologies: decode each, re-encode, and the code
        // must come back unchanged (bijectivity on the code side).
        let taxa: Vec<TaxonId> = (0..5).map(TaxonId).collect();
        let mut seen = std::collections::HashSet::new();
        for c1 in 0..3u32 {
            for c2 in 0..5u32 {
                let code = vec![0, c1, c2];
                let tree = decode(5, &taxa, &code).unwrap();
                let tv = Encoder::new().encode(&tree).unwrap();
                assert_eq!(tv.code, code);
                seen.insert(tv.code);
            }
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn decode_rejects_bad_input() {
        let taxa: Vec<TaxonId> = (0..4).map(TaxonId).collect();
        assert!(matches!(
            decode(4, &taxa, &[0]),
            Err(P2vError::LengthMismatch { .. })
        ));
        assert!(matches!(
            decode(4, &taxa, &[0, 3]),
            Err(P2vError::OutOfRange { .. })
        ));
        assert!(matches!(
            decode(4, &[TaxonId(1), TaxonId(0)], &[]),
            Err(P2vError::TaxaNotSorted)
        ));
        assert!(matches!(
            decode(2, &taxa, &[0, 0]),
            Err(P2vError::TaxonOutOfUniverse { .. })
        ));
        assert!(matches!(
            decode(4, &taxa, &[1, 0]),
            Err(P2vError::OutOfRange { .. })
        ));
    }

    #[test]
    fn encoder_reuse_matches_fresh() {
        let mut enc = Encoder::new();
        let inputs = [
            "((A,B),(C,D));",
            "(((((A,B),C),D),E),F);",
            "((A,E),(B,(C,D)));",
        ];
        for nwk in inputs {
            let (taxa, trees) = parse_forest([nwk]).unwrap();
            let reused = enc.encode(&trees[0]).unwrap();
            let fresh = encode(&trees[0]).unwrap();
            assert_eq!(reused, fresh);
            let back = reused.decode(taxa.len()).unwrap();
            assert_eq!(to_newick(&back, &taxa), to_newick(&trees[0], &taxa));
        }
    }

    #[test]
    fn random_trees_roundtrip() {
        use crate::generate::{random_tree_on_n, ShapeModel};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let taxa = crate::taxa::TaxonSet::with_synthetic(40);
        let mut enc = Encoder::new();
        for n in [3usize, 4, 7, 13, 25, 40] {
            for _ in 0..8 {
                let t = random_tree_on_n(n, ShapeModel::Yule, &mut rng);
                let tv = enc.encode(&t).unwrap();
                assert_eq!(tv.taxa.len(), n);
                assert_eq!(tv.code.len(), n - 2);
                let back = tv.decode(t.universe()).unwrap();
                assert_eq!(to_newick(&back, &taxa), to_newick(&t, &taxa));
            }
        }
    }
}
