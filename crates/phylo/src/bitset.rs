//! A compact, fixed-universe bitset used for taxon sets and splits.
//!
//! The Gentrius kernel manipulates subsets of a fixed taxon universe
//! (typically 50–300 taxa) millions of times, so the representation matters:
//! we store the members in an inline-friendly `Vec<u64>` of exactly
//! `ceil(universe/64)` words and keep every operation branch-light and
//! allocation-free once constructed.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A set of small unsigned integers drawn from a fixed universe `0..len`.
///
/// Unlike `std::collections::HashSet<usize>`, all set algebra is word-wise
/// and two bitsets over the same universe compare equal iff they contain the
/// same members. Operations on bitsets with different universe sizes are a
/// logic error and panic in debug builds.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    /// Universe size in bits.
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a set containing every element of the universe `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * WORD_BITS;
            if lo + WORD_BITS <= len {
                *w = u64::MAX;
            } else if lo < len {
                *w = (1u64 << (len - lo)) - 1;
            }
        }
        s
    }

    /// Builds a set from an iterator of members.
    pub fn from_iter<I: IntoIterator<Item = usize>>(len: usize, iter: I) -> Self {
        let mut s = BitSet::new(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Universe size (number of addressable bits), *not* the member count.
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of members in the set.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Adds `i` to the set. Returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i` from the set. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes all members, keeping the universe size.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites this set with the contents of `other` (same universe),
    /// reusing the existing storage — the allocation-free `clone_from` of
    /// the hot projection loops.
    #[inline]
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// In-place union with `other`.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Flips every bit of the universe (set complement).
    pub fn complement(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.trim();
    }

    /// Returns the union as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns the difference `self \ other` as a new set.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Size of the intersection, without materializing it.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if the two sets share no members.
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True if every member of `self` is a member of `other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Smallest member, if any.
    #[inline]
    pub fn min_member(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Direct read access to the storage words (used by hashing fast paths).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Masks off any bits beyond the universe that complement introduced.
    fn trim(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Iterator over the members of a [`BitSet`] in increasing order.
pub struct BitIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::new(70);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = BitSet::full(70);
        assert_eq!(f.count(), 70);
        assert!(f.contains(0));
        assert!(f.contains(69));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(64));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(100, [1, 5, 50, 99]);
        let b = BitSet::from_iter(100, [5, 50, 60]);
        assert_eq!(a.intersection(&b), BitSet::from_iter(100, [5, 50]));
        assert_eq!(a.union(&b), BitSet::from_iter(100, [1, 5, 50, 60, 99]));
        assert_eq!(a.difference(&b), BitSet::from_iter(100, [1, 99]));
        assert_eq!(a.intersection_count(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(BitSet::from_iter(100, [5]).is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn complement_respects_universe() {
        let mut s = BitSet::from_iter(67, [0, 66]);
        s.complement();
        assert_eq!(s.count(), 65);
        assert!(!s.contains(0));
        assert!(!s.contains(66));
        assert!(s.contains(1));
        assert!(s.contains(65));
    }

    #[test]
    fn iteration_order() {
        let s = BitSet::from_iter(200, [199, 3, 64, 65, 0]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn min_member() {
        assert_eq!(BitSet::new(10).min_member(), None);
        assert_eq!(BitSet::from_iter(128, [127]).min_member(), Some(127));
        assert_eq!(BitSet::from_iter(128, [4, 127]).min_member(), Some(4));
    }

    #[test]
    fn disjoint_and_empty_edge_cases() {
        let e = BitSet::new(64);
        assert!(e.is_disjoint(&e));
        assert!(e.is_subset(&e));
        let f = BitSet::full(64);
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
    }

    #[test]
    fn full_on_word_boundary() {
        let f = BitSet::full(128);
        assert_eq!(f.count(), 128);
        let f = BitSet::full(0);
        assert_eq!(f.count(), 0);
    }
}
