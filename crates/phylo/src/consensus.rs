//! Consensus trees and split-frequency summaries.
//!
//! Once a stand has been enumerated, the practical question is *which
//! branches of the published tree are actually resolved* — a branch present
//! in every stand tree is trustworthy, one present in half of them is not.
//! Strict (100%) and majority-rule (>50%) consensus trees summarize this,
//! and the split-frequency table is the per-branch support annotation.

use crate::bitset::BitSet;
use crate::split::{nontrivial_splits, Split};
use crate::taxa::TaxonId;
use crate::tree::Tree;
use std::collections::HashMap;

/// Counts how often each non-trivial split occurs over a sequence of trees
/// on a common leaf set.
#[derive(Clone, Debug, Default)]
pub struct SplitFrequencies {
    counts: HashMap<Split, u64>,
    trees: u64,
    taxa: Option<BitSet>,
}

impl SplitFrequencies {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one tree. Panics if its leaf set differs from previous trees.
    pub fn add(&mut self, tree: &Tree) {
        match &self.taxa {
            None => self.taxa = Some(tree.taxa().clone()),
            Some(t) => assert_eq!(t, tree.taxa(), "consensus over unequal leaf sets"),
        }
        self.trees += 1;
        for s in nontrivial_splits(tree) {
            *self.counts.entry(s).or_insert(0) += 1;
        }
    }

    /// Number of trees accumulated.
    pub fn num_trees(&self) -> u64 {
        self.trees
    }

    /// The common leaf set (None before the first tree).
    pub fn taxa(&self) -> Option<&BitSet> {
        self.taxa.as_ref()
    }

    /// Iterates `(split, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Split, u64)> {
        self.counts.iter().map(|(s, &c)| (s, c))
    }

    /// `(split, support)` pairs with support = count/trees, sorted by
    /// descending support then split order (deterministic output).
    pub fn supports(&self) -> Vec<(Split, f64)> {
        let mut v: Vec<(Split, f64)> = self
            .counts
            .iter()
            .map(|(s, &c)| (s.clone(), c as f64 / self.trees.max(1) as f64))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("support is finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }

    /// The splits present in strictly more than `threshold` fraction of the
    /// trees. `threshold >= 0.5` guarantees pairwise compatibility.
    pub fn splits_above(&self, threshold: f64) -> Vec<Split> {
        let mut v: Vec<Split> = self
            .counts
            .iter()
            .filter(|(_, &c)| (c as f64) > threshold * self.trees as f64)
            .map(|(s, _)| s.clone())
            .collect();
        v.sort_unstable();
        v
    }

    /// The strict consensus (splits in *all* trees) as a tree.
    pub fn strict_consensus(&self) -> Option<Tree> {
        let taxa = self.taxa.as_ref()?;
        Some(tree_from_splits(taxa, &self.splits_above(1.0 - 1e-12)))
    }

    /// The majority-rule consensus (splits in >50% of trees) as a tree.
    pub fn majority_consensus(&self) -> Option<Tree> {
        let taxa = self.taxa.as_ref()?;
        Some(tree_from_splits(taxa, &self.splits_above(0.5)))
    }
}

/// Builds the (possibly multifurcating) unrooted tree realizing a pairwise
/// compatible set of canonical non-trivial splits of `taxa`.
///
/// Splits are interpreted as clusters relative to the reference taxon (the
/// smallest member of `taxa`, which canonical splits exclude): a pairwise
/// compatible set of such clusters is laminar, so the rooted hierarchy is
/// direct nesting, which is then read back as an unrooted arena tree.
///
/// Panics if the splits are not pairwise compatible (not laminar) or not
/// canonical over `taxa`.
pub fn tree_from_splits(taxa: &BitSet, splits: &[Split]) -> Tree {
    let n_taxa = taxa.count();
    let mut tree = Tree::new(taxa.universe());
    match n_taxa {
        0 => return tree,
        1 => {
            tree.add_node(Some(TaxonId(taxa.min_member().unwrap() as u32)));
            return tree;
        }
        2 => {
            let mut it = taxa.iter();
            let a = TaxonId(it.next().unwrap() as u32);
            let b = TaxonId(it.next().unwrap() as u32);
            return Tree::two_leaf(taxa.universe(), a, b);
        }
        _ => {}
    }

    // Clusters, largest first so parents precede children.
    let mut clusters: Vec<&BitSet> = splits.iter().map(|s| s.side()).collect();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.count()));
    for c in &clusters {
        debug_assert!(
            !c.contains(taxa.min_member().unwrap()),
            "split not canonical over the given taxa"
        );
        debug_assert!(c.is_subset(taxa));
    }

    // parent[i] = index of the smallest strictly-containing cluster.
    let mut parent: Vec<Option<usize>> = vec![None; clusters.len()];
    for i in 0..clusters.len() {
        for j in (0..i).rev() {
            if clusters[i].is_subset(clusters[j]) {
                // Thanks to the size ordering, the *last* superset found
                // scanning backwards from the smallest is the tightest.
                parent[i] = match parent[i] {
                    Some(p) if clusters[p].count() <= clusters[j].count() => Some(p),
                    _ => Some(j),
                };
            } else {
                assert!(
                    clusters[i].is_disjoint(clusters[j]) || clusters[j].is_subset(clusters[i]),
                    "splits are not pairwise compatible"
                );
            }
        }
    }

    // Hub node per cluster plus the root hub.
    let root_hub = tree.add_node(None);
    let hubs: Vec<_> = clusters.iter().map(|_| tree.add_node(None)).collect();
    for (i, p) in parent.iter().enumerate() {
        let up = match p {
            Some(j) => hubs[*j],
            None => root_hub,
        };
        tree.add_edge(up, hubs[i]);
    }
    // Attach each taxon to the hub of the smallest cluster containing it.
    for t in taxa.iter() {
        let mut best: Option<usize> = None;
        for (i, c) in clusters.iter().enumerate() {
            if c.contains(t) && best.is_none_or(|b| clusters[b].count() > c.count()) {
                best = Some(i);
            }
        }
        let hub = best.map(|i| hubs[i]).unwrap_or(root_hub);
        let leaf = tree.add_node(Some(TaxonId(t as u32)));
        tree.add_edge(hub, leaf);
    }

    suppress_degree_two(&tree)
}

/// Rebuilds the tree without degree-2 vertices (cluster hubs with a single
/// child collapse; also handles a degree-2 root hub).
fn suppress_degree_two(tree: &Tree) -> Tree {
    // Reuse restriction to the full leaf set: it prunes nothing but
    // suppresses all degree-2 vertices and yields a fresh compact arena.
    crate::ops::restrict(tree, tree.taxa())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::{parse_forest, to_newick};
    use crate::split::topo_eq;
    use crate::taxa::TaxonSet;

    fn trees(newicks: &[&str]) -> (TaxonSet, Vec<Tree>) {
        parse_forest(newicks.iter().copied()).unwrap()
    }

    #[test]
    fn consensus_of_identical_trees_is_the_tree() {
        let (_, ts) = trees(&["((A,B),((C,D),E));", "((A,B),((C,D),E));"]);
        let mut f = SplitFrequencies::new();
        for t in &ts {
            f.add(t);
        }
        let strict = f.strict_consensus().unwrap();
        assert!(topo_eq(&strict, &ts[0]));
        let maj = f.majority_consensus().unwrap();
        assert!(topo_eq(&maj, &ts[0]));
    }

    #[test]
    fn strict_consensus_collapses_conflicts() {
        // Two quartet resolutions conflict → strict consensus is the star.
        let (taxa, ts) = trees(&["((A,B),(C,D));", "((A,C),(B,D));"]);
        let mut f = SplitFrequencies::new();
        for t in &ts {
            f.add(t);
        }
        let strict = f.strict_consensus().unwrap();
        assert_eq!(strict.leaf_count(), 4);
        assert!(crate::split::nontrivial_splits(&strict).is_empty());
        assert_eq!(to_newick(&strict, &taxa), "(A,B,C,D);");
    }

    #[test]
    fn majority_keeps_shared_structure() {
        // AB|CDE in 2 of 3 trees; CD|ABE in 2 of 3.
        let (_, ts) = trees(&[
            "((A,B),((C,D),E));",
            "((A,B),((C,E),D));",
            "((A,E),((C,D),B));",
        ]);
        let mut f = SplitFrequencies::new();
        for t in &ts {
            f.add(t);
        }
        let maj = f.majority_consensus().unwrap();
        let splits = crate::split::nontrivial_splits(&maj);
        assert_eq!(splits.len(), 2);
        let sup = f.supports();
        assert!(sup.iter().all(|(_, s)| (0.0..=1.0).contains(s)));
        assert!((sup[0].1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn tree_from_splits_roundtrip_binary() {
        let (_, ts) = trees(&["(((A,B),(C,D)),((E,F),G));"]);
        let splits = crate::split::nontrivial_splits(&ts[0]);
        let rebuilt = tree_from_splits(ts[0].taxa(), &splits);
        rebuilt.validate().unwrap();
        assert!(topo_eq(&rebuilt, &ts[0]));
        assert!(rebuilt.is_binary_unrooted());
    }

    #[test]
    fn tree_from_no_splits_is_star() {
        let (taxa, ts) = trees(&["((A,B),(C,D));"]);
        let star = tree_from_splits(ts[0].taxa(), &[]);
        star.validate().unwrap();
        assert_eq!(to_newick(&star, &taxa), "(A,B,C,D);");
    }

    #[test]
    fn tree_from_splits_small_leafsets() {
        let universe = 6;
        let two = BitSet::from_iter(universe, [1, 4]);
        let t2 = tree_from_splits(&two, &[]);
        assert_eq!(t2.leaf_count(), 2);
        let one = BitSet::from_iter(universe, [3]);
        assert_eq!(tree_from_splits(&one, &[]).leaf_count(), 1);
        assert_eq!(
            tree_from_splits(&BitSet::new(universe), &[]).leaf_count(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "not pairwise compatible")]
    fn incompatible_splits_panic() {
        let taxa = BitSet::from_iter(8, [0, 1, 2, 3, 4]);
        let s1 = Split::canonical(BitSet::from_iter(8, [1, 2]), &taxa);
        let s2 = Split::canonical(BitSet::from_iter(8, [2, 3]), &taxa);
        tree_from_splits(&taxa, &[s1, s2]);
    }

    #[test]
    #[should_panic(expected = "unequal leaf sets")]
    fn mixed_leafsets_panic() {
        let (_, ts) = trees(&["((A,B),(C,D));", "((A,B),(C,E));"]);
        let mut f = SplitFrequencies::new();
        f.add(&ts[0]);
        f.add(&ts[1]);
    }
}
