//! Robinson–Foulds distance between unrooted trees.
//!
//! Used by the examples and the dataset analyses to characterize how
//! different the trees on one stand are from each other.

use crate::split::{nontrivial_splits, Split};
use crate::tree::Tree;

/// The (unnormalized) Robinson–Foulds distance: the size of the symmetric
/// difference of the two trees' non-trivial split sets. Both trees must be
/// on the same leaf set; returns `None` otherwise.
pub fn rf_distance(a: &Tree, b: &Tree) -> Option<usize> {
    if a.taxa() != b.taxa() {
        return None;
    }
    let sa = nontrivial_splits(a);
    let sb = nontrivial_splits(b);
    Some(symmetric_difference_size(&sa, &sb))
}

/// Normalized RF in `[0, 1]`: distance divided by the maximum possible
/// `2(n-3)` for binary trees on `n` leaves. Returns `None` for mismatched
/// leaf sets or `n < 4` (where the distance is always 0).
pub fn rf_distance_normalized(a: &Tree, b: &Tree) -> Option<f64> {
    let d = rf_distance(a, b)?;
    let n = a.leaf_count();
    if n < 4 {
        return Some(0.0);
    }
    Some(d as f64 / (2 * (n - 3)) as f64)
}

fn symmetric_difference_size(a: &[Split], b: &[Split]) -> usize {
    // Both inputs are sorted and deduplicated (nontrivial_splits contract).
    let mut i = 0;
    let mut j = 0;
    let mut diff = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                diff += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    diff + (a.len() - i) + (b.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse_forest;

    #[test]
    fn identical_trees_have_zero_distance() {
        let (_, trees) = parse_forest(["((A,B),((C,D),E));"]).unwrap();
        assert_eq!(rf_distance(&trees[0], &trees[0].clone()), Some(0));
    }

    #[test]
    fn maximally_different_quartets() {
        let (_, trees) = parse_forest(["((A,B),(C,D));", "((A,C),(B,D));"]).unwrap();
        assert_eq!(rf_distance(&trees[0], &trees[1]), Some(2));
        assert_eq!(rf_distance_normalized(&trees[0], &trees[1]), Some(1.0));
    }

    #[test]
    fn partial_overlap() {
        let (_, trees) = parse_forest(["(((A,B),C),(D,E));", "(((A,C),B),(D,E));"]).unwrap();
        // Both share split {D,E} (and its complement); differ on AB|... vs AC|...
        assert_eq!(rf_distance(&trees[0], &trees[1]), Some(2));
    }

    #[test]
    fn mismatched_leaf_sets() {
        let (_, trees) = parse_forest(["((A,B),(C,D));", "((A,B),(C,E));"]).unwrap();
        assert_eq!(rf_distance(&trees[0], &trees[1]), None);
    }

    #[test]
    fn small_trees() {
        let (_, trees) = parse_forest(["(A,(B,C));", "(B,(A,C));"]).unwrap();
        assert_eq!(rf_distance(&trees[0], &trees[1]), Some(0)); // only one 3-leaf topology
        assert_eq!(rf_distance_normalized(&trees[0], &trees[1]), Some(0.0));
    }
}
