//! Parser robustness: arbitrary input must produce `Err`, never a panic,
//! and accepted input must satisfy the parsers' own invariants.

use phylo::newick::{parse_forest, to_newick};
use phylo::nexus::parse_nexus;
use phylo::pam::Pam;
use phylo::taxa::TaxonSet;
use proptest::prelude::*;

/// Strings biased toward parser-relevant characters.
fn newicky_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('('),
            Just(')'),
            Just(','),
            Just(';'),
            Just(':'),
            Just('\''),
            Just('['),
            Just(']'),
            Just('='),
            Just('A'),
            Just('B'),
            Just('1'),
            Just('.'),
            Just(' '),
            Just('\n'),
        ],
        0..120,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn newick_never_panics(s in newicky_string()) {
        if let Ok((taxa, trees)) = parse_forest([s.as_str()]) {
            for t in &trees {
                // Accepted trees must be structurally valid and
                // re-serializable.
                t.validate().expect("accepted tree is valid");
                let _ = to_newick(t, &taxa);
            }
        }
    }

    #[test]
    fn nexus_never_panics(s in newicky_string()) {
        let with_header = format!("#NEXUS\n{s}");
        if let Ok(data) = parse_nexus(&with_header) {
            for (_, t) in &data.trees {
                t.validate().expect("accepted tree is valid");
            }
        }
        let _ = parse_nexus(&s); // headerless: must error, not panic
    }

    #[test]
    fn pam_never_panics(s in "[A-D 01x\n]{0,160}") {
        let mut taxa = TaxonSet::new();
        if let Ok(pam) = Pam::parse_text(&s, &mut taxa) {
            prop_assert!(pam.loci() > 0);
            prop_assert_eq!(pam.universe(), taxa.len());
        }
    }

    #[test]
    fn dataset_never_panics(s in newicky_string()) {
        let framed = format!("# gentrius dataset v1\nname f\nconstraint {s}\n");
        gentrius_datagen_dataset_parse(&framed);
        gentrius_datagen_dataset_parse(&s);
    }
}

/// Thin indirection so the phylo test crate does not depend on datagen —
/// it exercises the same Newick path through the forest parser instead.
fn gentrius_datagen_dataset_parse(s: &str) {
    // Extract 'constraint <newick>' lines the way the dataset format does.
    for line in s.lines() {
        if let Some(rest) = line.trim().strip_prefix("constraint ") {
            let _ = parse_forest([rest]);
        }
    }
}
