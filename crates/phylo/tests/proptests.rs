//! Property-based tests of the phylo substrate: the bitset against a
//! `HashSet` model, split algebra, consensus laws and shape invariants.

use phylo::bitset::BitSet;
use phylo::consensus::{tree_from_splits, SplitFrequencies};
use phylo::generate::{random_tree_on_n, ShapeModel};
use phylo::shape::shape_stats;
use phylo::split::{nontrivial_splits, topo_eq, Split};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Operations of the bitset model test.
#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Remove(usize),
    Contains(usize),
}

fn op_strategy(universe: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..universe).prop_map(Op::Insert),
        (0..universe).prop_map(Op::Remove),
        (0..universe).prop_map(Op::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bitset_behaves_like_hashset(ops in proptest::collection::vec(op_strategy(150), 1..200)) {
        let mut bs = BitSet::new(150);
        let mut model: HashSet<usize> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(i) => prop_assert_eq!(bs.insert(i), model.insert(i)),
                Op::Remove(i) => prop_assert_eq!(bs.remove(i), model.remove(&i)),
                Op::Contains(i) => prop_assert_eq!(bs.contains(i), model.contains(&i)),
            }
            prop_assert_eq!(bs.count(), model.len());
            prop_assert_eq!(bs.min_member(), model.iter().min().copied());
        }
        let collected: HashSet<usize> = bs.iter().collect();
        prop_assert_eq!(collected, model);
    }

    #[test]
    fn bitset_algebra_laws(
        a in proptest::collection::vec(proptest::bool::ANY, 130),
        b in proptest::collection::vec(proptest::bool::ANY, 130),
    ) {
        let mk = |mask: &[bool]| {
            BitSet::from_iter(130, mask.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i))
        };
        let sa = mk(&a);
        let sb = mk(&b);
        // De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B
        let mut lhs = sa.union(&sb);
        lhs.complement();
        let mut na = sa.clone();
        na.complement();
        let mut nb = sb.clone();
        nb.complement();
        prop_assert_eq!(lhs, na.intersection(&nb));
        // |A| + |B| = |A ∪ B| + |A ∩ B|
        prop_assert_eq!(
            sa.count() + sb.count(),
            sa.union(&sb).count() + sa.intersection(&sb).count()
        );
        // A \ B disjoint from B; union with (A ∩ B) gives A back.
        let diff = sa.difference(&sb);
        prop_assert!(diff.is_disjoint(&sb));
        prop_assert_eq!(diff.union(&sa.intersection(&sb)), sa.clone());
        prop_assert_eq!(sa.intersection_count(&sb), sa.intersection(&sb).count());
    }

    #[test]
    fn splits_rebuild_the_tree(seed in 0u64..1_000_000, n in 4usize..20) {
        let tree = random_tree_on_n(n, ShapeModel::Uniform, &mut ChaCha8Rng::seed_from_u64(seed));
        let splits = nontrivial_splits(&tree);
        prop_assert_eq!(splits.len(), n - 3, "binary tree split count");
        let rebuilt = tree_from_splits(tree.taxa(), &splits);
        prop_assert!(topo_eq(&rebuilt, &tree));
        // Splits of one tree are pairwise compatible.
        for i in 0..splits.len() {
            for j in i + 1..splits.len() {
                prop_assert!(splits[i].compatible_with(&splits[j], tree.taxa()));
            }
        }
    }

    #[test]
    fn split_canonicalization_is_involutive(
        mask in proptest::collection::vec(proptest::bool::ANY, 24),
        n in 4usize..24,
    ) {
        let taxa = BitSet::full(24);
        let side = BitSet::from_iter(
            24,
            mask.iter().take(n).enumerate().filter(|(_, &x)| x).map(|(i, _)| i),
        );
        let s1 = Split::canonical(side.clone(), &taxa);
        // Canonicalizing the canonical side is a fixed point.
        let s2 = Split::canonical(s1.side().clone(), &taxa);
        prop_assert_eq!(&s1, &s2);
        // Canonicalizing the complement gives the same split.
        let mut comp = taxa.clone();
        comp.difference_with(&side);
        let s3 = Split::canonical(comp, &taxa);
        prop_assert_eq!(&s1, &s3);
    }

    #[test]
    fn majority_consensus_splits_are_pairwise_compatible(
        seed in 0u64..100_000,
        n in 5usize..14,
        k in 2usize..7,
    ) {
        // k random trees on the same leaf set; the majority (>1/2) splits
        // must be pairwise compatible and the consensus realizable.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut f = SplitFrequencies::new();
        let mut first = None;
        for _ in 0..k {
            let t = random_tree_on_n(n, ShapeModel::Uniform, &mut rng);
            if first.is_none() {
                first = Some(t.clone());
            }
            f.add(&t);
        }
        let maj = f.majority_consensus().expect("trees were added");
        maj.validate().expect("valid consensus tree");
        prop_assert_eq!(maj.leaf_count(), n);
        let splits = nontrivial_splits(&maj);
        let taxa = maj.taxa();
        for i in 0..splits.len() {
            for j in i + 1..splits.len() {
                prop_assert!(splits[i].compatible_with(&splits[j], taxa));
            }
        }
        // With a single tree the consensus is that tree.
        if k == 1 {
            prop_assert!(topo_eq(&maj, &first.unwrap()));
        }
    }

    #[test]
    fn nexus_roundtrip_preserves_trees(seed in 0u64..100_000, n in 4usize..16, k in 1usize..4) {
        use phylo::nexus::{parse_nexus, write_nexus};
        use phylo::taxa::TaxonSet;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let taxa = TaxonSet::with_synthetic(n);
        let trees: Vec<(String, phylo::Tree)> = (0..k)
            .map(|i| (format!("t{i}"), random_tree_on_n(n, ShapeModel::Uniform, &mut rng)))
            .collect();
        let named: Vec<(String, &phylo::Tree)> =
            trees.iter().map(|(s, t)| (s.clone(), t)).collect();
        let out = write_nexus(&taxa, &named);
        let parsed = parse_nexus(&out).expect("own output parses");
        prop_assert_eq!(parsed.trees.len(), k);
        for ((name, tree), (pname, ptree)) in trees.iter().zip(&parsed.trees) {
            prop_assert_eq!(name, pname);
            prop_assert_eq!(
                phylo::newick::to_newick(tree, &taxa),
                phylo::newick::to_newick(ptree, &parsed.taxa)
            );
        }
    }

    #[test]
    fn pam_text_roundtrip(
        rows in proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, 6), 4..12),
    ) {
        use phylo::pam::Pam;
        use phylo::taxa::{TaxonId, TaxonSet};
        let n = rows.len();
        let taxa = TaxonSet::with_synthetic(n);
        let mut pam = Pam::new(n, 6);
        for (t, row) in rows.iter().enumerate() {
            for (l, &b) in row.iter().enumerate() {
                pam.set(TaxonId(t as u32), l, b);
            }
        }
        let text = pam.to_text(&taxa);
        let mut taxa2 = TaxonSet::new();
        let pam2 = Pam::parse_text(&text, &mut taxa2).expect("own output parses");
        prop_assert_eq!(pam, pam2);
    }

    #[test]
    fn hostile_labels_survive_newick_roundtrip(
        raw in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 0..8),
            1..6,
        ),
    ) {
        use phylo::newick::{parse_newick, to_newick};
        use phylo::taxa::TaxonSet;
        // Every Newick metacharacter plus whitespace and multi-byte UTF-8:
        // each must survive format_label → parser unchanged.
        const POOL: [char; 16] = [
            'a', 'Z', '0', ' ', '\t', '(', ')', ',', ':', ';', '\'', '[', ']', '_', 'é', '木',
        ];
        let labels: Vec<String> = raw
            .iter()
            .enumerate()
            .map(|(i, ix)| {
                let mut l: String = ix.iter().map(|&j| POOL[j]).collect();
                l.push_str(&format!("#{i}")); // unique and non-empty
                l
            })
            .collect();
        let mut taxa = TaxonSet::new();
        let ids: Vec<_> = labels.iter().map(|l| taxa.intern(l)).collect();
        let mut tree = phylo::Tree::new(taxa.len());
        match ids.len() {
            1 => {
                tree.add_node(Some(ids[0]));
            }
            2 => {
                let a = tree.add_node(Some(ids[0]));
                let b = tree.add_node(Some(ids[1]));
                tree.add_edge(a, b);
            }
            _ => {
                let hub = tree.add_node(None);
                for &id in &ids {
                    let n = tree.add_node(Some(id));
                    tree.add_edge(hub, n);
                }
            }
        }
        tree.validate().expect("constructed star tree is valid");
        let out = to_newick(&tree, &taxa);
        let re = parse_newick(&out, &taxa).expect("writer output must parse");
        prop_assert_eq!(re.leaf_count(), labels.len());
        for l in &labels {
            let id = taxa.get(l).expect("label interned");
            prop_assert!(re.leaf(id).is_some(), "label {:?} lost in roundtrip", l);
        }
        // Canonical form is stable across the round trip.
        prop_assert_eq!(to_newick(&re, &taxa), out);
    }

    #[test]
    fn phylo2vec_roundtrip_matches_newick_roundtrip(seed in 0u64..1_000_000, n in 3usize..40) {
        use phylo::newick::{parse_newick, to_newick};
        use phylo::phylo2vec;
        use phylo::taxa::TaxonSet;
        let model = if seed % 2 == 0 { ShapeModel::Uniform } else { ShapeModel::Yule };
        let tree = random_tree_on_n(n, model, &mut ChaCha8Rng::seed_from_u64(seed));
        let taxa = TaxonSet::with_synthetic(n);
        let nwk = to_newick(&tree, &taxa);

        // encode ∘ decode ≡ id, where identity is judged by the canonical
        // Newick form (two trees are equal iff their strings are).
        let tv = phylo2vec::encode(&tree).expect("binary tree encodes");
        prop_assert_eq!(tv.code.len(), n - 2);
        // The documented code bounds.
        for (j, &c) in tv.code.iter().enumerate() {
            prop_assert!(c < 2 * j as u32 + 1, "code[{}] = {} out of bound", j, c);
        }
        let back = tv.decode(n).expect("own code decodes");
        prop_assert_eq!(to_newick(&back, &taxa), nwk.clone());

        // The codec agrees with the Newick round-trip: parsing the string
        // and encoding the parsed tree yields the identical code.
        let reparsed = parse_newick(&nwk, &taxa).expect("own output parses");
        let tv2 = phylo2vec::encode(&reparsed).expect("reparsed tree encodes");
        prop_assert_eq!(tv2.code, tv.code);
    }

    #[test]
    fn phylo2vec_roundtrip_with_hostile_labels(
        seed in 0u64..100_000,
        n in 3usize..24,
        raw in proptest::collection::vec(proptest::collection::vec(0usize..16, 0..8), 24),
    ) {
        use phylo::newick::{parse_newick, to_newick};
        use phylo::phylo2vec;
        use phylo::taxa::TaxonSet;
        // Codes are label-free, so hostile labels can only break the codec
        // through the Newick path it must agree with.
        const POOL: [char; 16] = [
            'a', 'Z', '0', ' ', '\t', '(', ')', ',', ':', ';', '\'', '[', ']', '_', 'é', '木',
        ];
        let mut taxa = TaxonSet::new();
        for (i, ix) in raw.iter().take(n).enumerate() {
            let mut l: String = ix.iter().map(|&j| POOL[j]).collect();
            l.push_str(&format!("#{i}"));
            taxa.intern(&l);
        }
        let tree = random_tree_on_n(n, ShapeModel::Uniform, &mut ChaCha8Rng::seed_from_u64(seed));
        let nwk = to_newick(&tree, &taxa);
        let reparsed = parse_newick(&nwk, &taxa).expect("hostile labels parse back");
        let tv = phylo2vec::encode(&reparsed).expect("reparsed tree encodes");
        let back = tv.decode(n).expect("code decodes");
        prop_assert_eq!(to_newick(&back, &taxa), nwk);
    }

    #[test]
    fn phylo2vec_every_valid_code_is_a_tree(
        picks in proptest::collection::vec(0u32..u32::MAX, 1..30),
    ) {
        use phylo::phylo2vec;
        use phylo::taxa::TaxonId;
        // Draw an arbitrary in-bounds code (code[j] < 2j + 1); it must
        // decode to a binary tree whose re-encoding is the same code —
        // i.e. the codec is a bijection onto valid codes.
        let code: Vec<u32> = picks
            .iter()
            .enumerate()
            .map(|(j, &p)| p % (2 * j as u32 + 1))
            .collect();
        let n = code.len() + 2;
        let ids: Vec<TaxonId> = (0..n as u32).map(TaxonId).collect();
        let tree = phylo2vec::decode(n, &ids, &code).expect("in-bounds code decodes");
        prop_assert!(tree.is_binary_unrooted());
        let tv = phylo2vec::encode(&tree).expect("decoded tree re-encodes");
        prop_assert_eq!(tv.code, code);
    }

    #[test]
    fn shape_stats_invariants(seed in 0u64..100_000, n in 4usize..40) {
        let tree = random_tree_on_n(n, ShapeModel::Yule, &mut ChaCha8Rng::seed_from_u64(seed));
        let s = shape_stats(&tree).expect("binary with >= 3 leaves");
        prop_assert!(s.cherries >= 2 || n == 3);
        prop_assert!(s.cherries <= n / 2 || n == 3);
        prop_assert!(s.max_depth as u64 <= s.sackin);
        // Sackin is at least the balanced-tree lower bound-ish: every
        // non-root leaf has depth >= 1.
        prop_assert!(s.sackin >= (n as u64).saturating_sub(1));
    }
}
