//! Model-vs-measured regression gating (the BENCH_10 phase).
//!
//! For each instance class of the adversarial zoo, a cheap budget-capped
//! profiling run fits a Galton–Watson model ([`gentrius_sim::gw`]) whose
//! predictions — expected event counts and expected scaling per thread
//! count — are compared against what the virtual-time simulator actually
//! measures on the real engine policy. A regression on *any* class shows
//! up as divergence beyond the fitted band, instead of tripping (or
//! sliding under) a hand-picked raw threshold.
//!
//! The measurement side is deliberately degradable
//! ([`MeasureConfig`]): switching stealing off or clamping the task
//! queue to zero capacity reproduces a scheduler regression, and the
//! gate must fail — `tests/model_gate_degraded.rs` pins that.

use gentrius_core::GentriusConfig;
use gentrius_datagen::adversarial::{grove_showcase, unbalanced_showcase};
use gentrius_datagen::scenario::{deadend_blowup, heuristics_showcase, plateau_with_chunks};
use gentrius_datagen::Dataset;
use gentrius_sim::gw::{profile_search, CountPrediction, GwModel};
use gentrius_sim::{simulate, CostModel, SimConfig};

/// Thread counts of the scaling comparison.
pub const GATE_THREADS: [usize; 3] = [2, 4, 8];

/// Multiplicative band of the scaling comparison: the measured speedup
/// must stay within `[predicted / band, predicted * band]`. The abstract
/// GW scheduler is a simplification of the engine (no queue-capacity
/// gate, shallowest-first steals), so the band is loose — but a scheduler
/// regression (stealing off, zero-capacity queue) collapses measured
/// scaling to ~1x, far outside it.
pub const SCALING_BAND: f64 = 1.75;

/// One instance class of the gate.
pub struct ClassSpec {
    /// Stable key written to `BENCH_10.json`.
    pub key: &'static str,
    /// The instance.
    pub dataset: Dataset,
    /// Run configuration (must enumerate completely for exact totals).
    pub config: GentriusConfig,
    /// Event budget of the profiling run.
    pub profile_budget: u64,
}

/// The degradable measurement knobs (healthy by default). The degraded
/// variants model real scheduler regressions.
#[derive(Clone, Debug)]
pub struct MeasureConfig {
    /// Work stealing enabled.
    pub stealing: bool,
    /// Task-queue capacity override (`Some(0)` disables task creation).
    pub queue_capacity: Option<usize>,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            stealing: true,
            queue_capacity: None,
        }
    }
}

/// Per-thread-count comparison cell.
#[derive(Clone, Debug)]
pub struct ThreadResult {
    /// Worker count.
    pub threads: usize,
    /// GW-scheduler predicted speedup over serial.
    pub predicted_speedup: f64,
    /// Virtual-time measured speedup over serial.
    pub measured_speedup: f64,
    /// Measured events per virtual tick (trees + intermediate states).
    pub events_per_tick: f64,
    /// Within [`SCALING_BAND`] of the prediction.
    pub ok: bool,
}

/// Per-class gate outcome.
pub struct ClassResult {
    /// Class key.
    pub key: &'static str,
    /// Insertion positions (missing taxa).
    pub depth: usize,
    /// Events the profile consumed.
    pub profile_events: u64,
    /// Whether the profile was budget-truncated.
    pub profile_truncated: bool,
    /// GW count predictions with their fitted band.
    pub predicted: CountPrediction,
    /// Measured totals from the complete serial enumeration.
    pub measured_trees: u64,
    /// Measured intermediate states.
    pub measured_states: u64,
    /// Measured dead ends.
    pub measured_dead_ends: u64,
    /// Serial virtual makespan.
    pub serial_makespan: u64,
    /// Counts within the fitted band.
    pub counts_ok: bool,
    /// Scaling comparison per thread count.
    pub threads: Vec<ThreadResult>,
}

impl ClassResult {
    /// True when every comparison of this class is inside its band.
    pub fn pass(&self) -> bool {
        self.counts_ok && self.threads.iter().all(|t| t.ok)
    }
}

/// The default zoo classes of the gate — both crafted caterpillar
/// plateaus, the randomized deep-unbalanced plateau, the heuristics
/// showcase, the dead-end blow-up and the Grove-like empirical showcase.
/// All enumerate completely under the exhaustive config (the true blow-up
/// instances are excluded on purpose: exact-count gating needs complete
/// totals).
pub fn zoo_classes() -> Vec<ClassSpec> {
    let exhaustive = GentriusConfig::exhaustive;
    vec![
        ClassSpec {
            key: "plateau-craft-3",
            dataset: plateau_with_chunks(3),
            config: exhaustive(),
            profile_budget: 30_000,
        },
        ClassSpec {
            key: "plateau-craft-5",
            dataset: plateau_with_chunks(5),
            config: exhaustive(),
            profile_budget: 30_000,
        },
        ClassSpec {
            key: "simulated-heuristics",
            dataset: heuristics_showcase(),
            config: exhaustive(),
            profile_budget: 30_000,
        },
        ClassSpec {
            key: "unbalanced-plateau",
            dataset: unbalanced_showcase(),
            config: exhaustive(),
            profile_budget: 30_000,
        },
        ClassSpec {
            key: "deadend-blowup",
            dataset: deadend_blowup(),
            config: exhaustive(),
            profile_budget: 60_000,
        },
        ClassSpec {
            key: "grove-empirical",
            dataset: grove_showcase(),
            config: exhaustive(),
            profile_budget: 30_000,
        },
    ]
}

/// Checks `measured` against `predicted` under a multiplicative `band`.
fn within_band(measured: f64, predicted: f64, band: f64) -> bool {
    if predicted <= 0.0 {
        return measured <= 0.5; // degenerate: nothing predicted, ~nothing measured
    }
    let ratio = (measured.max(1e-9)) / predicted;
    ratio <= band && ratio >= 1.0 / band
}

/// Runs the model-gate phase: profile → fit → predict → measure →
/// compare, per class. The `measure` knobs only affect the measurement
/// side (the degraded-config tests rely on that).
pub fn run_model_gate(classes: &[ClassSpec], measure: &MeasureConfig) -> Vec<ClassResult> {
    classes
        .iter()
        .map(|class| {
            let p = class.dataset.problem().expect("zoo class must be valid");
            let profile = profile_search(&p, &class.config, class.profile_budget)
                .expect("profiling run failed");
            let model = GwModel::fit(&profile);
            let predicted = model.predict_counts();

            let sim_config = |threads: usize| {
                let mut sc = SimConfig::with_threads(threads);
                sc.cost = CostModel::ideal();
                sc.stealing = measure.stealing;
                if measure.queue_capacity.is_some() {
                    sc.queue_capacity = measure.queue_capacity;
                }
                sc
            };
            let serial = simulate(&p, &class.config, &sim_config(1)).expect("serial sim");
            assert!(
                serial.complete(),
                "{}: gate classes must enumerate completely",
                class.key
            );
            let counts_ok = within_band(
                serial.stats.stand_trees as f64,
                predicted.stand_trees,
                predicted.band,
            ) && within_band(
                serial.stats.intermediate_states as f64,
                predicted.intermediate_states,
                predicted.band,
            ) && within_band(
                serial.stats.dead_ends as f64,
                predicted.dead_ends,
                predicted.band,
            );
            let events = serial.stats.stand_trees + serial.stats.intermediate_states;
            let threads = GATE_THREADS
                .iter()
                .map(|&t| {
                    let par = simulate(&p, &class.config, &sim_config(t)).expect("parallel sim");
                    let predicted_speedup = model.predict_speedup(t);
                    let measured_speedup = par.speedup_vs(&serial);
                    ThreadResult {
                        threads: t,
                        predicted_speedup,
                        measured_speedup,
                        events_per_tick: events as f64 / par.makespan.max(1) as f64,
                        ok: within_band(measured_speedup, predicted_speedup, SCALING_BAND),
                    }
                })
                .collect();
            ClassResult {
                key: class.key,
                depth: model.depth,
                profile_events: profile.events,
                profile_truncated: profile.truncated,
                predicted,
                measured_trees: serial.stats.stand_trees,
                measured_states: serial.stats.intermediate_states,
                measured_dead_ends: serial.stats.dead_ends,
                serial_makespan: serial.makespan,
                counts_ok,
                threads,
            }
        })
        .collect()
}

/// True when every class passed every comparison.
pub fn gate_passes(results: &[ClassResult]) -> bool {
    results.iter().all(|r| r.pass())
}
