//! Shared harness code for the experiment benches.
//!
//! Every table and figure of the paper has a bench target under
//! `benches/` (cargo bench targets with `harness = false`); this library
//! holds the common pipeline: seeded dataset sweeps, the paper's filtering
//! protocol (§IV-B), speedup measurement in virtual time, and table
//! rendering. EXPERIMENTS.md records paper-vs-measured for each target.

#![warn(missing_docs)]

pub mod model_gate;

use gentrius_core::{GentriusConfig, StoppingRules};
use gentrius_datagen::Dataset;
use gentrius_sim::{simulate, SimConfig, SimResult, Summary};

/// The thread counts of the paper's main evaluation (Figs. 6–7, Table I).
pub const PAPER_THREADS: [usize; 5] = [2, 4, 8, 12, 16];

/// One dataset that survived the filter pipeline, with its serial baseline.
pub struct FilteredRun {
    /// The dataset.
    pub dataset: Dataset,
    /// Serial (1-thread) simulation result.
    pub serial: SimResult,
}

/// The paper's dataset-filtering protocol (§IV-B), in virtual time:
///
/// 1. run every instance at `max_threads` and keep those that complete
///    without triggering a stopping rule;
/// 2. re-run serially (the baseline for speedups);
/// 3. drop "small" instances below `min_serial_ticks` (the paper drops
///    serial execution times under 1 s).
pub fn filter_pipeline(
    datasets: impl IntoIterator<Item = Dataset>,
    config: &GentriusConfig,
    max_threads: usize,
    min_serial_ticks: u64,
) -> Vec<FilteredRun> {
    let mut out = Vec::new();
    for dataset in datasets {
        let Ok(problem) = dataset.problem() else {
            continue;
        };
        let wide = simulate(&problem, config, &SimConfig::with_threads(max_threads))
            .expect("simulation runs");
        if !wide.complete() {
            continue;
        }
        let serial =
            simulate(&problem, config, &SimConfig::with_threads(1)).expect("simulation runs");
        if !serial.complete() || serial.makespan < min_serial_ticks {
            continue;
        }
        out.push(FilteredRun { dataset, serial });
    }
    out
}

/// Measures per-thread speedups (virtual time) for every filtered dataset;
/// returns, for each thread count, the vector of speedups across datasets.
pub fn speedups_by_threads(
    runs: &[FilteredRun],
    config: &GentriusConfig,
    threads: &[usize],
) -> Vec<(usize, Vec<f64>)> {
    threads
        .iter()
        .map(|&t| {
            let mut v = Vec::with_capacity(runs.len());
            for run in runs {
                let problem = run.dataset.problem().expect("valid dataset");
                let r = simulate(&problem, config, &SimConfig::with_threads(t))
                    .expect("simulation runs");
                v.push(r.speedup_vs(&run.serial));
            }
            (t, v)
        })
        .collect()
}

/// Renders a per-thread speedup-distribution table (the text analogue of
/// the violin plots in Figs. 6–8).
pub fn print_distribution_table(title: &str, rows: &[(usize, Vec<f64>)]) {
    println!("{title}");
    println!(
        "{:>8} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "threads", "n", "mean", "min", "q1", "median", "q3", "max"
    );
    for (t, v) in rows {
        if let Some(s) = Summary::of(v) {
            println!(
                "{:>8} {:>5} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                t, s.n, s.mean, s.min, s.q1, s.median, s.q3, s.max
            );
        } else {
            println!("{t:>8}   (no datasets survived the filter)");
        }
    }
}

/// A bounded-stopping config for bench-scale experiments.
pub fn bench_config(max_trees: u64, max_states: u64) -> GentriusConfig {
    GentriusConfig {
        stopping: StoppingRules::counts(max_trees, max_states),
        ..GentriusConfig::default()
    }
}

/// Standard bench header: experiment id, paper artifact, what to expect.
pub fn banner(id: &str, artifact: &str, expectation: &str) {
    println!("================================================================");
    println!("{id} — reproduces {artifact}");
    println!("expected shape: {expectation}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gentrius_datagen::{simulated_dataset, SimulatedParams};

    #[test]
    fn pipeline_filters_small_and_incomplete() {
        let params = SimulatedParams {
            taxa: (10, 14),
            loci: (3, 4),
            missing: (0.3, 0.4),
            pattern: gentrius_datagen::MissingPattern::Uniform,
            shape: phylo::generate::ShapeModel::Uniform,
        };
        let datasets: Vec<_> = (0..10).map(|i| simulated_dataset(&params, 9, i)).collect();
        let cfg = bench_config(50_000, 50_000);
        let all = filter_pipeline(datasets.clone(), &cfg, 4, 0);
        let strict = filter_pipeline(datasets, &cfg, 4, 10_000);
        assert!(strict.len() <= all.len());
        for r in &strict {
            assert!(r.serial.makespan >= 10_000);
            assert!(r.serial.complete());
        }
    }

    #[test]
    fn speedup_rows_align_with_thread_list() {
        let params = SimulatedParams {
            taxa: (10, 14),
            loci: (3, 4),
            missing: (0.35, 0.45),
            pattern: gentrius_datagen::MissingPattern::Uniform,
            shape: phylo::generate::ShapeModel::Uniform,
        };
        let datasets: Vec<_> = (0..8).map(|i| simulated_dataset(&params, 19, i)).collect();
        let cfg = bench_config(20_000, 20_000);
        let runs = filter_pipeline(datasets, &cfg, 4, 50);
        let rows = speedups_by_threads(&runs, &cfg, &[2, 4]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 2);
        assert!(rows.iter().all(|(_, v)| v.len() == runs.len()));
    }
}
