//! E10 — §V profiling note: the cost of maintaining the branch mappings.
//!
//! The paper's Valgrind profile attributes 15–30% of total runtime to
//! updating the double-edge mappings on taxon insertion/removal, and lists
//! redesigning them as future work. Our two mapping engines span that
//! design space: `Recompute` rebuilds projections per state, `Incremental`
//! patches them per edit (the paper's approach). This bench measures real
//! wall-clock state throughput for both on several instances.

use gentrius_bench::banner;
use gentrius_core::{CountOnly, GentriusConfig, MappingMode, StoppingRules};
use gentrius_datagen::scenario::{heuristics_showcase, long_runner};
use gentrius_datagen::Dataset;

fn run(dataset: &Dataset, mapping: MappingMode) -> (f64, u64) {
    let problem = dataset.problem().expect("valid");
    let cfg = GentriusConfig {
        mapping,
        stopping: StoppingRules::counts(150_000, 500_000),
        ..GentriusConfig::default()
    };
    // Best of 3 to tame wall-clock noise.
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..3 {
        let r = gentrius_core::run_serial(&problem, &cfg, &mut CountOnly).expect("run");
        let secs = r.elapsed.as_secs_f64();
        events = r.stats.intermediate_states + r.stats.stand_trees;
        best = best.min(secs);
    }
    (best, events)
}

fn main() {
    banner(
        "E10",
        "§V: mapping-maintenance cost (recompute vs incremental engines)",
        "incremental maintenance edges out per-state recomputation once \
         unqueried updates are skipped; the gap is the mapping-maintenance \
         share of runtime the paper profiles at 15-30%",
    );
    let datasets = [heuristics_showcase(), long_runner(0), long_runner(2)];
    println!(
        "\n{:<18} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "dataset", "events", "recomp (s)", "incr (s)", "recomp ev/s", "incr ev/s", "speedup"
    );
    for d in &datasets {
        let (tr, ev) = run(d, MappingMode::Recompute);
        let (ti, ev2) = run(d, MappingMode::Incremental);
        assert_eq!(ev, ev2, "engines must traverse the same tree");
        println!(
            "{:<18} {:>8} {:>12.3} {:>12.3} {:>12.0} {:>12.0} {:>8.2}x",
            d.name,
            ev,
            tr,
            ti,
            ev as f64 / tr,
            ev as f64 / ti,
            tr / ti
        );
    }
    println!();
    println!("events = intermediate states + stand trees; ev/s is the paper's");
    println!("\"hundreds of thousands of states per second\" figure of merit.");
}
