//! Throughput — enumeration rates across the mapping kernels.
//!
//! Measures states/sec and dead-ends/sec for every mapping engine
//! (`Recompute`, `Incremental`, `EdgeIndexed`) on the seeded simulated
//! instances and the crafted caterpillar blow-up, serially and through the
//! parallel engine at 1/2/4/8 threads, and writes the whole grid to
//! `BENCH_5.json` (override the path with `BENCH5_OUT`) via the
//! workspace's hand-rolled JSON writer.
//!
//! The bench is also a gate, and exits non-zero when any rule fails:
//!
//! 1. **conformance** — per instance, all serial runs must report
//!    identical counters regardless of mapping mode, and every complete
//!    parallel run must reproduce the complete serial totals exactly;
//! 2. **performance** — on the medium simulated instance the edge-indexed
//!    kernels must deliver at least 1.5x the states/sec of the `Recompute`
//!    oracle, the claimed payoff of the flat `SplitId` representation;
//! 3. **scaling** — the replay-free handoff regression rule, written to
//!    `BENCH_6.json` (override with `BENCH6_OUT`): in edge-indexed mode on
//!    the blow-up instances (`caterpillar-blowup`, `simulated-deadend`)
//!    the parallel engine at 1 thread must reach at least 95% of the
//!    serial events/sec (trees + states; engine overhead bounded) and at
//!    2 threads must strictly beat serial (scaling is real, not
//!    flat-to-negative) — on multi-core hosts; a single-core host
//!    degrades the 2-thread rule to an oversubscription overhead bound,
//!    recorded in the emitted document (`cores`, `par2_gate`).

use gentrius_bench::{banner, bench_config};
use gentrius_core::{run_serial, CountOnly, GentriusConfig, MappingMode, RunStats, StandProblem};
use gentrius_datagen::scenario::{
    blowup_showcase, deadend_blowup, heuristics_showcase, long_runner, plateau_with_chunks,
    trap_showcase,
};
use gentrius_parallel::obs::json::{self, JsonWriter};
use gentrius_parallel::{run_parallel, FlushThresholds, ParallelConfig};

const MODES: [MappingMode; 3] = [
    MappingMode::Recompute,
    MappingMode::Incremental,
    MappingMode::EdgeIndexed,
];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const SERIAL_REPS: usize = 3;
const SPEEDUP_GATE: f64 = 1.5;
/// Best-of reps for the scaling-gate cells (wall-clock only — counters
/// are checked for exactness separately).
const SCALING_REPS: usize = 5;
/// parallel(1) must retain at least this fraction of the serial rate.
const PAR1_MIN_RATIO: f64 = 0.95;
/// On a single-core host parallel(2) cannot beat serial; it must still
/// retain this fraction of the serial rate. Two timeslicing CPU-bound
/// workers pay real context-switch and cache-thrash costs — observed at
/// up to ~20% on the emission-heavy blow-up — so the bound is much
/// looser than par1's: its job is to catch catastrophic oversubscription
/// (the flat-to-negative scaling this PR eliminates showed up as ~35%
/// losses), not to measure scaling the hardware cannot express.
const PAR2_SINGLE_CORE_MIN_RATIO: f64 = 0.75;

/// One measured run of the grid.
struct Cell {
    stats: RunStats,
    secs: f64,
    complete: bool,
}

impl Cell {
    fn states_per_sec(&self) -> f64 {
        self.stats.intermediate_states as f64 / self.secs
    }

    fn dead_ends_per_sec(&self) -> f64 {
        self.stats.dead_ends as f64 / self.secs
    }

    /// Total enumeration events per second (stand trees + intermediate
    /// states; dead ends are a subset of the latter). The scaling gate
    /// uses this because the blow-up instances are tree-emission heavy:
    /// every event is one kernel application, whatever its kind.
    fn events_per_sec(&self) -> f64 {
        (self.stats.stand_trees + self.stats.intermediate_states) as f64 / self.secs
    }
}

fn config(mapping: MappingMode) -> GentriusConfig {
    GentriusConfig {
        mapping,
        ..bench_config(50_000, 100_000)
    }
}

/// Keeps whichever of `best` / `cell` has the lower wall-clock.
fn take_best(best: &mut Option<Cell>, cell: Cell) {
    if best.as_ref().is_none_or(|b| cell.secs < b.secs) {
        *best = Some(cell);
    }
}

/// One serial measurement.
fn serial_cell_once(problem: &StandProblem, cfg: &GentriusConfig) -> Cell {
    let r = run_serial(problem, cfg, &mut CountOnly).expect("serial run");
    Cell {
        stats: r.stats,
        secs: r.elapsed.as_secs_f64().max(1e-9),
        complete: r.stop.is_none(),
    }
}

/// Serial cell: best wall-clock of [`SERIAL_REPS`] runs (the counters are
/// deterministic, so only the timing varies).
fn serial_cell(problem: &StandProblem, cfg: &GentriusConfig) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..SERIAL_REPS {
        take_best(&mut best, serial_cell_once(problem, cfg));
    }
    best.expect("SERIAL_REPS > 0")
}

/// Parallel cell: best wall-clock of `reps` runs (the scaling gate calls
/// this once per interleaved rep; the grid measures once).
fn parallel_cell(
    problem: &StandProblem,
    cfg: &GentriusConfig,
    pcfg: &ParallelConfig,
    reps: usize,
) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..reps.max(1) {
        let r = run_parallel(problem, cfg, pcfg).expect("parallel run");
        let secs = r.elapsed.as_secs_f64().max(1e-9);
        if best.as_ref().is_none_or(|b| secs < b.secs) {
            best = Some(Cell {
                complete: r.complete(),
                stats: r.stats,
                secs,
            });
        }
    }
    best.expect("reps >= 1")
}

fn emit_cell(w: &mut JsonWriter, cell: &Cell, threads: Option<usize>) {
    w.begin_object();
    if let Some(t) = threads {
        w.key("threads").u64(t as u64);
    }
    w.key("stand_trees").u64(cell.stats.stand_trees);
    w.key("intermediate_states")
        .u64(cell.stats.intermediate_states);
    w.key("dead_ends").u64(cell.stats.dead_ends);
    w.key("seconds").f64(cell.secs);
    w.key("states_per_sec").f64(cell.states_per_sec());
    w.key("dead_ends_per_sec").f64(cell.dead_ends_per_sec());
    w.key("complete").bool(cell.complete);
    w.end_object();
}

fn main() {
    banner(
        "THROUGHPUT",
        "mapping-kernel enumeration rates (states/sec, dead-ends/sec)",
        "edge-indexed kernels beat per-state recomputation by >= 1.5x on \
         the medium simulated instance; all modes enumerate identically",
    );

    // (dataset, role) — long-runner-0 is the medium simulated instance the
    // speedup gate applies to; plateau-craft-5 is the caterpillar blow-up.
    let instances = [
        (long_runner(0), "simulated-medium"),
        (heuristics_showcase(), "simulated-small"),
        (trap_showcase().0, "simulated-deadend"),
        (plateau_with_chunks(5), "caterpillar-blowup"),
    ];

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("gentrius-throughput-bench");
    w.key("version").u64(1);
    w.key("issue").u64(5);
    w.key("limits").begin_object();
    w.key("max_stand_trees").u64(50_000);
    w.key("max_intermediate_states").u64(100_000);
    w.end_object();
    w.key("instances").begin_array();

    let mut gate_speedup = None;
    for (dataset, role) in &instances {
        let problem = dataset.problem().expect("scenario dataset is valid");
        println!(
            "\n{} ({role}: {} constraints, {} taxa)",
            dataset.name,
            problem.constraints().len(),
            problem.num_taxa()
        );
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>9} {:>12} {:>14}",
            "mapping", "threads", "states", "deadends", "secs", "states/s", "dead-ends/s"
        );

        w.begin_object();
        w.key("name").string(&dataset.name);
        w.key("role").string(role);
        w.key("modes").begin_array();

        let mut serial_stats: Option<RunStats> = None;
        let mut recompute_rate = None;
        for mode in MODES {
            let serial = serial_cell(&problem, &config(mode));
            // Conformance gate 1: the serial driver is deterministic, so
            // the counters may not depend on the mapping engine at all.
            match &serial_stats {
                None => serial_stats = Some(serial.stats),
                Some(reference) => assert_eq!(
                    reference, &serial.stats,
                    "{} {mode}: serial counters diverged across mapping modes",
                    dataset.name
                ),
            }
            println!(
                "{:<14} {:>8} {:>10} {:>10} {:>9.3} {:>12.0} {:>14.0}",
                mode.as_str(),
                "serial",
                serial.stats.intermediate_states,
                serial.stats.dead_ends,
                serial.secs,
                serial.states_per_sec(),
                serial.dead_ends_per_sec()
            );
            if *role == "simulated-medium" {
                match mode {
                    MappingMode::Recompute => recompute_rate = Some(serial.states_per_sec()),
                    MappingMode::EdgeIndexed => {
                        let base = recompute_rate.expect("Recompute measured first");
                        gate_speedup = Some(serial.states_per_sec() / base);
                    }
                    MappingMode::Incremental => {}
                }
            }

            w.begin_object();
            w.key("mapping").string(mode.as_str());
            w.key("serial");
            emit_cell(&mut w, &serial, None);
            w.key("parallel").begin_array();
            for threads in THREADS {
                let par = parallel_cell(
                    &problem,
                    &config(mode),
                    &ParallelConfig::with_threads(threads),
                    1,
                );
                // Conformance gate 2: a complete parallel run must land on
                // the complete serial totals exactly.
                if par.complete && serial.complete {
                    assert_eq!(
                        serial.stats, par.stats,
                        "{} {mode} threads={threads}: parallel totals diverged from serial",
                        dataset.name
                    );
                }
                println!(
                    "{:<14} {:>8} {:>10} {:>10} {:>9.3} {:>12.0} {:>14.0}",
                    mode.as_str(),
                    threads,
                    par.stats.intermediate_states,
                    par.stats.dead_ends,
                    par.secs,
                    par.states_per_sec(),
                    par.dead_ends_per_sec()
                );
                emit_cell(&mut w, &par, Some(threads));
            }
            w.end_array(); // parallel
            w.end_object(); // mode
        }
        w.end_array(); // modes
        w.end_object(); // instance
    }
    w.end_array(); // instances

    let speedup = gate_speedup.expect("medium instance measured");
    w.key("gates").begin_object();
    w.key("serial_counters_identical_across_modes").bool(true);
    w.key("complete_parallel_totals_match_serial").bool(true);
    w.key("edge_indexed_vs_recompute_states_per_sec")
        .f64(speedup);
    w.key("speedup_gate_min").f64(SPEEDUP_GATE);
    w.end_object();
    w.end_object();

    let doc = w.finish();
    json::validate(&doc).expect("emitted document must be valid JSON");
    let out = std::env::var("BENCH5_OUT").unwrap_or_else(|_| "BENCH_5.json".to_string());
    std::fs::write(&out, doc + "\n").expect("write BENCH_5.json");
    println!("\nwrote throughput grid to {out}");
    println!(
        "edge-indexed vs recompute on the medium simulated instance: {speedup:.2}x \
         (gate: >= {SPEEDUP_GATE}x)"
    );
    // Performance gate — after the JSON is on disk so a regression still
    // leaves the numbers behind for inspection.
    assert!(
        speedup >= SPEEDUP_GATE,
        "edge-indexed kernels only reached {speedup:.2}x of the Recompute \
         states/sec on the medium simulated instance (gate: {SPEEDUP_GATE}x)"
    );

    // Scaling-regression document + gate (BENCH_6): the replay-free
    // handoff must keep 1-thread engine overhead within 5% and make 2
    // threads strictly faster than serial on the blow-up instances —
    // where the host has a second core to offer. On single-core hosts
    // (CI sandboxes, cgroup-limited containers) wall-clock speedup from
    // a second thread is physically impossible, so the par2 gate degrades
    // to the same overhead bound as par1; the emitted document records
    // which gate applied. Both instances are sized so one run takes on
    // the order of a second — long enough that thread spawn and the
    // serial prefix are noise — and measured best-of-[`SCALING_REPS`]
    // on events/sec, under the coarse flush tuning the parallel engine
    // ships for exactly these emission-heavy workloads.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let par2_must_scale = cores >= 2;
    let scaling_cases = [
        // The crafted caterpillar blow-up: ~10^9-topology stand, capped by
        // the stand-tree budget; both engines do the same bounded work.
        (
            blowup_showcase(),
            "caterpillar-blowup",
            (8_000_000u64, 16_000_000u64),
        ),
        // The dead-end blow-up: *complete* enumeration (192k trees, 204k
        // states, 83k dead ends), so serial and parallel totals are
        // identical and throughput comparisons are exact.
        (
            deadend_blowup(),
            "simulated-deadend",
            (1_000_000u64, 400_000u64),
        ),
    ];
    let mut scaling: Vec<(String, String, f64, f64, f64)> = Vec::new();
    for (dataset, role, (max_trees, max_states)) in &scaling_cases {
        let problem = dataset.problem().expect("scaling dataset is valid");
        let cfg = GentriusConfig {
            mapping: MappingMode::EdgeIndexed,
            ..bench_config(*max_trees, *max_states)
        };
        let scaling_pcfg = |threads: usize| {
            let mut p = ParallelConfig::with_threads(threads);
            p.flush = FlushThresholds::coarse();
            p
        };
        // Interleave the reps round-robin (serial, par1, par2, serial, …)
        // rather than running each config's reps back-to-back: on a shared
        // host the background load drifts on the scale of seconds, and
        // interleaving exposes all three configs to the same drift before
        // best-of takes over.
        let mut serial: Option<Cell> = None;
        let mut par1: Option<Cell> = None;
        let mut par2: Option<Cell> = None;
        for _ in 0..SCALING_REPS {
            take_best(&mut serial, serial_cell_once(&problem, &cfg));
            take_best(
                &mut par1,
                parallel_cell(&problem, &cfg, &scaling_pcfg(1), 1),
            );
            take_best(
                &mut par2,
                parallel_cell(&problem, &cfg, &scaling_pcfg(2), 1),
            );
        }
        let (serial, par1, par2) = (
            serial.expect("SCALING_REPS > 0"),
            par1.expect("SCALING_REPS > 0"),
            par2.expect("SCALING_REPS > 0"),
        );
        // Conformance: when every run completes, the totals must agree
        // exactly (the dead-end instance always completes here).
        if serial.complete {
            for (t, par) in [(1, &par1), (2, &par2)] {
                assert!(par.complete, "{} threads={t}: spurious stop", dataset.name);
                assert_eq!(
                    serial.stats, par.stats,
                    "{} threads={t}: scaling totals diverged from serial",
                    dataset.name
                );
            }
        }
        scaling.push((
            dataset.name.clone(),
            (*role).to_string(),
            serial.events_per_sec(),
            par1.events_per_sec(),
            par2.events_per_sec(),
        ));
    }
    let mut sw = JsonWriter::new();
    sw.begin_object();
    sw.key("schema").string("gentrius-scaling-bench");
    sw.key("version").u64(1);
    sw.key("issue").u64(6);
    sw.key("mapping").string("edge-indexed");
    sw.key("reps").u64(SCALING_REPS as u64);
    sw.key("cores").u64(cores as u64);
    sw.key("par2_gate").string(if par2_must_scale {
        "beat-serial"
    } else {
        "overhead-bound (single-core host)"
    });
    sw.key("instances").begin_array();
    let mut all_pass = true;
    println!();
    for (name, role, serial_rate, par1, par2) in &scaling {
        let r1 = par1 / serial_rate;
        let r2 = par2 / serial_rate;
        let par2_ok = if par2_must_scale {
            r2 > 1.0
        } else {
            r2 >= PAR2_SINGLE_CORE_MIN_RATIO
        };
        let pass = r1 >= PAR1_MIN_RATIO && par2_ok;
        all_pass &= pass;
        println!(
            "scaling {role}: serial {serial_rate:.0} events/s, par1 {par1:.0} ({:.0}%), \
             par2 {par2:.0} ({:.0}%) — {}",
            r1 * 100.0,
            r2 * 100.0,
            if pass { "ok" } else { "FAIL" }
        );
        sw.begin_object();
        sw.key("name").string(name);
        sw.key("role").string(role);
        sw.key("serial_events_per_sec").f64(*serial_rate);
        sw.key("par1_events_per_sec").f64(*par1);
        sw.key("par2_events_per_sec").f64(*par2);
        sw.key("par1_ratio").f64(r1);
        sw.key("par2_ratio").f64(r2);
        sw.key("pass").bool(pass);
        sw.end_object();
    }
    sw.end_array();
    sw.key("gates").begin_object();
    sw.key("par1_min_ratio").f64(PAR1_MIN_RATIO);
    sw.key("par2_must_beat_serial").bool(par2_must_scale);
    sw.key("par2_single_core_min_ratio")
        .f64(PAR2_SINGLE_CORE_MIN_RATIO);
    sw.key("pass").bool(all_pass);
    sw.end_object();
    sw.end_object();
    let sdoc = sw.finish();
    json::validate(&sdoc).expect("scaling document must be valid JSON");
    let sout = std::env::var("BENCH6_OUT").unwrap_or_else(|_| "BENCH_6.json".to_string());
    std::fs::write(&sout, sdoc + "\n").expect("write BENCH_6.json");
    println!("wrote scaling gate to {sout}");
    // Scaling gate — again after the JSON hits disk.
    for (name, role, serial_rate, par1, par2) in &scaling {
        assert!(
            par1 / serial_rate >= PAR1_MIN_RATIO,
            "{name} ({role}): parallel(1) reached only {:.0}% of the serial \
             events/sec (gate: {:.0}%) — engine overhead regressed",
            par1 / serial_rate * 100.0,
            PAR1_MIN_RATIO * 100.0
        );
        if par2_must_scale {
            assert!(
                par2 > serial_rate,
                "{name} ({role}): parallel(2) at {par2:.0} events/s did not beat \
                 serial at {serial_rate:.0} — scaling regressed to flat-or-worse"
            );
        } else {
            assert!(
                par2 / serial_rate >= PAR2_SINGLE_CORE_MIN_RATIO,
                "{name} ({role}): single-core host, but parallel(2) at {par2:.0} \
                 events/s fell below {:.0}% of serial ({serial_rate:.0}) — \
                 oversubscription overhead regressed",
                PAR2_SINGLE_CORE_MIN_RATIO * 100.0
            );
        }
    }
}
