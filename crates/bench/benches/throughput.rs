//! Throughput — enumeration rates across the mapping kernels.
//!
//! Measures states/sec and dead-ends/sec for every mapping engine
//! (`Recompute`, `Incremental`, `EdgeIndexed`) on the seeded simulated
//! instances and the crafted caterpillar blow-up, serially and through the
//! parallel engine at 1/2/4/8 threads, and writes the whole grid to
//! `BENCH_5.json` (override the path with `BENCH5_OUT`) via the
//! workspace's hand-rolled JSON writer.
//!
//! The bench is also a gate, and exits non-zero when either fails:
//!
//! 1. **conformance** — per instance, all serial runs must report
//!    identical counters regardless of mapping mode, and every complete
//!    parallel run must reproduce the complete serial totals exactly;
//! 2. **performance** — on the medium simulated instance the edge-indexed
//!    kernels must deliver at least 1.5x the states/sec of the `Recompute`
//!    oracle, the claimed payoff of the flat `SplitId` representation.

use gentrius_bench::{banner, bench_config};
use gentrius_core::{run_serial, CountOnly, GentriusConfig, MappingMode, RunStats, StandProblem};
use gentrius_datagen::scenario::{
    heuristics_showcase, long_runner, plateau_with_chunks, trap_showcase,
};
use gentrius_parallel::obs::json::{self, JsonWriter};
use gentrius_parallel::{run_parallel, ParallelConfig};

const MODES: [MappingMode; 3] = [
    MappingMode::Recompute,
    MappingMode::Incremental,
    MappingMode::EdgeIndexed,
];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const SERIAL_REPS: usize = 3;
const SPEEDUP_GATE: f64 = 1.5;

/// One measured run of the grid.
struct Cell {
    stats: RunStats,
    secs: f64,
    complete: bool,
}

impl Cell {
    fn states_per_sec(&self) -> f64 {
        self.stats.intermediate_states as f64 / self.secs
    }

    fn dead_ends_per_sec(&self) -> f64 {
        self.stats.dead_ends as f64 / self.secs
    }
}

fn config(mapping: MappingMode) -> GentriusConfig {
    GentriusConfig {
        mapping,
        ..bench_config(50_000, 100_000)
    }
}

/// Serial cell: best wall-clock of [`SERIAL_REPS`] runs (the counters are
/// deterministic, so only the timing varies).
fn serial_cell(problem: &StandProblem, mapping: MappingMode) -> Cell {
    let cfg = config(mapping);
    let mut best: Option<Cell> = None;
    for _ in 0..SERIAL_REPS {
        let r = run_serial(problem, &cfg, &mut CountOnly).expect("serial run");
        let secs = r.elapsed.as_secs_f64().max(1e-9);
        if best.as_ref().is_none_or(|b| secs < b.secs) {
            best = Some(Cell {
                stats: r.stats,
                secs,
                complete: r.stop.is_none(),
            });
        }
    }
    best.expect("SERIAL_REPS > 0")
}

fn parallel_cell(problem: &StandProblem, mapping: MappingMode, threads: usize) -> Cell {
    let cfg = config(mapping);
    let pcfg = ParallelConfig::with_threads(threads);
    let r = run_parallel(problem, &cfg, &pcfg).expect("parallel run");
    Cell {
        complete: r.complete(),
        stats: r.stats,
        secs: r.elapsed.as_secs_f64().max(1e-9),
    }
}

fn emit_cell(w: &mut JsonWriter, cell: &Cell, threads: Option<usize>) {
    w.begin_object();
    if let Some(t) = threads {
        w.key("threads").u64(t as u64);
    }
    w.key("stand_trees").u64(cell.stats.stand_trees);
    w.key("intermediate_states")
        .u64(cell.stats.intermediate_states);
    w.key("dead_ends").u64(cell.stats.dead_ends);
    w.key("seconds").f64(cell.secs);
    w.key("states_per_sec").f64(cell.states_per_sec());
    w.key("dead_ends_per_sec").f64(cell.dead_ends_per_sec());
    w.key("complete").bool(cell.complete);
    w.end_object();
}

fn main() {
    banner(
        "THROUGHPUT",
        "mapping-kernel enumeration rates (states/sec, dead-ends/sec)",
        "edge-indexed kernels beat per-state recomputation by >= 1.5x on \
         the medium simulated instance; all modes enumerate identically",
    );

    // (dataset, role) — long-runner-0 is the medium simulated instance the
    // speedup gate applies to; plateau-craft-5 is the caterpillar blow-up.
    let instances = [
        (long_runner(0), "simulated-medium"),
        (heuristics_showcase(), "simulated-small"),
        (trap_showcase().0, "simulated-deadend"),
        (plateau_with_chunks(5), "caterpillar-blowup"),
    ];

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("gentrius-throughput-bench");
    w.key("version").u64(1);
    w.key("issue").u64(5);
    w.key("limits").begin_object();
    w.key("max_stand_trees").u64(50_000);
    w.key("max_intermediate_states").u64(100_000);
    w.end_object();
    w.key("instances").begin_array();

    let mut gate_speedup = None;
    for (dataset, role) in &instances {
        let problem = dataset.problem().expect("scenario dataset is valid");
        println!(
            "\n{} ({role}: {} constraints, {} taxa)",
            dataset.name,
            problem.constraints().len(),
            problem.num_taxa()
        );
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>9} {:>12} {:>14}",
            "mapping", "threads", "states", "deadends", "secs", "states/s", "dead-ends/s"
        );

        w.begin_object();
        w.key("name").string(&dataset.name);
        w.key("role").string(role);
        w.key("modes").begin_array();

        let mut serial_stats: Option<RunStats> = None;
        let mut recompute_rate = None;
        for mode in MODES {
            let serial = serial_cell(&problem, mode);
            // Conformance gate 1: the serial driver is deterministic, so
            // the counters may not depend on the mapping engine at all.
            match &serial_stats {
                None => serial_stats = Some(serial.stats),
                Some(reference) => assert_eq!(
                    reference, &serial.stats,
                    "{} {mode}: serial counters diverged across mapping modes",
                    dataset.name
                ),
            }
            println!(
                "{:<14} {:>8} {:>10} {:>10} {:>9.3} {:>12.0} {:>14.0}",
                mode.as_str(),
                "serial",
                serial.stats.intermediate_states,
                serial.stats.dead_ends,
                serial.secs,
                serial.states_per_sec(),
                serial.dead_ends_per_sec()
            );
            if *role == "simulated-medium" {
                match mode {
                    MappingMode::Recompute => recompute_rate = Some(serial.states_per_sec()),
                    MappingMode::EdgeIndexed => {
                        let base = recompute_rate.expect("Recompute measured first");
                        gate_speedup = Some(serial.states_per_sec() / base);
                    }
                    MappingMode::Incremental => {}
                }
            }

            w.begin_object();
            w.key("mapping").string(mode.as_str());
            w.key("serial");
            emit_cell(&mut w, &serial, None);
            w.key("parallel").begin_array();
            for threads in THREADS {
                let par = parallel_cell(&problem, mode, threads);
                // Conformance gate 2: a complete parallel run must land on
                // the complete serial totals exactly.
                if par.complete && serial.complete {
                    assert_eq!(
                        serial.stats, par.stats,
                        "{} {mode} threads={threads}: parallel totals diverged from serial",
                        dataset.name
                    );
                }
                println!(
                    "{:<14} {:>8} {:>10} {:>10} {:>9.3} {:>12.0} {:>14.0}",
                    mode.as_str(),
                    threads,
                    par.stats.intermediate_states,
                    par.stats.dead_ends,
                    par.secs,
                    par.states_per_sec(),
                    par.dead_ends_per_sec()
                );
                emit_cell(&mut w, &par, Some(threads));
            }
            w.end_array(); // parallel
            w.end_object(); // mode
        }
        w.end_array(); // modes
        w.end_object(); // instance
    }
    w.end_array(); // instances

    let speedup = gate_speedup.expect("medium instance measured");
    w.key("gates").begin_object();
    w.key("serial_counters_identical_across_modes").bool(true);
    w.key("complete_parallel_totals_match_serial").bool(true);
    w.key("edge_indexed_vs_recompute_states_per_sec")
        .f64(speedup);
    w.key("speedup_gate_min").f64(SPEEDUP_GATE);
    w.end_object();
    w.end_object();

    let doc = w.finish();
    json::validate(&doc).expect("emitted document must be valid JSON");
    let out = std::env::var("BENCH5_OUT").unwrap_or_else(|_| "BENCH_5.json".to_string());
    std::fs::write(&out, doc + "\n").expect("write BENCH_5.json");
    println!("\nwrote throughput grid to {out}");
    println!(
        "edge-indexed vs recompute on the medium simulated instance: {speedup:.2}x \
         (gate: >= {SPEEDUP_GATE}x)"
    );
    // Performance gate — after the JSON is on disk so a regression still
    // leaves the numbers behind for inspection.
    assert!(
        speedup >= SPEEDUP_GATE,
        "edge-indexed kernels only reached {speedup:.2}x of the Recompute \
         states/sec on the medium simulated instance (gate: {SPEEDUP_GATE}x)"
    );
}
