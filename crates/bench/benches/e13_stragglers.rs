//! E13 — heterogeneous cores / stragglers (our extension).
//!
//! The paper evaluates on a homogeneous Xeon; real shared servers are not
//! homogeneous. This experiment slows one simulated worker down (2x / 4x
//! period) and measures how much of the damage work stealing absorbs
//! compared to a static initial split. The stealing pool should degrade
//! gracefully (roughly by the lost capacity fraction), the static split by
//! the straggler's whole chunk.

use gentrius_bench::{banner, bench_config};
use gentrius_datagen::scenario::long_runner;
use gentrius_sim::{simulate, CostModel, SimConfig};

fn main() {
    banner(
        "E13",
        "heterogeneous cores: straggler absorption (our extension)",
        "stealing loses only the straggler's missing capacity; static \
         split is dragged down to the straggler's pace",
    );
    let dataset = long_runner(1);
    let problem = dataset.problem().expect("valid");
    let config = bench_config(400_000, 400_000);
    let threads = 8usize;

    let run = |periods: Option<Vec<u64>>, stealing: bool| {
        let mut sc = SimConfig::with_threads(threads);
        sc.cost = CostModel::ideal();
        sc.stealing = stealing;
        sc.speed_periods = periods;
        simulate(&problem, &config, &sc).expect("sim")
    };
    let homo = run(None, true);
    println!(
        "\ndataset {}: {} taxa, {} loci; homogeneous 8-thread makespan = {}\n",
        dataset.name,
        dataset.num_taxa(),
        dataset.num_loci(),
        homo.makespan
    );
    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>8}",
        "configuration", "steal", "static", "gain", "steals"
    );
    for (label, periods) in [
        ("1 worker at 1/2 speed", {
            let mut p = vec![1u64; threads];
            p[0] = 2;
            p
        }),
        ("1 worker at 1/4 speed", {
            let mut p = vec![1u64; threads];
            p[0] = 4;
            p
        }),
        ("half the workers at 1/2", {
            let mut p = vec![1u64; threads];
            for x in p.iter_mut().take(threads / 2) {
                *x = 2;
            }
            p
        }),
    ] {
        let rs = run(Some(periods.clone()), true);
        let rt = run(Some(periods), false);
        assert_eq!(rs.stats, rt.stats);
        println!(
            "{:<26} {:>12} {:>12} {:>9.2}x {:>8}",
            label,
            rs.makespan,
            rt.makespan,
            rt.makespan as f64 / rs.makespan as f64,
            rs.steals.iter().sum::<u64>()
        );
    }
    println!("\ngain = static / stealing makespan. An ideal absorber would lose only");
    println!("the straggler's missing capacity: 1/16 of throughput for one half-speed");
    println!("worker among 8 — the stealing column should sit near that bound.");
}
