//! E1 — §II-B heuristics ablation (the emp-data-42370 narrative).
//!
//! Paper numbers (emp-data-42370, stand = 2,448,225): both heuristics →
//! 547,786 states, 0 dead ends, 14 s; no initial-tree selection → 6,829,128
//! states (3.5× slowdown); no dynamic taxon insertion → 30,124,986 states,
//! 1,547,640 dead ends (12× slowdown). We reproduce the *shape*: both
//! heuristics fastest; disabling either inflates visited states (and,
//! without dynamic insertion, dead ends appear), while the stand size is
//! unchanged.

use gentrius_bench::banner;
use gentrius_core::{CountOnly, GentriusConfig, InitialTreeRule, StoppingRules, TaxonOrderRule};
use gentrius_datagen::scenario::heuristics_showcase;

fn main() {
    banner(
        "E1",
        "§II-B heuristics ablation (emp-data-42370 role)",
        "both heuristics << no-initial-tree << no-dynamic-insertion in states/time; \
         dead ends only without dynamic insertion; identical stand size",
    );
    let dataset = heuristics_showcase();
    let problem = dataset.problem().expect("valid dataset");
    println!(
        "dataset {}: {} taxa, {} loci, {:.1}% missing\n",
        dataset.name,
        dataset.num_taxa(),
        dataset.num_loci(),
        100.0 * dataset.missing_fraction()
    );

    // "Random constraint tree" ablation, deterministically: the index
    // furthest from the MaxOverlap choice.
    let best = problem
        .initial_tree_index(&InitialTreeRule::MaxOverlap)
        .expect("valid rule");
    let other = (0..problem.constraints().len())
        .rev()
        .find(|&i| i != best)
        .unwrap_or(best);

    let variants: [(&str, GentriusConfig); 3] = [
        (
            "both heuristics (paper default)",
            GentriusConfig {
                stopping: StoppingRules::unlimited(),
                ..GentriusConfig::default()
            },
        ),
        (
            "no initial-tree selection",
            GentriusConfig {
                initial_tree: InitialTreeRule::Index(other),
                stopping: StoppingRules::unlimited(),
                ..GentriusConfig::default()
            },
        ),
        (
            "no dynamic taxon insertion",
            GentriusConfig {
                taxon_order: TaxonOrderRule::ById,
                stopping: StoppingRules::unlimited(),
                ..GentriusConfig::default()
            },
        ),
    ];

    println!(
        "{:<34} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "configuration", "trees", "states", "dead ends", "time (s)", "slowdown"
    );
    let mut base_time = None;
    for (name, cfg) in variants {
        let r = gentrius_core::run_serial(&problem, &cfg, &mut CountOnly).expect("run");
        assert!(r.complete(), "E1 instances must enumerate fully");
        let secs = r.elapsed.as_secs_f64();
        let slowdown = base_time.map(|b: f64| secs / b).unwrap_or(1.0);
        println!(
            "{:<34} {:>10} {:>12} {:>10} {:>9.3} {:>8.1}x",
            name,
            r.stats.stand_trees,
            r.stats.intermediate_states,
            r.stats.dead_ends,
            secs,
            slowdown
        );
        if base_time.is_none() {
            base_time = Some(secs);
        }
    }
    println!();
    println!("paper: 1x / 3.5x / 12x slowdowns; dead ends only in the last row.");
}
