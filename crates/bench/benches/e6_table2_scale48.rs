//! E6 — Table II: scalability beyond 16 threads.
//!
//! Paper (§IV-E): two long datasets (serial 11,200 s and 17,163 s) at
//! 16/32/48 threads give 12.0/20.4/26.2 and 13.4/23.0/29.5 — still
//! scaling, but sub-linearly (≈55–60% efficiency at 48). Reproduced in
//! virtual time on the two long-runner scenario instances.

use gentrius_bench::{banner, bench_config};
use gentrius_datagen::scenario::long_runner;
use gentrius_sim::{simulate, SimConfig};

fn main() {
    banner(
        "E6",
        "Table II: speedups at 16/32/48 threads on two long datasets",
        "continued but sub-linear scaling: efficiency drops from ~75% at 16 \
         to ~55-60% at 48 threads",
    );
    let config = bench_config(1_000_000, 1_000_000);
    println!(
        "{:<16} {:>12} {:>8} {:>8} {:>8}",
        "dataset", "serial", "16", "32", "48"
    );
    for idx in [0u64, 1] {
        let dataset = long_runner(idx);
        let problem = dataset.problem().expect("valid");
        let serial = simulate(&problem, &config, &SimConfig::with_threads(1)).expect("sim");
        let mut row = format!("{:<16} {:>12} ", dataset.name, serial.makespan);
        for t in [16usize, 32, 48] {
            let r = simulate(&problem, &config, &SimConfig::with_threads(t)).expect("sim");
            row.push_str(&format!("{:>8.2}", r.speedup_vs(&serial)));
        }
        println!("{row}");
    }
    println!();
    println!("paper Table II: emp-data-60587 → 12.0/20.4/26.2; sim-data-4677 → 13.4/23.0/29.5.");
}
