//! E7 — Fig. 5 (a,b) and the §IV-A pathology narratives.
//!
//! (a) **Plateau**: an unbalanced workflow tree where the §III-A task
//! creation conditions (≥2 pending branches, ≥3 remaining taxa) never hold
//! inside the heavy regions — the paper saw plateaus of ~3× and ~5× on
//! sim-data-1511/1792/1795 (serial < 10 s). Our crafted `plateau-craft`
//! instance has ~5 unstealable chunks and must saturate near 5×.
//!
//! (b) **Stopping-rule trap**: serial descends into a dead-end-rich desert
//! and burns the rule-2 budget; the parallel descent reaches tree-dense
//! regions concurrently (sim-data-5001: serial 113 s / 0 trees vs 2
//! threads 1M trees in 5 s — 22.6× and, with a 100M budget, 220×). Our
//! trap scenario shows the same mechanism: adapted speedups well above the
//! thread count.

use gentrius_bench::{banner, PAPER_THREADS};
use gentrius_core::{GentriusConfig, StoppingRules};
use gentrius_datagen::scenario::{plateau_showcase, plateau_showcase_3, trap_showcase};
use gentrius_sim::{simulate, CostModel, SimConfig};

fn main() {
    banner(
        "E7",
        "Fig. 5 (a,b): plateau and super-linear pathologies",
        "(a) speedup saturates near the chunk count (~5) however many \
         threads; (b) adapted speedup exceeds the thread count",
    );

    // ----------------------- (a) plateaus -----------------------
    let cfg = GentriusConfig {
        stopping: StoppingRules::unlimited(),
        ..GentriusConfig::default()
    };
    for plateau in [plateau_showcase_3(), plateau_showcase()] {
        let problem = plateau.problem().expect("valid crafted instance");
        let ideal = |threads: usize| {
            let mut sc = SimConfig::with_threads(threads);
            sc.cost = CostModel::ideal();
            simulate(&problem, &cfg, &sc).expect("sim")
        };
        let serial = ideal(1);
        println!(
            "\nFig.5(a) — {}: {} taxa, {} constraints, serial cost {} ticks,",
            plateau.name,
            plateau.num_taxa(),
            plateau.num_loci(),
            serial.makespan
        );
        println!(
            "stand = {} trees (fully enumerated)\n",
            serial.stats.stand_trees
        );
        println!("{:>8} {:>9} {:>8}", "threads", "speedup", "stolen");
        for t in [1usize, 2, 4, 8, 12, 16, 32] {
            let r = ideal(t);
            println!(
                "{:>8} {:>9.2} {:>8}",
                t,
                r.speedup_vs(&serial),
                r.tasks_stolen
            );
        }
    }
    println!("\npaper: plateaus at ~3x / ~5x irrespective of the thread count —");
    println!("the two crafted instances reproduce exactly those two levels.");

    // ----------------------- (b) trap -----------------------
    let (trap, stopping) = trap_showcase();
    let problem = trap.problem().expect("valid dataset");
    let cfg = GentriusConfig {
        stopping,
        ..GentriusConfig::default()
    };
    println!(
        "\nFig.5(b) — {}: {} taxa, {} loci, {:.1}% missing; rule-2 budget = 50k states\n",
        trap.name,
        trap.num_taxa(),
        trap.num_loci(),
        100.0 * trap.missing_fraction()
    );
    let serial = simulate(&problem, &cfg, &SimConfig::with_threads(1)).expect("sim");
    println!(
        "serial: {} ticks, {} trees, {} dead ends, stop={:?}",
        serial.makespan, serial.stats.stand_trees, serial.stats.dead_ends, serial.stop
    );
    println!(
        "\n{:>8} {:>10} {:>10} {:>9} {:>9}",
        "threads", "ticks", "trees", "speedup", "adapted"
    );
    for &t in PAPER_THREADS.iter() {
        let r = simulate(&problem, &cfg, &SimConfig::with_threads(t)).expect("sim");
        println!(
            "{:>8} {:>10} {:>10} {:>9.2} {:>9.2}",
            t,
            r.makespan,
            r.stats.stand_trees,
            r.speedup_vs(&serial),
            r.adapted_speedup_vs(&serial)
        );
    }
    println!("\npaper: sim-data-5001 gave 22.6x at 2 threads (220x with a 10x budget);");
    println!("the mechanism — parallel descent finds trees the serial run never reaches");
    println!("before the stopping rule fires — is what the adapted column shows.");
}
