//! E11 — §V future work: alternative taxon-insertion-order heuristics.
//!
//! The paper closes with "we intend to explore different heuristics for
//! the taxon insertions order that can potentially further increase
//! parallel efficiency". This bench runs that exploration over a seeded
//! sweep: the paper's dynamic rule, a cheap static proxy (most-constrained
//! taxa first — no per-state admissibility scan), the constraint-count
//! tie-break variant, and the naive id order as the floor. Reported:
//! total states, dead ends and wall time over all enumerable instances,
//! plus 8-thread virtual parallel efficiency per heuristic.

use gentrius_bench::{banner, bench_config};
use gentrius_core::{CountOnly, GentriusConfig, TaxonOrderRule};
use gentrius_datagen::{simulated_dataset, SimulatedParams};
use gentrius_sim::{simulate, SimConfig};

fn main() {
    banner(
        "E11",
        "§V future work: taxon-insertion-order heuristics (our extension)",
        "dynamic variants dominate static ones; the constraint-count \
         tie-break is competitive with the paper's id tie-break; static \
         most-constrained-first beats naive id order",
    );
    let params = SimulatedParams {
        taxa: (16, 30),
        loci: (4, 8),
        missing: (0.35, 0.55),
        ..SimulatedParams::scaled()
    };
    let datasets: Vec<_> = (0..40).map(|i| simulated_dataset(&params, 71, i)).collect();
    let base = bench_config(120_000, 120_000);

    let heuristics: [(&str, TaxonOrderRule); 4] = [
        ("dynamic (paper)", TaxonOrderRule::Dynamic),
        (
            "dynamic, constraint tie-break",
            TaxonOrderRule::DynamicByConstraints,
        ),
        (
            "static most-constrained-first",
            TaxonOrderRule::MostConstrainedFirst,
        ),
        ("static by id (floor)", TaxonOrderRule::ById),
    ];

    // Keep only instances every heuristic can fully enumerate, so the
    // sums compare identical work.
    let mut usable = Vec::new();
    'outer: for d in &datasets {
        let Ok(p) = d.problem() else { continue };
        for (_, order) in &heuristics {
            let cfg = GentriusConfig {
                taxon_order: order.clone(),
                ..base.clone()
            };
            let r = gentrius_core::run_serial(&p, &cfg, &mut CountOnly).expect("run");
            if !r.complete() {
                continue 'outer;
            }
        }
        usable.push(d.clone());
    }
    println!(
        "\n{} of {} instances fully enumerable under every heuristic\n",
        usable.len(),
        datasets.len()
    );

    println!(
        "{:<32} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "heuristic", "trees", "states", "dead ends", "time (s)", "eff@8"
    );
    for (name, order) in &heuristics {
        let cfg = GentriusConfig {
            taxon_order: order.clone(),
            ..base.clone()
        };
        let mut trees = 0u64;
        let mut states = 0u64;
        let mut dead = 0u64;
        let mut secs = 0.0f64;
        let mut eff_sum = 0.0f64;
        let mut eff_n = 0usize;
        for d in &usable {
            let p = d.problem().expect("valid");
            let r = gentrius_core::run_serial(&p, &cfg, &mut CountOnly).expect("run");
            trees += r.stats.stand_trees;
            states += r.stats.intermediate_states;
            dead += r.stats.dead_ends;
            secs += r.elapsed.as_secs_f64();
            // Virtual 8-thread efficiency on the non-trivial instances.
            let s1 = simulate(&p, &cfg, &SimConfig::with_threads(1)).expect("sim");
            if s1.makespan >= 2_000 {
                let s8 = simulate(&p, &cfg, &SimConfig::with_threads(8)).expect("sim");
                eff_sum += s8.speedup_vs(&s1) / 8.0;
                eff_n += 1;
            }
        }
        println!(
            "{:<32} {:>10} {:>10} {:>10} {:>10.3} {:>7.0}%",
            name,
            trees,
            states,
            dead,
            secs,
            100.0 * eff_sum / eff_n.max(1) as f64
        );
    }
    println!();
    println!("identical tree totals prove all heuristics enumerate the same stands;");
    println!("states/dead-ends/time are the §II-B efficiency criteria, eff@8 the §V");
    println!("parallel-efficiency criterion the future-work note targets.");
}
