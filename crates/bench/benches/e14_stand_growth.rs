//! E14 — stand growth vs. missing data (our extension of the §I context).
//!
//! The paper motivates Gentrius with the RAxML Grove statistics (68% of
//! partitioned datasets have missing data, 19% above 30%) and the
//! intractability results: stands explode as coverage thins. This
//! experiment quantifies that explosion on the seeded generator — per
//! missingness level: how many instances stay singletons, how many exceed
//! the stopping budget, the median/max stand size, and the locus-overlap
//! connectivity (the structural predictor).

use gentrius_bench::{banner, bench_config};
use gentrius_core::CountOnly;
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use phylo::generate::ShapeModel;

fn main() {
    banner(
        "E14",
        "§I context: stand explosion as coverage thins (our extension)",
        "singleton stands at low missingness; rapidly growing median and \
         truncation rate beyond ~40%; overlap-graph connectivity decays",
    );
    let config = bench_config(100_000, 200_000);
    println!(
        "\n{:>8} {:>6} {:>11} {:>11} {:>11} {:>10} {:>10}",
        "missing", "n", "singleton", "truncated", "median", "max", "connected"
    );
    for missing in [0.1f64, 0.2, 0.3, 0.4, 0.5, 0.6] {
        let params = SimulatedParams {
            taxa: (14, 22),
            loci: (4, 7),
            missing: (missing, missing + 0.02),
            pattern: MissingPattern::Uniform,
            shape: ShapeModel::Uniform,
        };
        let mut sizes: Vec<u64> = Vec::new();
        let mut singleton = 0usize;
        let mut truncated = 0usize;
        let mut connected = 0usize;
        let total = 40u64;
        for i in 0..total {
            let d = simulated_dataset(&params, 91, i);
            if let Some(pam) = &d.pam {
                if pam.overlap_graph_connected(2) {
                    connected += 1;
                }
            }
            let Ok(p) = d.problem() else { continue };
            let r = gentrius_core::run_serial(&p, &config, &mut CountOnly).expect("run");
            if !r.complete() {
                truncated += 1;
                continue;
            }
            if r.stats.stand_trees == 1 {
                singleton += 1;
            }
            sizes.push(r.stats.stand_trees);
        }
        sizes.sort_unstable();
        let median = sizes.get(sizes.len() / 2).copied().unwrap_or(0);
        let max = sizes.last().copied().unwrap_or(0);
        println!(
            "{:>7.0}% {:>6} {:>10}% {:>10}% {:>11} {:>10} {:>9}%",
            100.0 * missing,
            total,
            100 * singleton as u64 / total,
            100 * truncated as u64 / total,
            median,
            max,
            100 * connected as u64 / total
        );
    }
    println!();
    println!("singleton = stand is exactly the input tree (no terrace effect);");
    println!("truncated = stopping rules fired at 100k trees / 200k states;");
    println!("connected = locus overlap graph connected at >= 2 shared taxa.");
}
