//! E12 — the SUPERB baseline comparison (our extension of the §I context).
//!
//! The paper motivates Gentrius by the limitation of the prior
//! SUPERB-based tools (terraphy, Biczok et al.): they need a
//! *comprehensive taxon* to root the input. This bench makes that
//! capability boundary measurable:
//!
//! * on comprehensive-core datasets, both algorithms count the same stand
//!   (algorithmic cross-validation) and wall-clock times are compared —
//!   SUPERB only counts while Gentrius enumerates, so SUPERB counting can
//!   be much faster on huge stands, which is exactly why stopping rule 1
//!   exists for Gentrius;
//! * on general missing-data datasets, SUPERB simply cannot run.

use gentrius_bench::banner;
use gentrius_core::{CountOnly, GentriusConfig, StoppingRules};
use gentrius_datagen::{simulated_dataset, MissingPattern, SimulatedParams};
use gentrius_superb::{comprehensive_taxon, superb_count, SuperbInputError};
use phylo::generate::ShapeModel;
use std::time::Instant;

fn main() {
    banner(
        "E12",
        "§I prior-art boundary: SUPERB (rooted) vs Gentrius (unrooted)",
        "identical counts where SUPERB can run; 'cannot root' everywhere \
         else; SUPERB counting beats enumeration on huge stands",
    );

    // ---- comprehensive-core family: both can run ----
    let core_params = SimulatedParams {
        taxa: (10, 20),
        loci: (3, 6),
        missing: (0.3, 0.5),
        pattern: MissingPattern::ComprehensiveCore,
        shape: ShapeModel::Uniform,
    };
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(2_000_000, 20_000_000),
        ..GentriusConfig::default()
    };
    println!(
        "\n{:<14} {:>6} {:>14} {:>14} {:>12} {:>12}",
        "dataset", "taxa", "gentrius", "superb", "gentrius(s)", "superb(s)"
    );
    let mut shown = 0;
    for i in 0..60u64 {
        if shown >= 8 {
            break;
        }
        let d = simulated_dataset(&core_params, 81, i);
        let Ok(p) = d.problem() else { continue };
        let t0 = Instant::now();
        let g = gentrius_core::run_serial(&p, &cfg, &mut CountOnly).expect("run");
        let tg = t0.elapsed().as_secs_f64();
        if !g.complete() || g.stats.stand_trees < 10 {
            continue;
        }
        let t1 = Instant::now();
        let s = match superb_count(&p) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let ts = t1.elapsed().as_secs_f64();
        assert_eq!(
            s, g.stats.stand_trees as u128,
            "{}: counters disagree",
            d.name
        );
        println!(
            "{:<14} {:>6} {:>14} {:>14} {:>12.4} {:>12.4}",
            d.name,
            d.num_taxa(),
            g.stats.stand_trees,
            s,
            tg,
            ts
        );
        shown += 1;
    }

    // ---- general family: the boundary ----
    let gen_params = SimulatedParams {
        taxa: (12, 24),
        loci: (4, 7),
        missing: (0.4, 0.55),
        pattern: MissingPattern::Uniform,
        shape: ShapeModel::Uniform,
    };
    let mut no_root = 0;
    let mut rootable = 0;
    let total = 60u64;
    for i in 0..total {
        let d = simulated_dataset(&gen_params, 82, i);
        let Ok(p) = d.problem() else { continue };
        if comprehensive_taxon(&p).is_none() {
            no_root += 1;
            assert!(matches!(
                superb_count(&p),
                Err(SuperbInputError::NoComprehensiveTaxon)
            ));
        } else {
            rootable += 1;
        }
    }
    println!(
        "\ngeneral missing-data sweep ({total} datasets, 40-55% missing): \
         SUPERB cannot root {no_root}, can root {rootable}."
    );
    println!("Gentrius runs on all of them — the paper's §I motivation, quantified.");
}
