//! E4 — Table I: adapted speedups for datasets that hit the time limit
//! serially.
//!
//! Paper (§IV-A): when the serial run is truncated by stopping rule 3 the
//! naive time ratio under-reports (emp-data-5873: 1.58× naive vs the real
//! benefit), so speedup is measured as stand-tree *throughput* relative to
//! serial: `ASP_N = (ST_N/T_N)/(ST_1/T_1)`. Table I reports ASP for five
//! such datasets at 2–16 threads, ranging ~1.9 → ~12.
//!
//! Here rule 3 is a virtual-tick budget set per dataset to half of its
//! full serial cost, guaranteeing serial truncation exactly as in the
//! paper's setting.

use gentrius_bench::{banner, bench_config, PAPER_THREADS};
use gentrius_datagen::scenario::long_runner;
use gentrius_sim::{simulate, SimConfig};

fn main() {
    banner(
        "E4",
        "Table I: adapted speedups under the time limit (rule 3)",
        "ASP grows close to linearly with threads even though naive time \
         ratios would saturate at ~2x (serial and parallel both run out the clock)",
    );
    let config = bench_config(500_000, 500_000);

    println!(
        "{:<16} {:>10}  {}",
        "dataset",
        "budget",
        PAPER_THREADS
            .iter()
            .map(|t| format!("{t:>6}"))
            .collect::<String>()
    );
    for idx in 0..5u64 {
        let dataset = long_runner(idx);
        let problem = dataset.problem().expect("valid dataset");
        // Full serial cost, then budget = half of it (forces rule 3).
        let full = simulate(&problem, &config, &SimConfig::with_threads(1)).expect("sim");
        let budget = (full.makespan / 2).max(1_000);
        let mut limited = SimConfig::with_threads(1);
        limited.max_ticks = Some(budget);
        let serial = simulate(&problem, &config, &limited).expect("sim");
        assert!(
            !serial.complete(),
            "{}: serial must hit the tick budget",
            dataset.name
        );
        let mut row = format!("{:<16} {:>10}  ", dataset.name, budget);
        for &t in &PAPER_THREADS {
            let mut sc = SimConfig::with_threads(t);
            sc.max_ticks = Some(budget);
            let r = simulate(&problem, &config, &sc).expect("sim");
            row.push_str(&format!("{:>6.1}", r.adapted_speedup_vs(&serial)));
        }
        println!("{row}");
    }
    println!();
    println!("paper Table I: 2→~1.6–2.4, 4→~3–4.5, 8→~7–8.7, 12→~8–9.7, 16→~9–12.2.");
}
