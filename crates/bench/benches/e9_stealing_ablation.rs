//! E9 — work stealing vs static initial split (the Fig. 3 motivation).
//!
//! The paper's whole §III design exists because the initial division of
//! the branch-and-bound tree is unpredictable and can be arbitrarily
//! unbalanced (Fig. 3); the thread pool re-balances by stealing. This
//! ablation runs the same scheduler with stealing disabled (threads keep
//! only their initial chunk) and reports the makespan ratio and the
//! per-worker busy-tick imbalance.

use gentrius_bench::{banner, bench_config};
use gentrius_datagen::scenario::trap_params;
use gentrius_datagen::simulated_dataset;
use gentrius_sim::{simulate, SimConfig};

fn main() {
    banner(
        "E9",
        "Fig. 3 motivation: work stealing vs static split (ablation)",
        "stealing never loses; its advantage grows with thread count and \
         with workflow-tree imbalance (max/min busy ratio)",
    );
    let config = bench_config(60_000, 60_000);
    let params = trap_params();
    // A handful of heterogeneous (clustered-missingness) instances.
    let datasets: Vec<_> = [0u64, 9, 13, 23, 29]
        .iter()
        .map(|&i| simulated_dataset(&params, 20230512, i))
        .collect();

    println!(
        "\n{:<14} {:>7} {:>11} {:>11} {:>8} {:>11} {:>11} {:>7}",
        "dataset", "threads", "steal", "static", "gain", "imb(steal)", "imb(static)", "steals"
    );
    for d in &datasets {
        let Ok(problem) = d.problem() else { continue };
        let serial = simulate(&problem, &config, &SimConfig::with_threads(1)).expect("sim");
        if !serial.complete() || serial.makespan < 2_000 {
            continue;
        }
        for threads in [4usize, 8, 16] {
            let steal_cfg = SimConfig::with_threads(threads);
            let mut static_cfg = steal_cfg.clone();
            static_cfg.stealing = false;
            let rs = simulate(&problem, &config, &steal_cfg).expect("sim");
            let rt = simulate(&problem, &config, &static_cfg).expect("sim");
            assert_eq!(rs.stats, rt.stats, "same work, different schedule");
            let imb = |r: &gentrius_sim::SimResult| {
                let max = *r.busy.iter().max().unwrap_or(&1) as f64;
                let min = *r.busy.iter().filter(|&&b| b > 0).min().unwrap_or(&1) as f64;
                max / min.max(1.0)
            };
            println!(
                "{:<14} {:>7} {:>11} {:>11} {:>7.2}x {:>11.1} {:>11.1} {:>7}",
                d.name,
                threads,
                rs.makespan,
                rt.makespan,
                rt.makespan as f64 / rs.makespan as f64,
                imb(&rs),
                imb(&rt),
                rs.steals.iter().sum::<u64>()
            );
        }
    }
    println!();
    println!("gain = static makespan / stealing makespan (>1 means stealing wins).");
    println!("imb = busiest / least-busy worker, the load-balance measure of Fig. 3.");
    println!("steals = tasks that moved between worker deques (victim-selection traffic).");

    // The randomized victim-selection policy must not change the result
    // set, and makespans should stay in a tight band across seeds. Exact
    // equality only holds for complete enumerations — a limit-truncated
    // run stops at a schedule-dependent point — so pick an instance that
    // finishes within the bounds.
    let sensitivity = datasets.iter().find_map(|d| {
        let problem = d.problem().ok()?;
        let r = simulate(&problem, &config, &SimConfig::with_threads(1)).ok()?;
        r.complete().then_some((d, problem))
    });
    if let Some((d, problem)) = sensitivity {
        println!("\nvictim-seed sensitivity ({}, 8 threads):", d.name);
        let mut base_stats = None;
        for seed in [0u64, 1, 7, 42] {
            let mut sc = SimConfig::with_threads(8);
            sc.victim_seed = seed;
            let r = simulate(&problem, &config, &sc).expect("sim");
            match &base_stats {
                None => base_stats = Some(r.stats),
                Some(b) => assert_eq!(&r.stats, b, "victim seed changed the result set"),
            }
            println!(
                "  seed {seed:>5}: makespan {:>9}  steals {:>5}",
                r.makespan,
                r.steals.iter().sum::<u64>()
            );
        }
    }
}
