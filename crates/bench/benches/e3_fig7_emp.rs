//! E3 — Fig. 7: per-thread speedup distributions on empirical data.
//!
//! Paper protocol (§IV-C): 3,097 RAxML-Grove datasets, same pipeline as
//! Fig. 6, 162 survivors; linear speedups once serial time exceeds 50 s.
//! Here the Grove extraction is replaced by the seeded empirical-like
//! generator (DESIGN.md substitution 2).

use gentrius_bench::{
    banner, bench_config, filter_pipeline, print_distribution_table, speedups_by_threads,
    PAPER_THREADS,
};
use gentrius_datagen::{empirical_dataset, EmpiricalParams};

fn main() {
    banner(
        "E3",
        "Fig. 7 (a–c): speedup distributions, empirical-like data",
        "same linear trend as Fig. 6, wider spread at low serial-cost \
         thresholds (empirical coverage is blockier)",
    );
    // Scaled Grove-like regime, nudged toward larger instances (see E2).
    let params = EmpiricalParams {
        taxa: (14, 36),
        loci: (3, 9),
        ..EmpiricalParams::scaled()
    };
    let sweep_size = 96;
    let datasets: Vec<_> = (0..sweep_size)
        .map(|i| empirical_dataset(&params, 62, i))
        .collect();
    let with_missing = datasets
        .iter()
        .filter(|d| d.missing_fraction() > 0.01)
        .count();
    println!(
        "sweep: {sweep_size} datasets, {with_missing} with missing data \
         ({:.0}%; RAxML Grove: 68%)\n",
        100.0 * with_missing as f64 / sweep_size as f64
    );
    let config = bench_config(120_000, 120_000);

    for (panel, min_ticks) in [("(a)", 1_000u64), ("(b)", 5_000), ("(c)", 20_000)] {
        let runs = filter_pipeline(datasets.iter().cloned(), &config, 16, min_ticks);
        let rows = speedups_by_threads(&runs, &config, &PAPER_THREADS);
        print_distribution_table(
            &format!(
                "\nFig.7{panel}: empirical-like data, serial cost >= {min_ticks} ticks \
                 ({} of {sweep_size} datasets)",
                runs.len()
            ),
            &rows,
        );
    }
    println!("\npaper: linear in threads for serial time > 50 s (panel c).");
}
