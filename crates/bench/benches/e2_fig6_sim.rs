//! E2 — Fig. 6: per-thread speedup distributions on simulated data.
//!
//! Paper protocol (§IV-B): 4,997 simulated instances (50–300 taxa, 5–30
//! loci, 30–50% missing); run at 16 threads, keep fully-enumerated
//! instances; re-run at {12,8,4,2,1} threads; drop instances with serial
//! execution time below 1 s / 10 s / 50 s (panels a/b/c). Result: linear
//! mean speedups in the thread count.
//!
//! Scaled reproduction (DESIGN.md substitution 3): a seeded sweep of the
//! same generator regime, speedups in virtual time, with the serial-cost
//! thresholds scaled to the instance sizes. The real-thread engine is
//! cross-checked at the host's core count at the end.

use gentrius_bench::{
    banner, bench_config, filter_pipeline, print_distribution_table, speedups_by_threads,
    PAPER_THREADS,
};
use gentrius_datagen::{simulated_dataset, SimulatedParams};
use gentrius_parallel::{run_parallel, ParallelConfig};

fn main() {
    banner(
        "E2",
        "Fig. 6 (a–c): speedup distributions, simulated data",
        "mean speedup grows ~linearly with threads; tighter distributions \
         at higher serial-cost thresholds",
    );
    // The scaled regime of SimulatedParams::scaled(), nudged toward larger
    // instances so the survivor pool mirrors the paper's "non-small" cut.
    let params = SimulatedParams {
        taxa: (16, 32),
        loci: (4, 8),
        missing: (0.35, 0.55),
        ..SimulatedParams::scaled()
    };
    let sweep_size = 96;
    let datasets: Vec<_> = (0..sweep_size)
        .map(|i| simulated_dataset(&params, 61, i))
        .collect();
    let config = bench_config(120_000, 120_000);

    // Panel thresholds: the paper's 1 s / 10 s / 50 s map to virtual
    // serial costs (1 tick = 1 state visit).
    for (panel, min_ticks) in [("(a)", 1_000u64), ("(b)", 5_000), ("(c)", 20_000)] {
        let runs = filter_pipeline(datasets.iter().cloned(), &config, 16, min_ticks);
        let rows = speedups_by_threads(&runs, &config, &PAPER_THREADS);
        print_distribution_table(
            &format!(
                "\nFig.6{panel}: simulated data, serial cost >= {min_ticks} ticks \
                 ({} of {sweep_size} datasets)",
                runs.len()
            ),
            &rows,
        );
    }

    // Wall-clock cross-check with the real thread-pool engine at the
    // host's core count (speedups cap at the hardware parallelism).
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("\nreal-thread cross-check at {hw} hardware threads (wall clock):");
    let runs = filter_pipeline(datasets.iter().cloned(), &config, 16, 10_000);
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "dataset", "serial (s)", "parallel (s)", "speedup"
    );
    for run in runs.iter().take(5) {
        let problem = run.dataset.problem().expect("valid");
        let t1 = run_parallel(&problem, &config, &ParallelConfig::with_threads(1))
            .expect("run")
            .elapsed
            .as_secs_f64();
        let tn = run_parallel(&problem, &config, &ParallelConfig::with_threads(hw))
            .expect("run")
            .elapsed
            .as_secs_f64();
        println!(
            "{:<14} {:>12.4} {:>12.4} {:>9.2}",
            run.dataset.name,
            t1,
            tn,
            t1 / tn.max(1e-9)
        );
    }
    println!("\npaper: mean speedups ~2/4/8/12/16 at 2/4/8/12/16 threads (panel c).");
}
