//! Smoke — CI-sized end-to-end run with metrics export.
//!
//! Not a paper experiment: this target exists so CI can exercise the full
//! bench stack (datagen → parallel engine → observability export) on a
//! small simulated instance in seconds, and archive the schema-versioned
//! run-metrics JSON as the per-commit perf trajectory artifact
//! (`BENCH_smoke.json` by default; override with `SMOKE_OUT`). It also
//! streams the same instance's stand into a `.stand` container and
//! verifies the readback (`BENCH_smoke.stand`; override with
//! `CONTAINER_OUT`), so the on-disk path is exercised every commit.

use gentrius_bench::{banner, bench_config};
use gentrius_core::run_serial;
use gentrius_datagen::scenario::long_runner;
use gentrius_parallel::obs::{json, write_run_metrics, METRICS_VERSION};
use gentrius_parallel::{run_parallel, ParallelConfig};
use gentrius_standfile::{Container, ContainerSink};
use std::path::Path;
use std::time::Duration;

fn main() {
    banner(
        "SMOKE",
        "CI smoke: engine + observability export on a small instance",
        "finishes in seconds; writes valid schema-v1 run metrics",
    );
    let mut config = bench_config(50_000, 100_000);
    // Belt-and-braces for shared CI runners: the run-monitor turns this
    // into a hard wall-clock ceiling even if the counts never trip.
    config.stopping.max_time = Some(Duration::from_secs(30));

    let dataset = long_runner(0);
    let problem = dataset.problem().expect("generated dataset is valid");
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(2);
    let mut pcfg = ParallelConfig::with_threads(threads);
    pcfg.trace = true;
    let result = run_parallel(&problem, &config, &pcfg).expect("smoke run");

    println!(
        "\n{:<16} {:>8} {:>12} {:>12} {:>10}",
        "dataset", "threads", "stand trees", "states", "seconds"
    );
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>10.3}",
        dataset.name,
        threads,
        result.stats.stand_trees,
        result.stats.intermediate_states,
        result.elapsed.as_secs_f64()
    );
    println!(
        "stop: {:?}; monitor ticks: {}; heartbeats: {}",
        result.stop,
        result.monitor.ticks,
        result.monitor.heartbeats.len()
    );

    let out = std::env::var("SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    let mut buf = Vec::new();
    write_run_metrics(&mut buf, &result, &pcfg.flush).expect("serialize metrics");
    let doc = String::from_utf8(buf).expect("metrics are UTF-8");
    json::validate(doc.trim_end()).expect("metrics must be valid JSON");
    std::fs::write(&out, &doc).expect("write metrics file");
    println!("\nwrote run metrics (schema v{METRICS_VERSION}) to {out}");

    // Container artifact: stream the same instance into a `.stand` file
    // and verify the readback end-to-end (encode, block framing, footer
    // index, random access).
    let cont_out =
        std::env::var("CONTAINER_OUT").unwrap_or_else(|_| "BENCH_smoke.stand".to_string());
    let mut sink = ContainerSink::create(Path::new(&cont_out), &dataset.taxa);
    let serial = run_serial(&problem, &config, &mut sink).expect("serial container run");
    let summary = sink.finish().expect("finish container");
    assert_eq!(
        summary.trees, serial.stats.stand_trees,
        "container must hold every generated stand tree"
    );
    let mut container = Container::open(Path::new(&cont_out)).expect("reopen container");
    assert_eq!(container.len(), summary.trees);
    if !container.is_empty() {
        container
            .newick(container.len() - 1)
            .expect("random access to the last tree");
    }
    println!(
        "wrote stand container ({} trees, {} blocks) to {cont_out}",
        summary.trees, summary.blocks
    );
}
