//! E5 — Fig. 8: speedup distributions distorted by stopping rules 1/2.
//!
//! Paper (§IV-D): 50 simulated + 50 empirical datasets that trigger rule 1
//! (stand trees) or rule 2 (states) under reduced thresholds (10M each);
//! speedups measured naively as time ratios. The distributions are
//! "substantially distorted", with a super-linear tail (sr_sim-data-44:
//! 5×/25×/41×/59× at 4/8/12/16 threads) caused by the unbalanced
//! branch-and-bound workflow interacting with the limits.
//!
//! Scaled reproduction: the clustered-missingness generator (the
//! heterogeneous family where distortion occurs), reduced limits, keeping
//! the first 50 instances per family that trigger rule 1 or 2 serially.

use gentrius_bench::{banner, bench_config, print_distribution_table, PAPER_THREADS};
use gentrius_datagen::scenario::trap_params;
use gentrius_datagen::{empirical_dataset, simulated_dataset, Dataset, EmpiricalParams};
use gentrius_sim::{simulate, SimConfig, SimResult};

fn collect_triggering(
    gen: impl Fn(u64) -> Dataset,
    config: &gentrius_core::GentriusConfig,
    want: usize,
    scan_budget: u64,
) -> Vec<(Dataset, SimResult)> {
    // Rule-2 (state limit) cases are rarer than rule-1 but drive the most
    // spectacular distortions, so they are always kept; rule-1 cases fill
    // the remaining quota.
    let mut rule1 = Vec::new();
    let mut rule2 = Vec::new();
    for i in 0..scan_budget {
        if rule1.len() + rule2.len() >= want && !rule2.is_empty() {
            break;
        }
        let d = gen(i);
        let Ok(p) = d.problem() else { continue };
        let serial = simulate(&p, config, &SimConfig::with_threads(1)).expect("sim");
        if serial.complete() || serial.makespan < 500 {
            continue; // keep only rule-1/2-triggering, non-trivial runs
        }
        if serial.stop == Some(gentrius_core::StopCause::StateLimit) {
            rule2.push((d, serial));
        } else if rule1.len() < want {
            rule1.push((d, serial));
        }
    }
    rule1.truncate(want.saturating_sub(rule2.len()));
    rule1.extend(rule2);
    rule1
}

fn distorted_rows(
    runs: &[(Dataset, SimResult)],
    config: &gentrius_core::GentriusConfig,
) -> Vec<(usize, Vec<f64>)> {
    PAPER_THREADS
        .iter()
        .map(|&t| {
            let mut v = Vec::new();
            for (d, serial) in runs {
                let p = d.problem().expect("valid");
                let r = simulate(&p, config, &SimConfig::with_threads(t)).expect("sim");
                v.push(r.speedup_vs(serial)); // naive time ratio, as in §IV-D
            }
            (t, v)
        })
        .collect()
}

fn main() {
    banner(
        "E5",
        "Fig. 8 (a,b): speedup distributions under stopping rules 1/2",
        "distributions wider than Figs. 6–7, with sub-linear cases and a \
         super-linear tail (max >> threads is possible)",
    );
    // Reduced thresholds (the paper cuts 10^9 → 10^7; we cut 60k → 25k).
    let config = bench_config(25_000, 25_000);

    let sim_params = trap_params();
    let sim_runs = collect_triggering(
        |i| simulated_dataset(&sim_params, gentrius_datagen::scenario::SCENARIO_SEED, i),
        &config,
        50,
        400,
    );
    let rule1 = sim_runs
        .iter()
        .filter(|(_, s)| s.stop == Some(gentrius_core::StopCause::StandTreeLimit))
        .count();
    print_distribution_table(
        &format!(
            "\nFig.8(a): {} simulated datasets triggering rules 1/2 \
             ({rule1} rule 1, {} rule 2); naive time-ratio speedups",
            sim_runs.len(),
            sim_runs.len() - rule1
        ),
        &distorted_rows(&sim_runs, &config),
    );

    let emp_params = EmpiricalParams {
        taxa: (16, 34),
        loci: (4, 9),
        frac_with_missing: 0.9,
        frac_heavy_missing: 0.5,
    };
    let emp_runs = collect_triggering(|i| empirical_dataset(&emp_params, 64, i), &config, 50, 400);
    print_distribution_table(
        &format!(
            "\nFig.8(b): {} empirical-like datasets triggering rules 1/2; \
             naive time-ratio speedups",
            emp_runs.len()
        ),
        &distorted_rows(&emp_runs, &config),
    );

    println!();
    println!("paper: both panels substantially distorted vs Figs. 6–7; a few");
    println!("simulated datasets show super-linear speedups (sr_sim-data-44:");
    println!("5x/25x/41x/59x at 4/8/12/16 threads).");
}
