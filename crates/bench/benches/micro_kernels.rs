//! M1 — criterion micro-benchmarks of the hot kernels.
//!
//! Covers the operations that dominate a Gentrius run: the tree edit pair
//! (insert/undo), the attachment projection (the mapping kernel the paper
//! profiles at 15–30% of runtime), restriction, Newick round-trips, and
//! end-to-end serial state throughput (the paper's "hundreds of thousands
//! of states per second").

use criterion::{criterion_group, criterion_main, Criterion};
use gentrius_core::mapping::attachment_map;
use gentrius_core::{CountOnly, GentriusConfig, StoppingRules};
use gentrius_datagen::scenario::heuristics_showcase;
use gentrius_parallel::counters::{FlushThresholds, GlobalCounters, LocalCounters};
use gentrius_parallel::pool::TaskPool;
use gentrius_parallel::task::Task;
use phylo::bitset::BitSet;
use phylo::generate::{random_tree, random_tree_on_n, ShapeModel};
use phylo::newick::{parse_newick, to_newick};
use phylo::ops::restrict;
use phylo::taxa::{TaxonId, TaxonSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Duration;

/// A 200-leaf tree over a 201-taxon universe (taxon 200 left free so it
/// can be inserted/removed in the edit benchmark).
fn tree_200() -> phylo::Tree {
    let ids: Vec<TaxonId> = (0..200).map(TaxonId).collect();
    random_tree(
        201,
        &ids,
        ShapeModel::Uniform,
        &mut ChaCha8Rng::seed_from_u64(11),
    )
}

fn bench_tree_edits(c: &mut Criterion) {
    let mut tree = tree_200();
    let edge = tree.edges().nth(137).expect("edge exists");
    c.bench_function("tree/insert_plus_remove_200_taxa", |b| {
        b.iter(|| {
            let ins = tree.insert_leaf_on_edge(TaxonId(200), black_box(edge));
            tree.remove_insertion(&ins);
        })
    });
}

fn bench_attachment_map(c: &mut Criterion) {
    let tree = tree_200();
    let c100 = BitSet::from_iter(201, (0..200).step_by(2));
    c.bench_function("mapping/attachment_map_200_taxa_c100", |b| {
        b.iter(|| black_box(attachment_map(&tree, black_box(&c100))))
    });
    let c10 = BitSet::from_iter(201, (0..200).step_by(20));
    c.bench_function("mapping/attachment_map_200_taxa_c10", |b| {
        b.iter(|| black_box(attachment_map(&tree, black_box(&c10))))
    });
}

fn bench_restrict(c: &mut Criterion) {
    let tree = tree_200();
    let keep = BitSet::from_iter(201, (0..200).step_by(2));
    c.bench_function("ops/restrict_200_to_100", |b| {
        b.iter(|| black_box(restrict(&tree, black_box(&keep))))
    });
}

fn bench_newick(c: &mut Criterion) {
    let taxa = TaxonSet::with_synthetic(201);
    let tree = tree_200();
    let s = to_newick(&tree, &taxa);
    c.bench_function("newick/write_200_taxa", |b| {
        b.iter(|| black_box(to_newick(&tree, &taxa)))
    });
    c.bench_function("newick/parse_200_taxa", |b| {
        b.iter(|| black_box(parse_newick(black_box(&s), &taxa).expect("parses")))
    });
}

fn bench_state_throughput(c: &mut Criterion) {
    let dataset = heuristics_showcase();
    let problem = dataset.problem().expect("valid");
    let cfg = GentriusConfig {
        stopping: StoppingRules::counts(100_000, 20_000),
        ..GentriusConfig::default()
    };
    let mut group = c.benchmark_group("gentrius");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("serial_20k_states", |b| {
        b.iter(|| {
            black_box(gentrius_core::run_serial(&problem, &cfg, &mut CountOnly).expect("run"))
        })
    });
    group.finish();
}

fn bench_parallel_primitives(c: &mut Criterion) {
    // Owner-side deque push+pop (the §III-A communication cost on the
    // fast path: no lock, no syscall).
    c.bench_function("pool/push_pop", |b| {
        let pool = TaskPool::new(1, 64);
        let worker = pool.worker(0);
        // A phantom in-flight task keeps the pool from declaring itself
        // drained between iterations (termination detection is one-shot).
        pool.preregister_active(1);
        let task = Task::probe(TaxonId(0), vec![phylo::EdgeId(3), phylo::EdgeId(7)]);
        b.iter(|| {
            worker.try_push(black_box(task.clone())).expect("room");
            let t = worker.next_task().expect("just pushed");
            worker.task_done();
            black_box(t)
        })
    });
    // Cross-worker steal (the FIFO end of the Chase–Lev deque).
    c.bench_function("pool/push_steal", |b| {
        let pool = TaskPool::new(2, 64);
        let owner = pool.worker(0);
        let thief = pool.worker(1);
        pool.preregister_active(1);
        let task = Task::probe(TaxonId(0), vec![phylo::EdgeId(3), phylo::EdgeId(7)]);
        b.iter(|| {
            owner.try_push(black_box(task.clone())).expect("room");
            let t = thief.next_task().expect("just pushed");
            thief.task_done();
            black_box(t)
        })
    });
    // Batched vs unbatched counter increments (the §III-B cost).
    let rules = gentrius_core::StoppingRules::unlimited();
    c.bench_function("counters/batched_increment", |b| {
        let global = GlobalCounters::new(rules.clone());
        let mut local = LocalCounters::new(&global, FlushThresholds::paper_defaults());
        b.iter(|| local.intermediate_state())
    });
    c.bench_function("counters/unbatched_increment", |b| {
        let global = GlobalCounters::new(rules.clone());
        let mut local = LocalCounters::new(&global, FlushThresholds::unbatched());
        b.iter(|| local.intermediate_state())
    });
}

fn bench_superb(c: &mut Criterion) {
    use gentrius_core::StandProblem;
    // SUPERB counting on a comprehensive-core instance.
    let params = gentrius_datagen::SimulatedParams {
        taxa: (16, 16),
        loci: (4, 4),
        missing: (0.35, 0.45),
        pattern: gentrius_datagen::MissingPattern::ComprehensiveCore,
        shape: ShapeModel::Uniform,
    };
    let d = gentrius_datagen::simulated_dataset(&params, 4242, 0);
    let p: StandProblem = d.problem().expect("valid");
    if gentrius_superb::comprehensive_taxon(&p).is_some() {
        c.bench_function("superb/count_16_taxa", |b| {
            b.iter(|| black_box(gentrius_superb::superb_count(black_box(&p))))
        });
    }
}

fn bench_random_generation(c: &mut Criterion) {
    c.bench_function("generate/random_tree_200", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| black_box(random_tree_on_n(200, ShapeModel::Uniform, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_tree_edits,
    bench_attachment_map,
    bench_restrict,
    bench_newick,
    bench_state_throughput,
    bench_parallel_primitives,
    bench_superb,
    bench_random_generation
);
criterion_main!(benches);
