//! E8 — §III-B counter-batching ablation.
//!
//! The paper updates the global stand-tree / state / dead-end atomics only
//! every 2^10 / 2^13 / 2^10 local increments and reports a 2–5% parallel
//! speedup improvement at 16 threads (e.g. +4% on emp-data-3802) over
//! unbatched updates.
//!
//! Virtual-time reproduction: one state transition is worth several
//! atomic-flush costs (the paper's magnitudes: a state visit is a few µs,
//! an atomic RMW up to a few thousand cycles ≈ a fraction of a µs), so we
//! charge `step = 8` ticks per transition and `flush = 1` tick per global
//! update and compare batched vs unbatched makespans at 16 threads. The
//! real threaded engine is also exercised at the host's core count.

use gentrius_bench::{banner, bench_config};
use gentrius_datagen::scenario::long_runner;
use gentrius_parallel::counters::FlushThresholds;
use gentrius_parallel::{run_parallel, ParallelConfig};
use gentrius_sim::{simulate, CostModel, SimConfig};

fn main() {
    banner(
        "E8",
        "§III-B: batched vs unbatched global counters",
        "a few percent faster with batching at 16 threads (paper: 2-5%)",
    );
    let config = bench_config(400_000, 400_000);
    // Calibration: a state visit is worth ~32 atomic-flush costs (state ≈
    // 3-10 µs at "hundreds of thousands of states per second"; a contended
    // atomic RMW ≈ 0.1-0.3 µs per §III-B's cited cost model).
    let cost = CostModel {
        step: 32,
        replay_per_insertion: 32,
        task_overhead: 160,
        submit_overhead: 40,
        flush: 1,
    };

    println!(
        "\n{:<16} {:>8} {:>14} {:>14} {:>12}",
        "dataset", "threads", "batched", "unbatched", "improvement"
    );
    for idx in [0u64, 1] {
        let dataset = long_runner(idx);
        let problem = dataset.problem().expect("valid");
        for threads in [4usize, 16] {
            let mut batched = SimConfig::with_threads(threads);
            batched.cost = cost;
            batched.flush = FlushThresholds::paper_defaults();
            let mut unbatched = batched.clone();
            unbatched.flush = FlushThresholds::unbatched();
            let rb = simulate(&problem, &config, &batched).expect("sim");
            let ru = simulate(&problem, &config, &unbatched).expect("sim");
            assert_eq!(rb.stats.stand_trees, ru.stats.stand_trees);
            let gain = 100.0 * (ru.makespan as f64 / rb.makespan as f64 - 1.0);
            println!(
                "{:<16} {:>8} {:>14} {:>14} {:>11.1}%",
                dataset.name, threads, rb.makespan, ru.makespan, gain
            );
        }
    }

    // Wall-clock check with the real engine (2 hardware cores: the effect
    // is smaller because contention grows with the thread count).
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let dataset = long_runner(0);
    let problem = dataset.problem().expect("valid");
    let mut pc_b = ParallelConfig::with_threads(hw);
    pc_b.flush = FlushThresholds::paper_defaults();
    let mut pc_u = ParallelConfig::with_threads(hw);
    pc_u.flush = FlushThresholds::unbatched();
    // Warm-up + best-of-3 to tame wall-clock noise.
    let best = |pc: &ParallelConfig| {
        (0..3)
            .map(|_| {
                run_parallel(&problem, &config, pc)
                    .expect("run")
                    .elapsed
                    .as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let tb = best(&pc_b);
    let tu = best(&pc_u);
    println!(
        "\nreal engine at {hw} threads (best of 3): batched {tb:.3}s, unbatched {tu:.3}s \
         ({:+.1}%)",
        100.0 * (tu / tb - 1.0)
    );
    println!("\npaper: 2-5% average improvement at 16 threads (4% on emp-data-3802).");
}
