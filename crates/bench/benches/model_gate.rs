//! Model gate — Galton–Watson predictions vs measured behavior (BENCH_10).
//!
//! For every class of the adversarial zoo, fits a GW offspring model from
//! a budget-capped profiling run, predicts total stand trees /
//! intermediate states / dead ends and the speedup at 2/4/8 threads, then
//! measures the same quantities with the virtual-time simulator and gates
//! on divergence beyond the fitted confidence band (counts) or the
//! [`SCALING_BAND`] factor (scaling). Writes the full comparison to
//! `BENCH_10.json` (override the path with `BENCH10_OUT`) *before* the
//! gate asserts, so a regression still leaves the numbers behind.

use gentrius_bench::banner;
use gentrius_bench::model_gate::{
    gate_passes, run_model_gate, zoo_classes, MeasureConfig, SCALING_BAND,
};
use gentrius_parallel::obs::json::{self, JsonWriter};

fn main() {
    banner(
        "MODEL-GATE",
        "GW workload model vs measured counts and scaling (Figs. 5-7 shapes)",
        "every zoo class inside its fitted count band; measured speedups \
         within the scaling band of the GW scheduler's prediction",
    );

    let classes = zoo_classes();
    let results = run_model_gate(&classes, &MeasureConfig::default());

    println!(
        "{:<20} {:>6} {:>11} {:>11} {:>6} {:>6}",
        "class", "depth", "pred", "measured", "band", "ok"
    );
    for r in &results {
        println!(
            "{:<20} {:>6} {:>11.0} {:>11} {:>6.2} {:>6}",
            r.key,
            r.depth,
            r.predicted.stand_trees,
            r.measured_trees,
            r.predicted.band,
            if r.counts_ok { "ok" } else { "FAIL" }
        );
        for t in &r.threads {
            println!(
                "{:<20} {:>6} {:>11.2} {:>11} {:>6.2} {:>6}",
                format!("  speedup x{}", t.threads),
                "",
                t.predicted_speedup,
                format!("{:.2}", t.measured_speedup),
                SCALING_BAND,
                if t.ok { "ok" } else { "FAIL" }
            );
        }
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("gentrius-model-gate-bench");
    w.key("version").u64(1);
    w.key("issue").u64(10);
    w.key("scaling_band").f64(SCALING_BAND);
    w.key("classes").begin_array();
    for r in &results {
        w.begin_object();
        w.key("key").string(r.key);
        w.key("depth").u64(r.depth as u64);
        w.key("profile_events").u64(r.profile_events);
        w.key("profile_truncated").bool(r.profile_truncated);
        w.key("predicted").begin_object();
        w.key("stand_trees").f64(r.predicted.stand_trees);
        w.key("intermediate_states")
            .f64(r.predicted.intermediate_states);
        w.key("dead_ends").f64(r.predicted.dead_ends);
        w.key("band").f64(r.predicted.band);
        w.end_object();
        w.key("measured").begin_object();
        w.key("stand_trees").u64(r.measured_trees);
        w.key("intermediate_states").u64(r.measured_states);
        w.key("dead_ends").u64(r.measured_dead_ends);
        w.key("serial_makespan").u64(r.serial_makespan);
        w.end_object();
        w.key("counts_ok").bool(r.counts_ok);
        w.key("scaling").begin_array();
        for t in &r.threads {
            w.begin_object();
            w.key("threads").u64(t.threads as u64);
            w.key("predicted_speedup").f64(t.predicted_speedup);
            w.key("measured_speedup").f64(t.measured_speedup);
            w.key("events_per_tick").f64(t.events_per_tick);
            w.key("ok").bool(t.ok);
            w.end_object();
        }
        w.end_array();
        w.key("pass").bool(r.pass());
        w.end_object();
    }
    w.end_array();
    w.key("pass").bool(gate_passes(&results));
    w.end_object();

    let doc = w.finish();
    json::validate(&doc).expect("emitted document must be valid JSON");
    let out = std::env::var("BENCH10_OUT").unwrap_or_else(|_| "BENCH_10.json".to_string());
    std::fs::write(&out, doc + "\n").expect("write BENCH_10.json");
    println!("\nwrote model-gate comparison to {out}");

    // Gate — after the JSON hits disk.
    for r in &results {
        assert!(
            r.counts_ok,
            "{}: measured counts (trees {}, states {}, dead ends {}) fell \
             outside the GW band ({:.2}x around trees {:.0}, states {:.0}, \
             dead ends {:.0})",
            r.key,
            r.measured_trees,
            r.measured_states,
            r.measured_dead_ends,
            r.predicted.band,
            r.predicted.stand_trees,
            r.predicted.intermediate_states,
            r.predicted.dead_ends
        );
        for t in &r.threads {
            assert!(
                t.ok,
                "{} x{}: measured speedup {:.2} diverged from the GW \
                 scheduler's {:.2} beyond the {SCALING_BAND}x band",
                r.key, t.threads, t.measured_speedup, t.predicted_speedup
            );
        }
    }
    println!("model gate passed on all {} classes", results.len());
}
