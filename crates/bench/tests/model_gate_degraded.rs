//! The model gate must actually gate: a healthy measurement passes at
//! HEAD, and an intentionally-degraded scheduler configuration (static
//! initial split only — no task creation, no stealing) diverges from the
//! GW model's scaling prediction and fails. This is the non-zero-exit
//! demonstration required of `BENCH_10`: the bench binary asserts on
//! exactly the `gate_passes` verdict tested here.

use gentrius_bench::model_gate::{gate_passes, run_model_gate, zoo_classes, MeasureConfig};

/// Fast subset of the zoo (the degraded run simulates each class at four
/// thread counts; the dead-end blow-up is left to the bench binary).
fn fast_classes() -> Vec<gentrius_bench::model_gate::ClassSpec> {
    zoo_classes()
        .into_iter()
        .filter(|c| matches!(c.key, "simulated-heuristics" | "grove-empirical"))
        .collect()
}

#[test]
fn healthy_measurement_passes_the_gate() {
    let classes = fast_classes();
    assert_eq!(classes.len(), 2, "expected both fast classes in the zoo");
    let results = run_model_gate(&classes, &MeasureConfig::default());
    for r in &results {
        assert!(
            r.pass(),
            "{}: healthy config failed (counts_ok={}, scaling={:?})",
            r.key,
            r.counts_ok,
            r.threads
                .iter()
                .map(|t| (t.threads, t.predicted_speedup, t.measured_speedup))
                .collect::<Vec<_>>()
        );
    }
    assert!(gate_passes(&results));
}

#[test]
fn degraded_scheduler_fails_the_gate() {
    let degraded = MeasureConfig {
        stealing: false,
        queue_capacity: Some(0),
    };
    let results = run_model_gate(&fast_classes(), &degraded);
    // Counts are still exact (the degradation is a scheduling regression,
    // not an enumeration bug) ...
    for r in &results {
        assert!(r.counts_ok, "{}: counts should survive degradation", r.key);
    }
    // ... but the measured scaling collapses out of the band on at least
    // one class/thread-count cell, so the gate trips.
    assert!(
        !gate_passes(&results),
        "degraded scheduler was not caught: {:?}",
        results
            .iter()
            .flat_map(|r| r.threads.iter().map(|t| (
                r.key,
                t.threads,
                t.predicted_speedup,
                t.measured_speedup
            )))
            .collect::<Vec<_>>()
    );
}
