//! # gentrius-sim — virtual-time simulator of parallel Gentrius
//!
//! The paper evaluates its parallelization on a 48-core Xeon; this
//! reproduction's host may have only a couple of cores, so wall-clock
//! speedups cannot demonstrate 16–48-way scaling. Every effect §IV reports,
//! however — linear speedups, plateaus caused by unbalanced branch-and-
//! bound trees (Fig. 5a), super-linear speedups from the parallel descent
//! interacting with the stopping rules (Fig. 5b, Fig. 8), and the *adapted
//! speedup* under the time limit (Table I) — is a property of the
//! *scheduler policy applied to the workflow tree*, not of the silicon.
//!
//! This crate therefore re-runs the exact policy of `gentrius-parallel`
//! (initial split, bounded queue, path-replay stealing, batched counter
//! flushes, stopping rules) as a deterministic lock-step discrete-event
//! simulation where one *tick* = one state transition on one logical core,
//! and reports virtual makespans from which speedups at any thread count
//! are computed — bit-for-bit reproducibly.
//!
//! ```
//! use gentrius_core::{GentriusConfig, StandProblem};
//! use gentrius_sim::{simulate, SimConfig};
//! use phylo::newick::parse_forest;
//!
//! let (_, trees) = parse_forest(["((A,B),(C,D));", "((A,E),(F,G));"]).unwrap();
//! let problem = StandProblem::from_constraints(trees).unwrap();
//! let serial = simulate(&problem, &GentriusConfig::exhaustive(), &SimConfig::with_threads(1)).unwrap();
//! let par = simulate(&problem, &GentriusConfig::exhaustive(), &SimConfig::with_threads(8)).unwrap();
//! assert_eq!(serial.stats, par.stats);
//! assert!(par.speedup_vs(&serial) >= 1.0);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod gw;
pub mod metrics;
pub mod trace;

pub use cost::CostModel;
pub use engine::{simulate, SimConfig, SimResult};
pub use gw::{profile_search, CountPrediction, GwModel, SearchProfile};
pub use metrics::Summary;
pub use trace::{Segment, Timeline};
