//! The virtual-time cost model.
//!
//! The simulator charges every scheduler-relevant action a number of
//! *ticks*. One tick is "one branch-and-bound state transition on one
//! core" — the paper's own unit of account ("Gentrius processes hundreds
//! of thousands of states per second", §III-A), from which it derives that
//! path replay costs milliseconds and that atomic counter updates are worth
//! batching. The defaults below encode those same ratios.

/// Tick charges for each scheduler action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One explorer transition (enter / stand tree / dead end / backtrack).
    pub step: u64,
    /// Replaying one insertion of a task path (paper §III-A: reaching
    /// another thread's state is a sequence of insertions processed at
    /// state-processing speed).
    pub replay_per_insertion: u64,
    /// Fixed overhead to dequeue a task and wake up (condvar latency,
    /// queue locking).
    pub task_overhead: u64,
    /// Submitting a task to the queue (lock + copy of the path).
    pub submit_overhead: u64,
    /// Flushing the local counters into the global atomics (§III-B: atomic
    /// primitives cost up to a few thousand cycles ≈ a fraction of a state
    /// visit; charged per flush, which is what makes unbatched updates
    /// expensive).
    pub flush: u64,
}

impl CostModel {
    /// Defaults mirroring the paper's magnitude estimates.
    pub fn paper_like() -> Self {
        CostModel {
            step: 1,
            replay_per_insertion: 1,
            task_overhead: 20,
            submit_overhead: 5,
            flush: 1,
        }
    }

    /// A frictionless machine: pure algorithmic parallelism, no overheads.
    /// Useful to isolate load-balance effects from overhead effects.
    pub fn ideal() -> Self {
        CostModel {
            step: 1,
            replay_per_insertion: 0,
            task_overhead: 0,
            submit_overhead: 0,
            flush: 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_like() {
        let c = CostModel::default();
        assert_eq!(c.step, 1);
        assert!(c.task_overhead > c.submit_overhead);
    }

    #[test]
    fn ideal_has_no_friction() {
        let c = CostModel::ideal();
        assert_eq!(
            c.replay_per_insertion + c.task_overhead + c.submit_overhead + c.flush,
            0
        );
    }
}
