//! Summary statistics for speedup distributions.
//!
//! Figures 6–8 of the paper are per-thread speedup distributions (violin
//! plots with a dashed mean line). The bench harness renders them as text
//! tables; this module provides the underlying five-number summaries.

/// Five-number summary plus mean of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean (the dashed line in the paper's figures).
    pub mean: f64,
}

impl Summary {
    /// Computes the summary of `values`; returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        Some(Summary {
            n,
            min: v[0],
            q1: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q3: quantile(&v, 0.75),
            max: v[n - 1],
            mean,
        })
    }
}

/// Linear-interpolated quantile of a sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={:<4} mean={:>6.2} min={:>6.2} q1={:>6.2} med={:>6.2} q3={:>6.2} max={:>6.2}",
            self.n, self.mean, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[2.0]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn known_quartiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }
}
