//! Execution timelines: what each simulated worker did, when.
//!
//! The load-imbalance story of the paper (Fig. 3 and the whole §III
//! design) is about *schedules*, not just totals. When tracing is enabled
//! the simulator records one segment per executed task per worker; this
//! module renders those as an ASCII Gantt chart and computes utilization.

/// One executed task on one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Tick at which the worker picked the task up.
    pub start: u64,
    /// Tick at which the worker went idle again (exclusive).
    pub end: u64,
    /// 0 for an initial-split chunk, then 1.. in queue order.
    pub task: usize,
}

/// The segments of all workers, in worker order.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Per-worker segments, in execution order.
    pub workers: Vec<Vec<Segment>>,
}

impl Timeline {
    /// Creates an empty timeline for `n` workers.
    pub fn new(n: usize) -> Self {
        Timeline {
            workers: vec![Vec::new(); n],
        }
    }

    /// Busy ticks of worker `w` according to the recorded segments.
    pub fn busy(&self, w: usize) -> u64 {
        self.workers[w].iter().map(|s| s.end - s.start).sum()
    }

    /// Utilization of worker `w` over `[0, makespan)`.
    pub fn utilization(&self, w: usize, makespan: u64) -> f64 {
        if makespan == 0 {
            return 0.0;
        }
        self.busy(w) as f64 / makespan as f64
    }

    /// Renders an ASCII Gantt chart `width` characters wide. Each row is a
    /// worker; `#` marks busy ticks, `.` idle; `|` separates tasks when
    /// the resolution allows.
    pub fn render(&self, makespan: u64, width: usize) -> String {
        let width = width.max(10);
        let mut out = String::new();
        let scale = makespan.max(1) as f64 / width as f64;
        for (w, segs) in self.workers.iter().enumerate() {
            let mut row = vec!['.'; width];
            for s in segs {
                let a = (s.start as f64 / scale) as usize;
                let b = ((s.end as f64 / scale).ceil() as usize).min(width);
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = '#';
                }
                if a < width && s.task > 0 {
                    row[a] = '|';
                }
            }
            out.push_str(&format!(
                "w{w:02} [{}] {:>5.1}%\n",
                row.iter().collect::<String>(),
                100.0 * self.utilization(w, makespan)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new(2);
        t.workers[0].push(Segment {
            start: 0,
            end: 50,
            task: 0,
        });
        t.workers[0].push(Segment {
            start: 60,
            end: 100,
            task: 2,
        });
        t.workers[1].push(Segment {
            start: 0,
            end: 30,
            task: 1,
        });
        t
    }

    #[test]
    fn busy_and_utilization() {
        let t = sample();
        assert_eq!(t.busy(0), 90);
        assert_eq!(t.busy(1), 30);
        assert!((t.utilization(0, 100) - 0.9).abs() < 1e-12);
        assert!((t.utilization(1, 100) - 0.3).abs() < 1e-12);
        assert_eq!(t.utilization(0, 0), 0.0);
    }

    #[test]
    fn render_shape() {
        let t = sample();
        let s = t.render(100, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("w00 ["));
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('.'));
        assert!(lines[0].contains('%'));
    }
}
