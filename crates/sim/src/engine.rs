//! Deterministic lock-step simulation of the parallel Gentrius scheduler.
//!
//! The evaluation machine of the paper (48-core Xeon) is replaced by a
//! discrete-event model: `N_t` logical workers advance in lock step, one
//! virtual *tick* per state transition (see [`CostModel`](crate::cost)),
//! with the exact scheduling policy of `gentrius-parallel` — serial prefix
//! to the initial-split state `I_0`, initial chunks routed through a
//! global injector, per-worker steal deques (LIFO for the owner, FIFO for
//! thieves) bounded by the per-deque capacity (`N_t+1` / `N_t/2`),
//! randomized victim selection (seeded via [`SimConfig::victim_seed`]),
//! the ≥3-remaining-taxa submission rule, path-replay costs, batched
//! counter flushes, and stopping rules evaluated in virtual-time order.
//! Every speedup phenomenon reported in §IV — linear scaling, plateaus
//! from unbalanced workflow trees, super-linear speedups from
//! stopping-rule interaction, adapted speedups under the time limit — is a
//! property of this interaction and therefore reproducible here,
//! bit-for-bit deterministically, on any host.

use crate::cost::CostModel;
use crate::trace::{Segment, Timeline};
use gentrius_core::config::{GentriusConfig, StopCause};
use gentrius_core::explore::{Explorer, StepEvent};
use gentrius_core::problem::{ProblemError, StandProblem};
use gentrius_core::sink::CountOnly;
use gentrius_core::state::SearchState;
use gentrius_core::stats::RunStats;
use gentrius_parallel::counters::FlushThresholds;
use gentrius_parallel::task::{paper_queue_capacity, partition_branches};
use phylo::ops::compatible;
use phylo::taxa::TaxonId;
use phylo::tree::EdgeId;
use std::collections::VecDeque;

/// The paper's path-replay task structure. The real engine moved to
/// snapshot handoff (`gentrius_parallel::task::Task` now carries a
/// resumable state), but the simulator keeps the paper's model: its cost
/// accounting charges `CostModel::replay_per_insertion` per path entry,
/// which is exactly the §IV phenomenon being simulated.
#[derive(Clone, Debug)]
struct SimTask {
    path: Vec<(TaxonId, EdgeId)>,
    taxon: TaxonId,
    branches: Vec<EdgeId>,
}

/// Virtual-machine configuration for one simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of simulated worker threads (`N_t`).
    pub threads: usize,
    /// Tick charges.
    pub cost: CostModel,
    /// Counter-flush batching (visibility of counts to the stopping rules).
    pub flush: FlushThresholds,
    /// Per-worker deque capacity; `None` = the paper rule.
    pub queue_capacity: Option<usize>,
    /// Minimum remaining taxa for task submission (paper: 3).
    pub min_remaining_for_split: usize,
    /// Work stealing on (the paper's engine) or off (static initial split
    /// only — the load-imbalance baseline of Fig. 3).
    pub stealing: bool,
    /// Seed for the randomized victim-selection policy (which deque an
    /// idle worker probes first). Results must be invariant under it; the
    /// schedule (makespan, per-worker loads) may vary.
    pub victim_seed: u64,
    /// Stopping rule 3 in virtual ticks (`None` = no time limit). Rules 1
    /// and 2 come from the algorithmic config's `StoppingRules`.
    pub max_ticks: Option<u64>,
    /// Record a per-worker execution [`Timeline`] (small overhead; off by
    /// default).
    pub trace: bool,
    /// Per-worker slowdown periods: worker `w` needs `periods[w]` ticks
    /// per unit of work (`1` = full speed). `None` = homogeneous cores.
    /// Models heterogeneous machines / stragglers — a robustness study the
    /// paper's homogeneous Xeon could not ask.
    pub speed_periods: Option<Vec<u64>>,
}

impl SimConfig {
    /// Paper-faithful simulated machine with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        SimConfig {
            threads,
            cost: CostModel::paper_like(),
            flush: FlushThresholds::paper_defaults(),
            queue_capacity: None,
            min_remaining_for_split: 3,
            stealing: true,
            victim_seed: 0,
            max_ticks: None,
            trace: false,
            speed_periods: None,
        }
    }

    /// Slowdown period of worker `w` (1 = full speed).
    fn period(&self, w: usize) -> u64 {
        self.speed_periods
            .as_ref()
            .and_then(|p| p.get(w).copied())
            .unwrap_or(1)
            .max(1)
    }

    fn capacity(&self) -> usize {
        self.queue_capacity
            .unwrap_or_else(|| paper_queue_capacity(self.threads))
    }
}

/// Outcome of one simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Exact totals of the work performed (overshoot semantics as in the
    /// real engine: limits are enforced at flush granularity).
    pub stats: RunStats,
    /// Which stopping rule fired, if any.
    pub stop: Option<StopCause>,
    /// Virtual completion time (the parallel makespan, in ticks).
    pub makespan: u64,
    /// Ticks spent in the serial prefix (included in `makespan`).
    pub prefix_ticks: u64,
    /// Per-worker busy ticks (load-balance diagnostics).
    pub busy: Vec<u64>,
    /// Tasks submitted through worker deques (split-off work).
    pub tasks_stolen: usize,
    /// Per-worker count of tasks taken from *another* worker's deque
    /// (the victim-selection policy's actual traffic).
    pub steals: Vec<u64>,
    /// Simulated thread count.
    pub threads: usize,
    /// Per-worker execution timeline (only when `SimConfig::trace`).
    pub timeline: Option<Timeline>,
}

impl SimResult {
    /// True if the stand was fully enumerated.
    pub fn complete(&self) -> bool {
        self.stop.is_none()
    }

    /// Classic speedup vs a (1-thread) baseline: `T_1 / T_N`.
    pub fn speedup_vs(&self, serial: &SimResult) -> f64 {
        serial.makespan as f64 / self.makespan.max(1) as f64
    }

    /// The paper's *adapted speedup* (§IV-A):
    /// `ASP_N = (ST_N / T_N) / (ST_1 / T_1)` — throughput of stand trees
    /// relative to the serial run, fair when stopping rules truncate runs
    /// differently.
    pub fn adapted_speedup_vs(&self, serial: &SimResult) -> f64 {
        let tn = self.makespan.max(1) as f64;
        let t1 = serial.makespan.max(1) as f64;
        let stn = self.stats.stand_trees as f64;
        let st1 = serial.stats.stand_trees.max(1) as f64;
        (stn / tn) / (st1 / t1)
    }
}

struct Counters {
    global: RunStats,
    rules_trees: Option<u64>,
    rules_states: Option<u64>,
    stop: Option<StopCause>,
}

impl Counters {
    fn raise(&mut self, cause: StopCause) {
        if self.stop.is_none() {
            self.stop = Some(cause);
        }
    }

    fn flush(&mut self, pending: &mut RunStats) {
        self.global.merge(pending);
        *pending = RunStats::new();
        if let Some(max) = self.rules_trees {
            if self.global.stand_trees >= max {
                self.raise(StopCause::StandTreeLimit);
            }
        }
        if let Some(max) = self.rules_states {
            if self.global.intermediate_states >= max {
                self.raise(StopCause::StateLimit);
            }
        }
    }
}

struct Worker<'p> {
    ex: Explorer<'p>,
    idle: bool,
    cooldown: u64,
    busy: u64,
    pending: RunStats,
    /// Tick at which the current task started (tracing only).
    seg_start: Option<(u64, usize)>,
}

/// Runs the simulation. The algorithmic configuration (`config`) supplies
/// the heuristics, the mapping engine and stopping rules 1–2; rule 3 (time)
/// is `sim.max_ticks` in virtual time (`config.stopping.max_time` is
/// ignored — wall clocks do not exist here).
pub fn simulate(
    problem: &StandProblem,
    config: &GentriusConfig,
    sim: &SimConfig,
) -> Result<SimResult, ProblemError> {
    assert!(sim.threads >= 1);
    let initial = problem.initial_tree_index(&config.initial_tree)?;
    // Surface order-rule problems before building any worker state.
    SearchState::new(problem, initial, &config.taxon_order).map_err(ProblemError::BadTaxonOrder)?;
    let cost = sim.cost;
    let mut counters = Counters {
        global: RunStats::new(),
        rules_trees: config.stopping.max_stand_trees,
        rules_states: config.stopping.max_intermediate_states,
        stop: None,
    };

    // Root invariant check, as in the real engines.
    let agile0 = &problem.constraints()[initial];
    if problem.constraints().iter().any(|c| !compatible(agile0, c)) {
        return Ok(SimResult {
            stats: RunStats::new(),
            stop: None,
            makespan: 0,
            prefix_ticks: 0,
            busy: vec![0; sim.threads],
            tasks_stolen: 0,
            steals: vec![0; sim.threads],
            threads: sim.threads,
            timeline: None,
        });
    }

    let new_state = || {
        let mut s = SearchState::new(problem, initial, &config.taxon_order)
            .expect("validated problem must build a state");
        s.enable_mapping(config.mapping);
        s
    };

    // ---------------- Phase 1: serial prefix ----------------
    let mut sink = CountOnly;
    let mut prefix_ex = Explorer::new_root(new_state());
    let mut prefix_pending = RunStats::new();
    let mut prefix_ticks: u64 = 0;
    loop {
        if counters.stop.is_some() {
            break;
        }
        if let Some(max) = sim.max_ticks {
            if prefix_ticks >= max {
                counters.raise(StopCause::TimeLimit);
                break;
            }
        }
        if prefix_ex.finished() {
            break;
        }
        if prefix_ex.top().map(|f| f.pending()).unwrap_or(0) >= 2 {
            break;
        }
        let ev = prefix_ex.step(&mut sink);
        prefix_ticks += cost.step;
        record(
            ev,
            &mut prefix_pending,
            &sim.flush,
            &mut counters,
            &mut prefix_ticks,
            cost,
        );
    }
    counters.flush(&mut prefix_pending);

    if prefix_ex.finished() || counters.stop.is_some() {
        return Ok(SimResult {
            stats: counters.global,
            stop: counters.stop,
            makespan: prefix_ticks,
            prefix_ticks,
            busy: vec![0; sim.threads],
            tasks_stolen: 0,
            steals: vec![0; sim.threads],
            threads: sim.threads,
            timeline: None,
        });
    }

    // ---------------- Phase 2: initial split ----------------
    let frame = prefix_ex.top().expect("I_0 frame");
    let split_taxon = frame.taxon;
    let split_branches: Vec<_> = frame.branches[frame.cursor..].to_vec();
    let prefix_path = prefix_ex.path_from_base();
    drop(prefix_ex);

    let chunks = partition_branches(&split_branches, sim.threads);
    let stealing = sim.stealing && sim.threads > 1;
    let capacity = sim.capacity();
    // The two-level scheduler model, mirroring `gentrius-parallel`:
    // initial chunks go through a global injector; split-off tasks land on
    // the submitting worker's own deque (owner end = back, steal end =
    // front); idle workers pop their own deque LIFO, then steal FIFO from
    // a randomized victim, then fall back to the injector.
    let mut injector: VecDeque<(SimTask, usize)> = chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            (
                SimTask {
                    path: Vec::new(),
                    taxon: split_taxon,
                    branches: chunk.clone(),
                },
                i,
            )
        })
        .collect();
    let mut deques: Vec<VecDeque<(SimTask, usize)>> =
        (0..sim.threads).map(|_| VecDeque::new()).collect();
    let mut victim_rng: Vec<u64> = (0..sim.threads)
        .map(|w| splitmix64(sim.victim_seed ^ (w as u64 + 1)) | 1)
        .collect();
    let mut steals = vec![0u64; sim.threads];

    let mut workers: Vec<Worker<'_>> = (0..sim.threads)
        .map(|_| {
            let mut s = new_state();
            for &(t, e) in &prefix_path {
                // Anchor insertions stay applied for the worker lifetime;
                // the undo record is intentionally discarded.
                let _ = s.apply(t, e);
            }
            Worker {
                ex: Explorer::new_idle(s),
                idle: true,
                cooldown: 0,
                busy: 0,
                pending: RunStats::new(),
                seg_start: None,
            }
        })
        .collect();
    let mut tasks_stolen = 0usize;
    let mut timeline = sim.trace.then(|| Timeline::new(sim.threads));
    let n_chunks = chunks.len();

    // ---------------- Phase 3: lock-step execution ----------------
    let mut tick = prefix_ticks;
    loop {
        if counters.stop.is_some() {
            break;
        }
        if workers.iter().all(|w| w.idle)
            && injector.is_empty()
            && deques.iter().all(VecDeque::is_empty)
        {
            break;
        }
        if let Some(max) = sim.max_ticks {
            if tick >= max {
                counters.raise(StopCause::TimeLimit);
                break;
            }
        }
        #[allow(clippy::needless_range_loop)] // wi also tags trace segments
        for wi in 0..workers.len() {
            let w = &mut workers[wi];
            let period = sim.period(wi);
            if w.idle {
                // Acquisition order of `TaskPool::next_task`: own deque
                // (LIFO), randomized-victim steal (FIFO), injector.
                let mut grabbed = deques[wi].pop_back();
                if grabbed.is_none() && stealing {
                    let start = (next_rand(&mut victim_rng[wi]) % sim.threads as u64) as usize;
                    for k in 0..sim.threads {
                        let v = (start + k) % sim.threads;
                        if v == wi {
                            continue;
                        }
                        if let Some(x) = deques[v].pop_front() {
                            steals[wi] += 1;
                            grabbed = Some(x);
                            break;
                        }
                    }
                }
                if grabbed.is_none() {
                    grabbed = injector.pop_front();
                }
                if let Some((task, task_id)) = grabbed {
                    w.cooldown = (cost.task_overhead
                        + cost.replay_per_insertion * task.path.len() as u64)
                        * period;
                    w.ex.begin_task(&task.path, task.taxon, task.branches);
                    w.idle = false;
                    w.seg_start = Some((tick, task_id));
                }
                continue;
            }
            w.busy += 1;
            if w.cooldown > 0 {
                w.cooldown -= 1;
                continue;
            }
            if counters.stop.is_some() {
                continue;
            }
            let ev = w.ex.step(&mut sink);
            match ev {
                StepEvent::Finished => {
                    w.ex.end_task();
                    w.idle = true;
                    counters.flush(&mut w.pending);
                    if let (Some(tl), Some((start, id))) = (&mut timeline, w.seg_start.take()) {
                        tl.workers[wi].push(Segment {
                            start,
                            end: tick + 1,
                            task: id,
                        });
                    }
                    continue;
                }
                _ => {
                    let mut extra = 0u64;
                    record(
                        ev,
                        &mut w.pending,
                        &sim.flush,
                        &mut counters,
                        &mut extra,
                        cost,
                    );
                    w.cooldown += extra + (cost.step * period - 1);
                }
            }
            if ev == StepEvent::Entered
                && stealing
                && deques[wi].len() < capacity
                && w.ex.remaining_taxa() >= sim.min_remaining_for_split
                && w.ex.top().map(|f| f.pending()).unwrap_or(0) >= 2
            {
                if let Some(branches) = w.ex.split_top() {
                    let task = SimTask {
                        path: w.ex.path_from_base(),
                        taxon: w.ex.top().expect("frame after split").taxon,
                        branches,
                    };
                    deques[wi].push_back((task, n_chunks + tasks_stolen));
                    tasks_stolen += 1;
                    w.cooldown += cost.submit_overhead;
                }
            }
        }
        tick += 1;
    }

    // Unwind any interrupted workers and flush everything.
    for (wi, w) in workers.iter_mut().enumerate() {
        if !w.idle {
            w.ex.abort_frames();
            w.ex.end_task();
        }
        counters.flush(&mut w.pending);
        if let (Some(tl), Some((start, id))) = (&mut timeline, w.seg_start.take()) {
            tl.workers[wi].push(Segment {
                start,
                end: tick,
                task: id,
            });
        }
    }

    Ok(SimResult {
        stats: counters.global,
        stop: counters.stop,
        makespan: tick,
        prefix_ticks,
        busy: workers.iter().map(|w| w.busy).collect(),
        tasks_stolen,
        steals,
        threads: sim.threads,
        timeline,
    })
}

/// SplitMix64 seed expansion for the per-worker victim-selection streams
/// (same scheme as `gentrius_parallel::pool`).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xorshift64 step for victim selection.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Counts one event into a pending buffer, flushing (and charging flush
/// cost into `*extra_cost`) whenever a batching threshold is crossed —
/// the virtual analogue of `LocalCounters`.
fn record(
    ev: StepEvent,
    pending: &mut RunStats,
    flush: &FlushThresholds,
    counters: &mut Counters,
    extra_cost: &mut u64,
    cost: CostModel,
) {
    match ev {
        StepEvent::Entered => pending.intermediate_states += 1,
        StepEvent::StandTree => pending.stand_trees += 1,
        StepEvent::DeadEnd => {
            pending.intermediate_states += 1;
            pending.dead_ends += 1;
        }
        StepEvent::Backtracked | StepEvent::Finished => return,
    }
    if pending.stand_trees >= flush.stand_trees
        || pending.intermediate_states >= flush.intermediate_states
        || pending.dead_ends >= flush.dead_ends
    {
        counters.flush(pending);
        *extra_cost += cost.flush;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gentrius_core::driver::run_serial;
    use gentrius_core::sink::CountOnly;
    use phylo::newick::parse_forest;

    fn problem(newicks: &[&str]) -> StandProblem {
        let (_, trees) = parse_forest(newicks.iter().copied()).unwrap();
        StandProblem::from_constraints(trees).unwrap()
    }

    #[test]
    fn sim_counts_match_real_serial() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let real = run_serial(&p, &GentriusConfig::exhaustive(), &mut CountOnly).unwrap();
        for threads in [1, 2, 4, 16] {
            let r = simulate(
                &p,
                &GentriusConfig::exhaustive(),
                &SimConfig::with_threads(threads),
            )
            .unwrap();
            assert!(r.complete());
            assert_eq!(r.stats, real.stats, "threads={threads}");
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let a = simulate(
            &p,
            &GentriusConfig::exhaustive(),
            &SimConfig::with_threads(4),
        )
        .unwrap();
        let b = simulate(
            &p,
            &GentriusConfig::exhaustive(),
            &SimConfig::with_threads(4),
        )
        .unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.tasks_stolen, b.tasks_stolen);
    }

    #[test]
    fn more_threads_do_not_slow_down_ideal_machine() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let mut cfgs: Vec<SimConfig> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| {
                let mut c = SimConfig::with_threads(t);
                c.cost = CostModel::ideal();
                c
            })
            .collect();
        cfgs[0].stealing = false;
        let times: Vec<u64> = cfgs
            .iter()
            .map(|c| {
                simulate(&p, &GentriusConfig::exhaustive(), c)
                    .unwrap()
                    .makespan
            })
            .collect();
        for pair in times.windows(2) {
            assert!(pair[1] <= pair[0], "makespans not monotone: {times:?}");
        }
        // And real speedup is achieved at 4 threads on this instance.
        let s = times[0] as f64 / times[2] as f64;
        assert!(
            s > 1.5,
            "expected >1.5x at 4 threads, got {s:.2} ({times:?})"
        );
    }

    #[test]
    fn stealing_beats_static_split_on_unbalanced_instances() {
        // The second constraint pins most of the work under few branches;
        // static split strands threads on tiny subtrees.
        let p = problem(&[
            "(((A,B),(C,D)),(E,F));",
            "((A,G),(H,(I,(J,K))));",
            "((C,L),(M,B));",
        ]);
        let mut steal = SimConfig::with_threads(8);
        steal.cost = CostModel::ideal();
        let mut stat = steal.clone();
        stat.stealing = false;
        let r_steal = simulate(&p, &GentriusConfig::exhaustive(), &steal).unwrap();
        let r_static = simulate(&p, &GentriusConfig::exhaustive(), &stat).unwrap();
        assert_eq!(r_steal.stats, r_static.stats);
        assert!(
            r_steal.makespan <= r_static.makespan,
            "stealing {} vs static {}",
            r_steal.makespan,
            r_static.makespan
        );
    }

    #[test]
    fn results_invariant_under_victim_seed() {
        // The victim-selection policy may reshuffle who executes what (and
        // thus the makespan), but the enumerated stand is a set: exact
        // totals must not depend on the steal order.
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let base = simulate(
            &p,
            &GentriusConfig::exhaustive(),
            &SimConfig::with_threads(4),
        )
        .unwrap();
        let mut total_steals = 0u64;
        for seed in [1u64, 7, 42, 12345] {
            let mut cfg = SimConfig::with_threads(4);
            cfg.victim_seed = seed;
            let r = simulate(&p, &GentriusConfig::exhaustive(), &cfg).unwrap();
            assert_eq!(r.stats, base.stats, "seed={seed}");
            assert!(r.complete());
            assert_eq!(r.steals.len(), 4);
            total_steals += r.steals.iter().sum::<u64>();
        }
        // Work moved between workers in at least one of the runs.
        assert!(total_steals > 0, "no steal traffic across any seed");
    }

    #[test]
    fn steals_are_zero_without_stealing() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let mut cfg = SimConfig::with_threads(4);
        cfg.stealing = false;
        let r = simulate(&p, &GentriusConfig::exhaustive(), &cfg).unwrap();
        assert_eq!(r.steals, vec![0, 0, 0, 0]);
        assert_eq!(r.tasks_stolen, 0);
    }

    #[test]
    fn virtual_time_limit_fires() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let mut cfg = SimConfig::with_threads(2);
        cfg.max_ticks = Some(10);
        let r = simulate(&p, &GentriusConfig::exhaustive(), &cfg).unwrap();
        assert_eq!(r.stop, Some(StopCause::TimeLimit));
        assert!(r.makespan <= 11);
    }

    #[test]
    fn tree_limit_respects_flush_granularity() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let full = simulate(
            &p,
            &GentriusConfig::exhaustive(),
            &SimConfig::with_threads(2),
        )
        .unwrap();
        assert!(full.stats.stand_trees > 100);
        let cfg = GentriusConfig {
            stopping: gentrius_core::StoppingRules::counts(100, u64::MAX),
            ..GentriusConfig::default()
        };
        let mut sc = SimConfig::with_threads(2);
        sc.flush = FlushThresholds::unbatched();
        let r = simulate(&p, &cfg, &sc).unwrap();
        assert_eq!(r.stop, Some(StopCause::StandTreeLimit));
        assert!(r.stats.stand_trees >= 100);
        assert!(r.stats.stand_trees <= 102); // tight with unbatched flushes
    }

    #[test]
    fn timeline_matches_busy_accounting() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let mut cfg = SimConfig::with_threads(4);
        cfg.trace = true;
        let r = simulate(&p, &GentriusConfig::exhaustive(), &cfg).unwrap();
        let tl = r.timeline.as_ref().expect("trace was requested");
        assert_eq!(tl.workers.len(), 4);
        // Every segment fits inside the run and segments don't overlap
        // within a worker.
        for segs in &tl.workers {
            for s in segs {
                assert!(s.start < s.end);
                assert!(s.end <= r.makespan + 1);
            }
            for w in segs.windows(2) {
                assert!(w[0].end <= w[1].start, "overlapping segments");
            }
        }
        // Rendering produces one row per worker.
        let rendered = tl.render(r.makespan, 40);
        assert_eq!(rendered.lines().count(), 4);
        // Untraced runs carry no timeline.
        let r2 = simulate(
            &p,
            &GentriusConfig::exhaustive(),
            &SimConfig::with_threads(4),
        )
        .unwrap();
        assert!(r2.timeline.is_none());
        assert_eq!(r2.stats, r.stats);
    }

    #[test]
    fn stragglers_are_absorbed_by_stealing() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        // Worker 0 runs at half speed among 4 workers.
        let periods = vec![2u64, 1, 1, 1];
        let mut steal = SimConfig::with_threads(4);
        steal.cost = CostModel::ideal();
        steal.speed_periods = Some(periods.clone());
        let mut stat = steal.clone();
        stat.stealing = false;
        let rs = simulate(&p, &GentriusConfig::exhaustive(), &steal).unwrap();
        let rt = simulate(&p, &GentriusConfig::exhaustive(), &stat).unwrap();
        assert_eq!(rs.stats, rt.stats);
        assert!(
            rs.makespan <= rt.makespan,
            "stealing {} vs static {}",
            rs.makespan,
            rt.makespan
        );
        // The homogeneous run is a lower bound for both.
        let mut homo = SimConfig::with_threads(4);
        homo.cost = CostModel::ideal();
        let rh = simulate(&p, &GentriusConfig::exhaustive(), &homo).unwrap();
        assert!(rh.makespan <= rs.makespan);
    }

    #[test]
    fn busy_ticks_partition_roughly_evenly_with_stealing() {
        let p = problem(&["((A,B),(C,D));", "((A,E),(F,G));", "((C,F),(H,I));"]);
        let mut cfg = SimConfig::with_threads(4);
        cfg.cost = CostModel::ideal();
        let r = simulate(&p, &GentriusConfig::exhaustive(), &cfg).unwrap();
        let max = *r.busy.iter().max().unwrap() as f64;
        let min = *r.busy.iter().min().unwrap() as f64;
        assert!(min > 0.0);
        assert!(max / min < 3.0, "imbalance too high: {:?}", r.busy);
    }
}
